#!/usr/bin/env bash
# Tier-2 scale-smoke gate (referenced from ROADMAP.md).
#
# Runs scripts/scale_smoke.py: a ~5k-cell streaming campaign that is
# hard-killed ~60% of the way through, then resumed against the same
# shard-indexed cache.  Passes only if
#
#   * the resumed pass re-simulates at most the cells the crashed pass
#     never checkpointed (warm start from the cache's shard index);
#   * every cell completes, streamed through O(1)-memory aggregates;
#   * peak RSS stays under 1536 MB (the flat-memory contract);
#   * the injected-failure phase (deterministic transient faults plus
#     poison cells) completes unattended under health-gated admission:
#     transients retry to success, exactly the poison cells are
#     quarantined, and resuming recalls every verdict from the cache
#     with zero re-simulations.
#
# A 4 GB address-space rlimit backstops the RSS assertion: a streaming
# regression that balloons memory dies loudly here instead of slowly on
# a production-sized campaign.
#
# Overrides: REPRO_SCALE_SMOKE_CELLS       (default 5000),
#            REPRO_SCALE_SMOKE_JOBS        (default 2),
#            REPRO_SCALE_SMOKE_INJECT_RATE (default 0.05),
#            REPRO_SCALE_SMOKE_POISON      (default 3).
#
# Usage: bash scripts/check_scale.sh   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Address-space backstop (kB). Soft-fail if the sandbox forbids rlimits.
ulimit -v 4194304 2>/dev/null || echo "note: could not set ulimit -v"

echo "== scale smoke: crash + resume + injected faults =="
python scripts/scale_smoke.py \
    --cells "${REPRO_SCALE_SMOKE_CELLS:-5000}" \
    --jobs "${REPRO_SCALE_SMOKE_JOBS:-2}" \
    --inject-rate "${REPRO_SCALE_SMOKE_INJECT_RATE:-0.05}" \
    --poison-cells "${REPRO_SCALE_SMOKE_POISON:-3}" \
    --out bench_out/scale_smoke.json

echo "scale gate: OK"
