#!/usr/bin/env python
"""Benchmark trajectory report: emit (and check) ``BENCH_<sha>.json``.

Runs the pinned golden grid (5 suites x 8 schedulers, the same cells the
golden-regression tests pin) through the campaign runner and distills the
run into a small, schema-versioned set of tracked series:

* ``makespan.geomean.<scheduler>`` — geometric-mean makespan of each
  scheduler over the five golden suites.  Deterministic: any drift is a
  behaviour change, not noise.
* ``sim.events_total``              — simulation events fired across the
  grid (deterministic).
* ``sim.events_per_sec``            — events divided by runner wall time
  (machine-dependent; normalized by the calibration probe when checked).
* ``runner.wall_s``                 — wall-clock of the grid run
  (machine-dependent, informational).
* ``runner.cells_per_sec``          — cold streaming-campaign throughput:
  512 cells over the persistent pool into a fresh cache (normalized by
  the calibration probe when checked; smaller = worse).
* ``runner.warm_cells_per_sec``     — the same campaign fully memoized:
  key computation + shard-index lookups only (normalized; smaller =
  worse).
* ``runner.peak_rss_mb``            — peak resident set of the report
  process (larger = worse; never calibration-normalized — memory does
  not scale with host speed).
* ``runner.retry_overhead_pct``     — percent wall overhead of a campaign
  with 5% injected transient failures retried to success over the same
  campaign clean (larger = worse; gated with an absolute slack because
  percent series hover near zero).
* ``sanitizer.overhead_pct``        — wall-time overhead of running one
  fixed cell with the simulation sanitizer attached (informational).
* ``calibration.probe_s``           — wall time of a fixed pure-Python
  workload; used to normalize machine speed when comparing wall-based
  series across hosts.

With ``--baseline`` the report is additionally *checked* against a prior
report: any ``makespan.geomean.*`` series or the calibration-normalized
``sim.events_per_sec`` regressing by more than ``--tolerance`` (default
0.10, i.e. 10%) fails the run with exit code 1.  Wall-clock and overhead
series never gate — they are trajectory data for humans.

Usage::

    python scripts/bench_report.py --out-dir bench_out --jobs 4
    python scripts/bench_report.py --baseline benchmarks/bench_baseline.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA = "repro.bench/v1"

#: Series that gate under --baseline (beyond the makespan.geomean.* set).
#: Calibration-normalized throughput: smaller = worse.
GATED_WALL_SERIES = (
    "sim.events_per_sec",
    "runner.cells_per_sec",
    "runner.warm_cells_per_sec",
)

#: Gated absolute series where larger = worse (never normalized).
GATED_LARGER_WORSE_SERIES = ("runner.peak_rss_mb", "runner.retry_overhead_pct")

#: Absolute slack (in the series' own unit, i.e. percentage points) for
#: gated ``*_pct`` series: relative tolerance alone would gate on noise
#: when the reference hovers near zero.
PCT_SERIES_SLACK = 5.0


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


def calibration_probe() -> float:
    """Wall seconds for a fixed pure-Python workload (min of 3)."""
    def once() -> float:
        t0 = time.perf_counter()
        acc = 0.0
        for i in range(400_000):
            acc += math.sqrt(i + 1.5) * 1.0000001
        assert acc > 0
        return time.perf_counter() - t0

    return min(once() for _ in range(3))


def sanitizer_overhead_pct() -> float:
    """Percent wall overhead of the sanitizer on one fixed cell (min of 3)."""
    from repro.core.api import run_workflow
    from repro.platform import presets
    from repro.workflows.generators import montage

    def once(sanitize: bool) -> float:
        wf = montage(size=120, seed=11)
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=4)
        t0 = time.perf_counter()
        run_workflow(
            wf, cluster, scheduler="heft", seed=11,
            noise_cv=0.1, sanitize=sanitize,
        )
        return time.perf_counter() - t0

    base = min(once(False) for _ in range(3))
    sane = min(once(True) for _ in range(3))
    return 100.0 * (sane - base) / base if base > 0 else 0.0


def run_grid(jobs: int) -> Dict[str, float]:
    """Run the golden grid; return the tracked series."""
    from repro.runner.campaign import GOLDEN_SCHEDULERS, golden_jobs
    from repro.runner.pool import CampaignRunner

    cells = golden_jobs()
    runner = CampaignRunner(jobs=jobs)
    # Min of 3 passes, like the calibration probe: a single cold pass
    # mixes scheduler/allocator noise into the recorded trajectory.
    wall = float("inf")
    records = None
    for _ in range(3):
        t0 = time.perf_counter()
        out = runner.run_sims(cells)
        wall = min(wall, time.perf_counter() - t0)
        if records is None:
            records = out

    by_sched: Dict[str, list] = {s: [] for s in GOLDEN_SCHEDULERS}
    events = 0.0
    for job, rec in zip(cells, records):
        sched = job.label.rsplit(":", 1)[-1]
        by_sched[sched].append(rec.makespan)
        events += rec.events

    series: Dict[str, float] = {}
    for sched, spans in sorted(by_sched.items()):
        series[f"makespan.geomean.{sched}"] = math.exp(
            sum(math.log(m) for m in spans) / len(spans)
        )
    series["sim.events_total"] = events
    series["sim.events_per_sec"] = events / wall if wall > 0 else 0.0
    series["runner.wall_s"] = wall
    return series


def runner_throughput(jobs: int) -> Dict[str, float]:
    """Cold/warm streaming-campaign throughput plus peak resident set.

    Replays a 16-batch x 32-cell campaign (one shared workflow document,
    seeds varying) through a fresh :class:`CampaignRunner` with a
    temporary shard-indexed cache: the cold pass pays pool spawn, cell
    simulation and cache writes; the warm passes (min of 3) exercise
    only key computation and batched index lookups.
    """
    import resource
    import tempfile

    from repro.experiments.common import make_job
    from repro.platform import presets
    from repro.runner.cache import ResultCache
    from repro.runner.pool import CampaignRunner
    from repro.runner.specs import factory_spec
    from repro.workflows.generators import random_dag
    from repro.workflows.serialize import workflow_to_dict

    doc = workflow_to_dict(random_dag(size=8, seed=3))
    cluster = factory_spec(
        presets.hybrid_cluster, nodes=2, cores_per_node=2, gpus_per_node=1
    )
    batches = [
        [
            make_job(doc, cluster, scheduler="heft", seed=b * 32 + i,
                     noise_cv=0.05, label=f"bench:b{b}:{i}")
            for i in range(32)
        ]
        for b in range(16)
    ]
    n_cells = sum(len(batch) for batch in batches)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(os.path.join(tmp, "cache"))
        with CampaignRunner(jobs=jobs, cache=cache) as runner:
            t0 = time.perf_counter()
            for batch in batches:
                runner.run_sims(batch)
            cold_wall = time.perf_counter() - t0
            warm_wall = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                for batch in batches:
                    runner.run_sims(batch)
                warm_wall = min(warm_wall, time.perf_counter() - t0)

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "runner.cells_per_sec": n_cells / cold_wall if cold_wall > 0 else 0.0,
        "runner.warm_cells_per_sec": (
            n_cells / warm_wall if warm_wall > 0 else 0.0
        ),
        "runner.peak_rss_mb": peak_rss_mb,
    }


def retry_overhead_pct(jobs: int) -> float:
    """Percent wall overhead of the fault-tolerant retry path.

    Runs one 256-cell campaign through fresh uncached runners (so both
    passes simulate every cell): a clean pass, then a pass with 5%
    deterministically injected transient failures retried to success
    under ``max_retries=2`` (min of 3 each).  The delta prices failure
    capture plus the retry rounds, not the failures themselves — every
    injected fault clears on its retry.
    """
    from repro.experiments.common import make_job
    from repro.platform import presets
    from repro.runner.pool import CampaignRunner
    from repro.runner.specs import factory_spec
    from repro.workflows.generators import random_dag
    from repro.workflows.serialize import workflow_to_dict

    doc = workflow_to_dict(random_dag(size=8, seed=5))
    cluster = factory_spec(
        presets.hybrid_cluster, nodes=2, cores_per_node=2, gpus_per_node=1
    )
    cells = [
        make_job(doc, cluster, scheduler="heft", seed=i, noise_cv=0.05,
                 label=f"retrybench:{i}")
        for i in range(256)
    ]

    def pass_wall(runner) -> float:
        t0 = time.perf_counter()
        for _ in runner.run_sims_iter(cells):
            pass
        return time.perf_counter() - t0

    with CampaignRunner(jobs=jobs) as runner:
        clean = min(pass_wall(runner) for _ in range(3))
    os.environ["REPRO_FAIL_INJECT"] = json.dumps({"rate": 0.05, "seed": 9})
    try:
        with CampaignRunner(
            jobs=jobs, max_retries=2, failure_mode="record"
        ) as runner:
            injected = min(pass_wall(runner) for _ in range(3))
    finally:
        os.environ.pop("REPRO_FAIL_INJECT", None)
    return 100.0 * (injected - clean) / clean if clean > 0 else 0.0


def build_report(jobs: int) -> Dict[str, object]:
    series = run_grid(jobs)
    series.update(runner_throughput(jobs))
    series["runner.retry_overhead_pct"] = retry_overhead_pct(jobs)
    series["sanitizer.overhead_pct"] = sanitizer_overhead_pct()
    series["calibration.probe_s"] = calibration_probe()
    return {
        "schema": SCHEMA,
        "git_sha": _git_sha(),
        "jobs": jobs,
        "series": {k: series[k] for k in sorted(series)},
    }


def check_against(report: Dict[str, object], baseline: Dict[str, object],
                  tolerance: float) -> int:
    """Compare gated series; print verdicts; return the regression count."""
    cur: Dict[str, float] = report["series"]  # type: ignore[assignment]
    base: Dict[str, float] = baseline["series"]  # type: ignore[assignment]
    if baseline.get("schema") != SCHEMA:
        print(f"FAIL: baseline schema {baseline.get('schema')!r} != {SCHEMA!r}")
        return 1

    # Wall-based series are machine-dependent: scale the baseline by the
    # calibration ratio so a slower host doesn't read as a regression.
    cal_cur = cur.get("calibration.probe_s", 0.0)
    cal_base = base.get("calibration.probe_s", 0.0)
    speed = cal_base / cal_cur if cal_cur > 0 and cal_base > 0 else 1.0

    failures = 0
    for name in sorted(base):
        if name not in cur:
            print(f"FAIL: series {name!r} missing from current report")
            failures += 1
            continue
        gated = name.startswith("makespan.geomean.")
        normalized = name in GATED_WALL_SERIES
        larger_worse = name in GATED_LARGER_WORSE_SERIES
        if not (gated or normalized or larger_worse):
            continue  # informational series never gate
        ref = base[name] * (speed if normalized else 1.0)
        val = cur[name]
        if gated or larger_worse:
            # Makespans and memory: worse = larger.  Percent-overhead
            # series additionally get an absolute slack, since their
            # reference can sit near zero.
            limit = ref * (1.0 + tolerance)
            if name.endswith("_pct"):
                limit = max(limit, ref + PCT_SERIES_SLACK)
            regressed = val > limit
        else:
            # Throughput: worse = smaller.
            regressed = val < ref * (1.0 - tolerance)
        verdict = "FAIL" if regressed else "ok"
        print(f"{verdict:4s} {name:28s} current={val:12.4f} ref={ref:12.4f}")
        failures += int(regressed)
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out-dir", default="bench_out",
                    help="directory for BENCH_<sha>.json (default bench_out)")
    ap.add_argument("--jobs", type=int, default=max(os.cpu_count() or 1, 1),
                    help="campaign-runner worker processes")
    ap.add_argument("--baseline", default=None,
                    help="prior BENCH_*.json to check the new report against")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("REPRO_BENCH_TOLERANCE", 0.10)),
                    help="allowed fractional regression (default 0.10)")
    args = ap.parse_args(argv)

    report = build_report(args.jobs)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{report['git_sha']}.json"
    out_path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path} ({len(report['series'])} series)")

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        failures = check_against(report, baseline, args.tolerance)
        if failures:
            print(f"bench check: {failures} regression(s) beyond "
                  f"{args.tolerance:.0%} tolerance")
            return 1
        print("bench check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
