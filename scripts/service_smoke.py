#!/usr/bin/env python
"""Service smoke: kill a worker mid-batch, verify lease-reclaim resume.

The campaign service's crash-safety contract, exercised over real
process and HTTP boundaries:

1. boot the JSON API (``repro-flow serve``) against a fresh job store;
2. submit a campaign over HTTP;
3. start worker #1 with the deterministic stall hook (``--stall-after``)
   so it completes a few cells, then wedges mid-batch — holding a live
   lease but never heartbeating — and SIGKILL it at that exact moment;
4. start worker #2 against the same store and shared result cache; its
   polls advance the store's logical clock past the dead lease's TTL,
   the reclaim requeues the unfinished cells exactly once, and the
   campaign drains to completion;
5. assert the final records are byte-identical to an uninterrupted
   inline run of the same cells (the service path *is* the campaign
   path), then resubmit the identical campaign and assert every cell
   resolves from the shared cache (``cached`` state, zero simulations).

Artifacts: a schema-versioned status JSON (checks + metrics) and the
full store dump, both under ``--work-dir`` for CI upload.

Usage::

    python scripts/service_smoke.py --out bench_out/service_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA = "repro.service-smoke/v1"
WAIT_S = 90.0  # per-step deadline: generous for CI, finite for hangs


def _jobs(n: int, seed: int):
    from repro.experiments.common import make_job, preset_spec
    from repro.workflows.generators import montage

    cluster = preset_spec("hybrid", nodes=2, cores_per_node=2, gpus_per_node=1)
    wf = montage(size=10, seed=seed)
    return [
        make_job(wf, cluster, scheduler="heft", seed=seed + i, noise_cv=0.1,
                 label=f"smoke:{i}")
        for i in range(n)
    ]


def _call(port: int, path: str, body=None, timeout: float = 10.0):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _wait(predicate, what: str, deadline_s: float = WAIT_S) -> bool:
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < deadline_s:
        if predicate():
            return True
        time.sleep(0.1)
    print(f"FAIL timeout waiting for {what}", file=sys.stderr)
    return False


def _spawn(cmd, log_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    log = open(log_path, "w", encoding="utf-8")
    return subprocess.Popen(
        cmd, cwd=REPO_ROOT, env=env, stdout=log, stderr=subprocess.STDOUT,
    )


def _serve_port(log_path: Path) -> int:
    """Parse the bound port from the server's 'listening on' line."""
    port = 0

    def scan() -> bool:
        nonlocal port
        if not log_path.exists():
            return False
        for line in log_path.read_text(encoding="utf-8").splitlines():
            if "listening on http://" in line:
                port = int(line.rsplit(":", 1)[1])
                return True
        return False

    if not _wait(scan, "server to bind"):
        raise RuntimeError("server never reported its port")
    return port


def phase_drive(args) -> int:
    from repro.runner.hashing import cache_key
    from repro.runner.pool import CampaignRunner
    from repro.service.wire import submission_to_wire

    work = Path(args.work_dir) / "service-smoke"
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)
    store_path = work / "store.db"
    cache_dir = work / "cache"
    marker = work / "stall.marker"

    jobs = _jobs(args.cells, args.seed)
    keys = [cache_key(job) for job in jobs]

    # The uninterrupted reference: same cells, plain inline campaign.
    with CampaignRunner(jobs=1) as runner:
        reference = {
            key: json.dumps(record.to_dict(), sort_keys=True)
            for key, record in zip(keys, runner.run_sims(_jobs(
                args.cells, args.seed
            )))
        }

    procs = {}
    checks = {}
    worker_cmd = [
        sys.executable, "-m", "repro.cli", "worker",
        "--store", str(store_path), "--cache-dir", str(cache_dir),
        "--jobs", "1", "--batch", str(args.cells), "--ttl", str(args.ttl),
        "--max-polls", "2000",
    ]
    try:
        procs["serve"] = _spawn(
            [sys.executable, "-m", "repro.cli", "serve",
             "--store", str(store_path), "--port", "0"],
            work / "serve.log",
        )
        port = _serve_port(work / "serve.log")
        print(f"server up on port {port}")

        status, body = _call(
            port, "/api/campaigns", submission_to_wire("service-smoke", jobs)
        )
        assert status == 200, body
        cid = body["campaign"]["id"]
        print(f"submitted campaign {cid} ({args.cells} cells) over HTTP")

        # Worker #1: completes stall_after cells, wedges holding the rest.
        procs["w-crash"] = _spawn(
            worker_cmd + ["--worker-id", "w-crash",
                          "--stall-after", str(args.stall_after),
                          "--stall-marker", str(marker)],
            work / "worker-crash.log",
        )
        checks["worker stalled mid-batch"] = _wait(
            marker.exists, "stall marker"
        )
        _status, metrics = _call(port, "/api/metrics")
        in_flight = (
            metrics["counts"].get("leased", 0)
            + metrics["counts"].get("running", 0)
        )
        checks["lease held at kill time"] = in_flight > 0
        procs["w-crash"].send_signal(signal.SIGKILL)
        procs["w-crash"].wait(timeout=30)
        print(f"SIGKILLed w-crash with {in_flight} leased/running cell(s)")

        # Worker #2: same store, same shared cache; reclaims and drains.
        procs["w-recover"] = _spawn(
            worker_cmd + ["--worker-id", "w-recover"],
            work / "worker-recover.log",
        )

        def campaign_done() -> bool:
            _s, body = _call(port, f"/api/campaigns/{cid}")
            return body.get("campaign", {}).get("done", False)

        checks["campaign completed across the kill"] = _wait(
            campaign_done, "campaign completion"
        )
        procs["w-recover"].wait(timeout=WAIT_S)

        _status, dump_body = _call(port, "/api/store")
        dump = dump_body["dump"]
        by_key = {c["key"]: c for c in dump["cells"]}
        reclaims = sum(c["reclaims"] for c in dump["cells"])
        terminal = {c["key"]: c["state"] for c in dump["cells"]}
        checks["dead lease reclaimed"] = reclaims > 0
        checks["no cell failed or quarantined"] = all(
            state in ("done", "cached") for state in terminal.values()
        )
        checks["resumed records byte-identical to inline run"] = all(
            json.dumps(by_key[key]["result"], sort_keys=True)
            == reference[key]
            for key in keys
        )

        # Resubmission: every verdict resolves from the shared cache.
        status, body = _call(
            port, "/api/campaigns",
            submission_to_wire("service-smoke-again", jobs),
        )
        cid2 = body["campaign"]["id"]
        procs["w-cached"] = _spawn(
            worker_cmd + ["--worker-id", "w-cached"],
            work / "worker-cached.log",
        )

        def resubmission_done() -> bool:
            _s, body = _call(port, f"/api/campaigns/{cid2}")
            return body.get("campaign", {}).get("done", False)

        checks["resubmission completed"] = _wait(
            resubmission_done, "resubmission completion"
        )
        procs["w-cached"].wait(timeout=WAIT_S)
        _status, second = _call(port, f"/api/campaigns/{cid2}")
        cached = second["campaign"]["counts"].get("cached", 0)
        # The crashed worker's cache entries died unsynced with the
        # process (the store kept its verdicts; the cache keeps only
        # synced packs) — so everything the *recovering* worker wrote
        # must come back as a shared-cache hit, at minimum.
        checks["resubmission served from shared cache"] = (
            args.cells - args.stall_after <= cached <= args.cells
            and cached > 0
        )
        print(f"resubmission: {cached}/{args.cells} cells cache-resolved")

        _status, metrics = _call(port, "/api/metrics")
        _status, final_dump = _call(port, "/api/store")
        (work / "store_dump.json").write_text(
            json.dumps(final_dump["dump"], indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

        status, body = _call(port, "/api/stop", {})
        checks["server stopped on request"] = (
            status == 200 and procs["serve"].wait(timeout=30) == 0
        )
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    artifact = {
        "schema": SCHEMA,
        "cells": args.cells,
        "stall_after": args.stall_after,
        "ttl": args.ttl,
        "reclaims": reclaims,
        "checks": {name: bool(ok) for name, ok in checks.items()},
        "metrics": metrics,
        "passed": all(checks.values()),
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")

    for name, ok in sorted(checks.items()):
        print(f"{'ok  ' if ok else 'FAIL'} {name}")
    print(f"store dump -> {work / 'store_dump.json'}; artifact -> {out}")
    return 0 if artifact["passed"] else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cells", type=int, default=12)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--stall-after", type=int, default=4,
                    help="cells worker #1 completes before wedging")
    ap.add_argument("--ttl", type=int, default=8,
                    help="lease TTL in logical ticks")
    ap.add_argument("--work-dir", default="bench_out")
    ap.add_argument("--out", default="bench_out/service_smoke.json")
    return phase_drive(ap.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
