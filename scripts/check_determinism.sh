#!/usr/bin/env bash
# Tier-2 determinism gate (referenced from ROADMAP.md).
#
# Proves the campaign-runner contract end to end:
#   1. the determinism suite — --jobs 4 == --jobs 1 == warm cache for the
#      representative experiments, plus runner/cache/spec unit properties;
#   2. the golden-regression grid — pinned suite x scheduler makespans;
#   3. a live CLI cross-check — `repro-flow exp t1` rendered under
#      --jobs 1, --jobs 4 and a warm cache must be byte-identical.
#
# Usage: bash scripts/check_determinism.sh   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== determinism + runner + golden test suites =="
python -m pytest -q \
    tests/test_runner_determinism.py \
    tests/test_runner_pool.py \
    tests/test_runner_hashing.py \
    tests/test_runner_cache.py \
    tests/test_runner_specs.py \
    tests/test_suite_seeding.py \
    tests/test_golden_regression.py

echo "== CLI cross-check: jobs=1 vs jobs=4 vs warm cache =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

python -m repro.cli exp t1 --jobs 1 > "$workdir/serial.txt"
python -m repro.cli exp t1 --jobs 4 --cache-dir "$workdir/cache" > "$workdir/parallel.txt"
python -m repro.cli exp t1 --jobs 4 --cache-dir "$workdir/cache" > "$workdir/warm.txt"

diff "$workdir/serial.txt" "$workdir/parallel.txt" \
    || { echo "FAIL: --jobs 4 diverged from --jobs 1" >&2; exit 1; }
diff "$workdir/serial.txt" "$workdir/warm.txt" \
    || { echo "FAIL: warm-cache rerun diverged" >&2; exit 1; }

echo "determinism gate: OK"
