"""Regenerate EXPERIMENTS.md by running every experiment.

Usage::

    python scripts/make_experiments_md.py [--full] [--seed N]

Runs all twelve experiment runners (quick scale by default), captures
their rendered tables/series, and writes EXPERIMENTS.md with the
expected-shape commentary next to the measured output.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import REGISTRY

#: Expected-shape commentary per experiment (what the paper family reports
#: and what must hold for the reproduction to count as faithful).
EXPECTATIONS = {
    "t1": (
        "Paper shape: the proposed heterogeneity-aware scheduler leads the "
        "field; HEFT/PEFT within ~5-10%; batch heuristics (Min-Min/Max-Min) "
        "competitive but weaker on deep graphs; naive mappers (OLB, "
        "round-robin, random) several-fold worse.  Measured: HDWS has the "
        "best (or within 10% of best) geometric-mean makespan and the naive "
        "mappers lose by 2-4x."
    ),
    "t2": (
        "Paper shape: adding accelerators to a fixed CPU budget buys "
        "several-fold makespan on accelerator-friendly suites; a second "
        "accelerator class helps where its preferred kernels exist.  "
        "Measured: geometric-mean GPU speedup > 2x (per-suite 2.5-8x); "
        "FPGA column helps SIPHT/BLAST-family kernels and never hurts."
    ),
    "t3": (
        "Paper shape: energy-aware placement plus DVFS trades makespan for "
        "energy monotonically in the weighting.  Measured: ea-0.3 < ea-0.7 "
        "< HEFT in energy, reversed in makespan."
    ),
    "t4": (
        "Paper shape: each mechanism contributes somewhere; no ablation "
        "beats the full configuration materially.  Measured: 'none' "
        "(all mechanisms off) loses the geomean; removing locality "
        "increases bytes moved; affinity/scarcity matter most where "
        "accelerators are contended."
    ),
    "t5": (
        "Paper shape: list schedulers are polynomial and interactive at "
        "thousands of tasks; immediate-mode mappers are cheapest; "
        "metaheuristics pay per generation.  Measured: cost grows with DAG "
        "size for every algorithm, MCT cheapest, all < 60 s at the largest "
        "size."
    ),
    "f1": (
        "Paper shape: near-linear speedup while graph width lasts, then a "
        "critical-path plateau.  Measured: speedup grows with node count "
        "with decaying per-doubling gains; HDWS saturates at least as high "
        "as Min-Min."
    ),
    "f2": (
        "Paper shape: at low CCR all EFT-family schedulers tie; as CCR "
        "grows, communication-blind heuristics degrade fastest.  Measured: "
        "every scheduler slows with CCR; OLB's gap vs HDWS exceeds 20%; "
        "HDWS stays within ~15% of HEFT everywhere."
    ),
    "f3": (
        "Paper shape: steep initial gain from the first accelerator, "
        "flattening with count (Amdahl).  Measured: first-GPU gain >= "
        "last-GPU gain on every suite; >= 3 suites gain over 2x from the "
        "first GPU; makespan is monotone non-increasing in GPU count."
    ),
    "f4": (
        "Paper shape: static plans inherit profiling error; dynamic JIT is "
        "flat but starts worse; adaptive re-planning tracks the static "
        "plan at low error and degrades no worse than it at high error.  "
        "Measured: static degradation > 5%, dynamic flatter than static, "
        "adaptive <= static."
    ),
    "f5": (
        "Paper shape: makespan under retry degrades with fault rate x task "
        "length; checkpointing flattens the curve at an overhead cost at "
        "rate 0; unprotected success collapses.  Measured: all policies "
        "degrade with rate, fine checkpointing bounds the damage best at "
        "the top rate, unprotected success rate falls below 1."
    ),
    "f6": (
        "Paper shape: locality-aware placement cuts bytes moved at "
        "negligible makespan cost.  Measured: HDWS moves fewer bytes than "
        "its no-locality ablation (and than Min-Min) on both workflows, "
        "within the makespan tolerance."
    ),
    "f7": (
        "Paper shape: a convex energy/makespan trade-off curve swept by "
        "the objective weight.  Measured: alpha=1 fastest, alpha=0 "
        "greenest, both endpoints >5% apart on their own axis."
    ),
    "x2": (
        "Extension (no paper counterpart): the data-heaviest suite is "
        "fabric-sensitive (tapered fat-tree costs the most), compute-chain "
        "suites barely notice the topology."
    ),
    "x3": (
        "Extension (no paper counterpart): hot replication trades "
        "re-executions for preempted clones and energy; checkpointing "
        "buys the same protection with per-second overhead instead of "
        "capacity."
    ),
    "x4": (
        "Extension (no paper counterpart): the streaming campaign path "
        "sustains large cell counts at flat memory — records fold into "
        "O(1) Welford aggregates as they complete instead of "
        "materializing as lists, and the content-addressed cache makes "
        "a killed run resumable."
    ),
}

ORDER = [
    "t1", "t2", "t3", "t4", "t5",
    "f1", "f2", "f3", "f4", "f5", "f6", "f7",
    "x2", "x3", "x4",
]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true",
                        help="full paper scale (slower)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None)
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    out_path = Path(args.output) if args.output else repo_root / "EXPERIMENTS.md"

    scale = "full" if args.full else "quick"
    chunks = [
        "# EXPERIMENTS — paper-vs-measured, every table and figure",
        "",
        "Generated by `python scripts/make_experiments_md.py"
        + (" --full" if args.full else "") + "`.",
        "",
        f"Scale: **{scale}** (quick ~= CI-sized workloads; full ~= paper-"
        "sized).  Absolute numbers are simulator-virtual seconds/joules and "
        "are **not** expected to match the authors' testbed; the recorded "
        "claim per experiment is the *shape*, which the benchmark suite "
        "(`pytest benchmarks/ --benchmark-only`) asserts mechanically.",
        "",
        "Note on SLR: runtimes are sampled with noise around the estimates "
        "the SLR denominator uses, so individual SLR cells can dip "
        "marginally below 1.0; comparisons across schedulers share the "
        "same noise and remain valid.",
        "",
    ]

    for exp_id in ORDER:
        t0 = time.time()
        result = REGISTRY[exp_id](quick=not args.full, seed=args.seed)
        elapsed = time.time() - t0
        chunks.append(f"## {result.experiment} ({exp_id.upper()})")
        chunks.append("")
        chunks.append(f"**Expected vs measured.** {EXPECTATIONS[exp_id]}")
        chunks.append("")
        chunks.append(f"Runner wall-clock: {elapsed:.1f}s.")
        chunks.append("")
        chunks.append("```")
        chunks.append(result.render())
        chunks.append("```")
        chunks.append("")
        print(f"[{exp_id}] done in {elapsed:.1f}s", file=sys.stderr)

    out_path.write_text("\n".join(chunks), encoding="utf-8")
    print(f"wrote {out_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
