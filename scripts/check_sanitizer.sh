#!/usr/bin/env bash
# Tier-2 sanitizer gate (referenced from ROADMAP.md).
#
# Proves the invariant-checking layer end to end:
#   1. the sanitizer's own suite — mutation self-tests (every check must
#      fire on its seeded violation) plus strict clean runs under
#      replication, faults, data loss and checkpointing;
#   2. the executor edge-case suite, which runs fault/recovery scenarios
#      with sanitize=True;
#   3. the golden-regression grid re-run with REPRO_SANITIZE=1 — the
#      sanitizer must neither flag the pinned grid nor perturb a single
#      makespan (it is a pure observer);
#   4. live CLI cross-checks — a handful of experiments under --sanitize.
#
# Usage: bash scripts/check_sanitizer.sh   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== sanitizer self-tests + executor edge cases =="
python -m pytest -q tests/test_sanitizer.py tests/test_executor_edges.py

echo "== golden grid under an always-on sanitizer =="
REPRO_SANITIZE=1 python -m pytest -q tests/test_golden_regression.py

echo "== CLI cross-check: repro-flow exp --sanitize =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

for exp in t1 f2 f3; do
    echo "-- exp $exp --sanitize"
    python -m repro.cli exp "$exp" --jobs 1 --cache-dir "$workdir/cache" \
        --sanitize > "$workdir/$exp.txt"
done

echo "sanitizer gate: OK"
