#!/usr/bin/env python
"""Scale smoke: kill a streaming campaign mid-flight, resume, verify.

The checkpoint/resume contract of the campaign runner, exercised the
blunt way a cluster would: phase ``run`` executes a ``--cells`` campaign
of small random-DAG cells through a :class:`CampaignRunner` with an
on-disk shard-indexed cache, and ``--die-after K`` hard-exits the
process (``os._exit``, no cleanup, no atexit — morally a SIGKILL) once
K cells have been simulated.

The default driver phase runs the crash pass in a subprocess, then
*resumes* by re-running the identical campaign against the same cache
directory, and asserts:

* the resumed pass only simulates cells the crashed pass never synced —
  at most ``cells - die_after`` plus the cache's ``sync_every`` slack
  (entries pending since the last auto-checkpoint die with the process);
* every cell of the campaign completes, streamed through O(1)-memory
  aggregates, with peak RSS below ``--rss-limit-mb``;
* a schema-versioned JSON artifact records both passes for the CI log.

The driver then runs an **injected-failure pass** against a fresh cache:
``--inject-rate`` seeds deterministic transient faults (failed first
attempts that a retry clears) and ``--poison-cells`` marks cells that
fail permanently on every attempt.  The campaign runs unattended through
:meth:`CampaignRunner.run_batches` (health-gated feed-ahead admission)
and must finish with every surviving cell completed, exactly the poison
cells quarantined, gate decisions on the event log, and RSS still flat.
A resume of the same campaign must recall every verdict from the cache —
zero re-simulations, and quarantined cells recalled (not re-failed, not
double-counted in the checkpoint-window accounting).

Usage::

    python scripts/scale_smoke.py --cells 5000 --jobs 2 --out bench_out/scale_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA = "repro.scale-smoke/v2"
DIE_EXIT = 17
#: Auto-checkpoint cadence of the smoke cache: small enough that a crash
#: loses little, large enough to exercise the pending-entry path.
SYNC_EVERY = 64
BATCH = 256


def _batches(cells: int, seed: int):
    """The campaign, batch by batch (shared documents within a batch)."""
    from repro.experiments.common import make_job
    from repro.platform import presets
    from repro.runner.specs import factory_spec
    from repro.workflows.generators import random_dag
    from repro.workflows.serialize import workflow_to_dict

    docs = [
        workflow_to_dict(random_dag(size=8, seed=seed + k)) for k in range(4)
    ]
    cluster = factory_spec(
        presets.hybrid_cluster, nodes=2, cores_per_node=2, gpus_per_node=1
    )
    n_batches = (cells + BATCH - 1) // BATCH
    for b in range(n_batches):
        start = b * BATCH
        count = min(BATCH, cells - start)
        yield [
            make_job(
                docs[b % len(docs)], cluster, scheduler="heft",
                seed=seed + start + i, noise_cv=0.05,
                label=f"smoke:b{b}:{i}",
            )
            for i in range(count)
        ]


def phase_run(args) -> int:
    """One streaming pass; optionally die mid-campaign."""
    from repro.analysis.stats import StreamingSummary
    from repro.runner.cache import ResultCache
    from repro.runner.pool import CampaignRunner

    cache = ResultCache(args.cache_dir, sync_every=SYNC_EVERY)
    makespan = StreamingSummary()
    completed = 0
    t0 = time.perf_counter()
    with CampaignRunner(jobs=args.jobs, cache=cache) as runner:
        for jobs in _batches(args.cells, args.seed):
            for _i, record in runner.run_sims_iter(jobs):
                makespan.add(record.makespan)
                completed += 1
                if args.die_after and runner.simulated >= args.die_after:
                    # A crashed campaign does not sync, flush or close.
                    os._exit(DIE_EXIT)
        wall = time.perf_counter() - t0
        stats = {
            "cells": completed,
            "simulated": runner.simulated,
            "wall_s": wall,
            "cells_per_sec": completed / wall if wall > 0 else 0.0,
            "makespan_mean": makespan.result().mean,
            "peak_rss_mb": (
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
            ),
        }
    print(json.dumps(stats, sort_keys=True))
    return 0


def phase_faults(args):
    """Injected-failure campaign + verdict-recall resume; returns checks.

    Runs against its own fresh cache directory so the crash/resume phase
    and the fault phase cannot contaminate each other's accounting.
    """
    from repro.runner.cache import ResultCache
    from repro.runner.pool import CampaignRunner

    cache_dir = os.path.join(args.work_dir, "smoke-cache-faults")
    shutil.rmtree(cache_dir, ignore_errors=True)
    poison = [f"smoke:b0:{i}" for i in range(args.poison_cells)]
    os.environ["REPRO_FAIL_INJECT"] = json.dumps({
        "rate": args.inject_rate, "seed": args.seed, "poison": poison,
    })
    try:
        completed = 0
        t0 = time.perf_counter()
        with CampaignRunner(
            jobs=args.jobs, cache=ResultCache(cache_dir, sync_every=SYNC_EVERY),
            max_retries=2, failure_mode="record",
        ) as runner:
            for _b, _i, outcome in runner.run_batches(
                _batches(args.cells, args.seed), runway=2,
            ):
                completed += outcome.ok
            quarantined = sorted(f.label for f in runner.quarantine.values())
            retried = runner.retried
            simulated = runner.simulated
            gate_events = len(runner.health.events)
        wall = time.perf_counter() - t0

        # Resume the identical campaign: every verdict — success or
        # quarantine — must come back from the cache, with nothing
        # re-simulated and nothing re-quarantined (no double-counting).
        cache = ResultCache(cache_dir, sync_every=SYNC_EVERY)
        with CampaignRunner(
            jobs=args.jobs, cache=cache, max_retries=2, failure_mode="record",
        ) as resumed:
            re_completed = sum(
                outcome.ok for _b, _i, outcome in resumed.run_batches(
                    _batches(args.cells, args.seed), runway=2,
                )
            )
            resumed_simulated = resumed.simulated
            resumed_failed = resumed.failed
            recalled = len(resumed.quarantine)
            failure_hits = cache.stats.failure_hits
    finally:
        os.environ.pop("REPRO_FAIL_INJECT", None)
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    expect_retries = args.inject_rate > 0 and args.cells >= 200
    checks = {
        "faults: surviving cells completed":
            completed == args.cells - args.poison_cells,
        "faults: poison cells quarantined": quarantined == sorted(poison),
        "faults: transients retried": retried > 0 or not expect_retries,
        "faults: gate decisions emitted": gate_events > 0,
        "faults: resume recalled verdicts":
            resumed_simulated == 0 and re_completed == completed,
        "faults: quarantine not double-counted":
            resumed_failed == 0 and recalled == args.poison_cells
            and failure_hits == args.poison_cells,
        "faults: memory stayed flat": peak_rss_mb < args.rss_limit_mb,
    }
    artifact = {
        "inject_rate": args.inject_rate,
        "poison_cells": args.poison_cells,
        "completed": completed,
        "quarantined": quarantined,
        "simulated": simulated,
        "retry_dispatches": retried,
        "gate_events": gate_events,
        "wall_s": wall,
        "resumed_simulated": resumed_simulated,
        "resumed_failure_hits": failure_hits,
        "peak_rss_mb": peak_rss_mb,
    }
    return checks, artifact


def phase_drive(args) -> int:
    """Crash a campaign in a child process, resume it here, assert."""
    cache_dir = args.cache_dir or os.path.join(args.work_dir, "smoke-cache")
    # Cold start: a cache left by a previous smoke run would satisfy
    # every cell before --die-after ever fires.
    shutil.rmtree(cache_dir, ignore_errors=True)
    die_after = max(1, int(args.cells * 0.6))

    crash = subprocess.run(
        [
            sys.executable, os.path.abspath(__file__),
            "--phase", "run",
            "--cells", str(args.cells),
            "--jobs", str(args.jobs),
            "--seed", str(args.seed),
            "--cache-dir", cache_dir,
            "--die-after", str(die_after),
        ],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    print(f"crash pass: exit {crash.returncode} "
          f"(expected {DIE_EXIT} after {die_after} cells)")
    if crash.returncode != DIE_EXIT:
        print(crash.stdout)
        print(crash.stderr, file=sys.stderr)
        print("FAIL: crash pass did not die where instructed")
        return 1

    # Resume: identical campaign, same cache directory, this process.
    from repro.analysis.stats import StreamingSummary
    from repro.runner.cache import ResultCache
    from repro.runner.pool import CampaignRunner

    cache = ResultCache(cache_dir, sync_every=SYNC_EVERY)
    reclaimed = cache.gc_tmp()
    makespan = StreamingSummary()
    completed = 0
    t0 = time.perf_counter()
    with CampaignRunner(jobs=args.jobs, cache=cache) as runner:
        for jobs in _batches(args.cells, args.seed):
            for _i, record in runner.run_sims_ordered(jobs):
                makespan.add(record.makespan)
                completed += 1
        resumed_simulated = runner.simulated
    wall = time.perf_counter() - t0
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    # The crash synced at least (die_after - SYNC_EVERY) completed cells;
    # the resume may re-simulate only the unsynced remainder.
    max_resim = args.cells - die_after + SYNC_EVERY
    checks = {
        "resumed from checkpoint": resumed_simulated <= max_resim,
        "every cell completed": completed == args.cells,
        "memory stayed flat": peak_rss_mb < args.rss_limit_mb,
    }
    fault_checks, fault_artifact = phase_faults(args)
    checks.update(fault_checks)
    artifact = {
        "faults": fault_artifact,
        "schema": SCHEMA,
        "cells": args.cells,
        "jobs": args.jobs,
        "die_after": die_after,
        "crash_exit": crash.returncode,
        "resumed_simulated": resumed_simulated,
        "max_resimulated_allowed": max_resim,
        "tmp_files_reclaimed": reclaimed,
        "completed": completed,
        "wall_s": wall,
        "cells_per_sec": completed / wall if wall > 0 else 0.0,
        "makespan_mean": makespan.result().mean,
        "peak_rss_mb": peak_rss_mb,
        "rss_limit_mb": args.rss_limit_mb,
        "passed": all(checks.values()),
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")

    for name, ok in sorted(checks.items()):
        print(f"{'ok  ' if ok else 'FAIL'} {name}")
    print(f"resumed pass simulated {resumed_simulated}/{args.cells} cells "
          f"(<= {max_resim} allowed), peak RSS {peak_rss_mb:.1f} MB, "
          f"artifact -> {out}")
    return 0 if artifact["passed"] else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--phase", choices=("drive", "run", "faults"),
                    default="drive")
    ap.add_argument("--cells", type=int, default=5000)
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--cache-dir", default=None)
    ap.add_argument("--work-dir", default="bench_out")
    ap.add_argument("--die-after", type=int, default=0,
                    help="(phase run) hard-exit after this many simulations")
    ap.add_argument("--inject-rate", type=float, default=0.05,
                    help="deterministic transient-failure rate for the "
                         "injected-failure phase")
    ap.add_argument("--poison-cells", type=int, default=3,
                    help="cells that fail permanently on every attempt")
    ap.add_argument("--rss-limit-mb", type=float, default=1536.0)
    ap.add_argument("--out", default="bench_out/scale_smoke.json")
    args = ap.parse_args(argv)
    if args.phase == "run":
        if not args.cache_dir:
            ap.error("--phase run requires --cache-dir")
        return phase_run(args)
    if args.phase == "faults":
        checks, artifact = phase_faults(args)
        for name, ok in sorted(checks.items()):
            print(f"{'ok  ' if ok else 'FAIL'} {name}")
        print(json.dumps(artifact, indent=2, sort_keys=True))
        return 0 if all(checks.values()) else 1
    return phase_drive(args)


if __name__ == "__main__":
    raise SystemExit(main())
