#!/usr/bin/env bash
# Tier-2 static-analysis gate (referenced from ROADMAP.md).
#
# Proves the plan-time checking layer end to end:
#   1. the staticcheck suites — mutation self-tests for every model check,
#      schedule-audit check, lint check and whole-program check (a check
#      that cannot catch its own seeded defect is worthless);
#   2. the determinism lint over src/repro — must be clean modulo the
#      packaged allowlist;
#   3. the deep whole-program pass over src/repro — interprocedural
#      determinism taint from the campaign-entry roots, pickle-boundary
#      safety of worker payloads, concurrency/lifecycle hazards — clean
#      modulo the allowlist and the committed burn-down baseline, with
#      JSON + SARIF findings reports left in bench_out/ for CI upload;
#   4. the model checker + schedule audit over every golden suite x
#      scheduler cell — the pinned regression grid must be statically
#      sound, not merely numerically stable;
#   5. live CLI cross-checks — `repro-flow check` on a feasible and an
#      infeasible cell (exit codes 0 / 1), and a --precheck'ed run.
#
# Usage: bash scripts/check_staticcheck.sh   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== staticcheck self-tests (model, schedule, lint, deep) =="
python -m pytest -q \
    tests/test_staticcheck_model.py \
    tests/test_staticcheck_schedule.py \
    tests/test_staticcheck_lint.py \
    tests/test_staticcheck_callgraph.py \
    tests/test_staticcheck_flow.py \
    tests/test_staticcheck_pickle.py \
    tests/test_staticcheck_concurrency.py \
    tests/test_workflow_validate.py

echo "== determinism lint over src/repro =="
python -m repro.cli lint src/repro

echo "== deep whole-program pass over src/repro =="
mkdir -p bench_out
python -m repro.cli lint src/repro --deep \
    --json bench_out/staticcheck_findings.json \
    --sarif bench_out/staticcheck_findings.sarif

echo "== model checker over the golden grid =="
python - <<'EOF'
from repro.runner.campaign import golden_jobs
from repro.staticcheck import precheck_job

bad = 0
jobs = golden_jobs()
for job in jobs:
    report = precheck_job(job)
    if not report.ok:
        bad += 1
        print(f"FAIL {job.label}:")
        print(report.render())
print(f"golden grid: {len(jobs) - bad}/{len(jobs)} cells statically sound")
raise SystemExit(1 if bad else 0)
EOF

echo "== CLI cross-check: repro-flow check exit codes =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

python -m repro.cli check --workflow montage --size 20 --cluster hybrid

python - "$workdir/gpu_only.json" <<'EOF'
import json, sys
from repro.workflows.generators import montage
from repro.workflows.serialize import workflow_to_json

doc = json.loads(workflow_to_json(montage(n_images=3, seed=0)))
for task in doc["tasks"]:
    task["affinity"] = {"gpu": 1.0, "cpu": 0.0}
open(sys.argv[1], "w", encoding="utf-8").write(json.dumps(doc))
EOF
if python -m repro.cli check --input "$workdir/gpu_only.json" --cluster cpu \
    > "$workdir/infeasible.txt"; then
    echo "FAIL: check exited 0 on an infeasible cell" >&2
    exit 1
fi
grep -q "stranded-task" "$workdir/infeasible.txt" \
    || { echo "FAIL: infeasible cell lacks stranded-task finding" >&2; exit 1; }

echo "-- run --precheck"
python -m repro.cli run --workflow montage --size 20 --precheck > /dev/null

echo "staticcheck gate: OK"
