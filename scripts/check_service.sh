#!/usr/bin/env bash
# Tier-2 service-smoke gate (referenced from ROADMAP.md).
#
# Runs scripts/service_smoke.py: boots the campaign service API, submits
# a campaign over HTTP, SIGKILLs a worker mid-batch while it holds a
# live lease, and lets a second worker reclaim and finish.  Passes only
# if
#
#   * the dead worker's lease is reclaimed (logical-tick expiry) and the
#     campaign completes with no cell failed or quarantined;
#   * every final record is byte-identical to an uninterrupted inline
#     run of the same cells (the service path IS the campaign path);
#   * resubmitting the identical campaign resolves from the shared
#     result cache (cached cells > 0; everything the surviving worker
#     wrote comes back as a hit);
#   * the server shuts down cleanly on POST /api/stop.
#
# Artifacts for CI upload: bench_out/service_smoke.json (checks +
# metrics) and bench_out/service-smoke/store_dump.json (full store
# dump), plus the serve/worker logs under bench_out/service-smoke/.
#
# Overrides: REPRO_SERVICE_SMOKE_CELLS (default 12),
#            REPRO_SERVICE_SMOKE_STALL (default 4).
#
# Usage: bash scripts/check_service.sh   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== service smoke: HTTP submit + worker SIGKILL + lease reclaim =="
python scripts/service_smoke.py \
    --cells "${REPRO_SERVICE_SMOKE_CELLS:-12}" \
    --stall-after "${REPRO_SERVICE_SMOKE_STALL:-4}" \
    --out bench_out/service_smoke.json

echo "service gate: OK"
