#!/usr/bin/env bash
# Tier-2 benchmark-trajectory gate (referenced from ROADMAP.md).
#
# Runs scripts/bench_report.py over the pinned golden grid, writes a
# schema-versioned BENCH_<sha>.json into bench_out/, and checks the
# tracked series against the committed baseline
# (benchmarks/bench_baseline.json):
#
#   * makespan.geomean.<scheduler> — deterministic; >10% drift fails;
#   * sim.events_per_sec — calibration-normalized throughput; >10%
#     regression fails;
#   * wall-clock / overhead series — informational trajectory only.
#
# Tolerance override: REPRO_BENCH_TOLERANCE (fraction, default 0.10).
#
# Usage: bash scripts/check_bench.sh   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== benchmark trajectory report vs committed baseline =="
python scripts/bench_report.py \
    --out-dir bench_out \
    --baseline benchmarks/bench_baseline.json

echo "bench gate: OK"
