#!/usr/bin/env python
"""Regenerate the golden-regression fixture (tests/golden/makespans.json).

Run after an *intentional* change to scheduler numerics::

    PYTHONPATH=src python scripts/regen_golden.py

then eyeball the diff before committing — every changed number is a
behaviour change somebody must be able to defend in review.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner.campaign import (  # noqa: E402
    GOLDEN_NOISE_CV,
    GOLDEN_SCHEDULERS,
    GOLDEN_SEED,
    GOLDEN_SIZE,
    golden_jobs,
    golden_makespans,
)
from repro.staticcheck import precheck_job  # noqa: E402

FIXTURE = os.path.join(
    os.path.dirname(__file__), "..", "tests", "golden", "makespans.json"
)


def main() -> int:
    # Never pin numbers from a statically unsound cell: model-check and
    # schedule-audit every cell before regenerating anything.
    jobs = golden_jobs()
    unsound = 0
    for job in jobs:
        report = precheck_job(job)
        if not report.ok:
            unsound += 1
            print(f"UNSOUND {job.label}:", file=sys.stderr)
            print(report.render(), file=sys.stderr)
    if unsound:
        print(
            f"refusing to regenerate: {unsound}/{len(jobs)} golden cells "
            f"failed the static check",
            file=sys.stderr,
        )
        return 1
    print(f"static check: {len(jobs)}/{len(jobs)} golden cells sound")

    doc = {
        "_comment": (
            "Pinned makespans of the golden suite x scheduler grid; "
            "regenerate with scripts/regen_golden.py after intentional "
            "numeric changes."
        ),
        "size": GOLDEN_SIZE,
        "seed": GOLDEN_SEED,
        "noise_cv": GOLDEN_NOISE_CV,
        "schedulers": list(GOLDEN_SCHEDULERS),
        "makespans": golden_makespans(),
    }
    os.makedirs(os.path.dirname(FIXTURE), exist_ok=True)
    with open(FIXTURE, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    n = sum(len(v) for v in doc["makespans"].values())
    print(f"wrote {n} golden makespans to {os.path.normpath(FIXTURE)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
