"""Plain-text table formatting for the benchmark harness.

The benches print their tables with :func:`format_table`, which renders a
GitHub-style grid from a header row plus value rows, right-aligning
numbers and keeping column widths stable across rows.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table.

    Numbers are formatted to ``precision`` and right-aligned; everything
    else is left-aligned.  Returns the table as one string (no trailing
    newline).
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    numeric: List[bool] = [True] * len(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        cells = []
        for i, value in enumerate(row):
            cells.append(_fmt(value, precision))
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                numeric[i] = False
        rendered.append(cells)

    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for irow, cells in enumerate(rendered):
        padded = []
        for i, cell in enumerate(cells):
            if numeric[i] and irow > 0:
                padded.append(cell.rjust(widths[i]))
            else:
                padded.append(cell.ljust(widths[i]))
        lines.append(" | ".join(padded))
        if irow == 0:
            lines.append(sep)
    return "\n".join(lines)
