"""Standard workflow-scheduling figures of merit.

Definitions follow the heterogeneous-scheduling literature:

* **Makespan** — completion time of the last exit task.
* **SLR** (schedule length ratio) — makespan over the minimum possible
  critical-path time (each critical task on its best device, zero
  communication).  SLR >= 1 always; closer to 1 is better, and SLR is
  comparable across workflows of different scale.
* **Speedup** — serial time (whole workflow on the single best device
  able to run everything, or per-task best CPU) over makespan.
* **Efficiency** — speedup per device.
* **Utilization** — busy fraction of the devices over the makespan.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.platform.cluster import Cluster
from repro.platform.devices import DeviceClass
from repro.schedulers.base import SchedulingContext
from repro.workflows.graph import Workflow


def makespan_of(result) -> float:
    """Makespan of a RunResult / ExecutionResult / Schedule."""
    return float(getattr(result, "makespan"))


def critical_path_best_time(context: SchedulingContext) -> float:
    """Length of the critical path with every task on its best device.

    The classical SLR denominator: communication is ignored and each task
    contributes its minimum execution time.
    """
    wf = context.workflow
    best: Dict[str, float] = {}
    for name in wf.topological_order():
        incoming = max(
            (best[p] for p in wf.predecessors(name)), default=0.0
        )
        best[name] = incoming + context.best_exec(name)
    return max(best.values(), default=0.0)


def schedule_length_ratio(makespan: float, context: SchedulingContext) -> float:
    """SLR = makespan / best-case critical path time."""
    denom = critical_path_best_time(context)
    if denom <= 0:
        return float("inf") if makespan > 0 else 1.0
    return makespan / denom


def serial_time(
    workflow: Workflow, cluster: Cluster, cpu_only: bool = True
) -> float:
    """Time to run the whole workflow serially.

    With ``cpu_only`` (the conventional speedup baseline) each task runs
    on the fastest CPU; otherwise each task takes its global best time.
    """
    model = cluster.execution_model
    total = 0.0
    for task in workflow.tasks.values():
        candidates = []
        for d in cluster.devices:
            if cpu_only and d.device_class != DeviceClass.CPU:
                continue
            if model.eligible(task, d.spec) and d.spec.memory_gb >= task.memory_gb:
                candidates.append(model.estimate(task, d.spec))
        if not candidates:
            # CPU-ineligible task: fall back to its global best device.
            candidates = [
                model.estimate(task, d.spec)
                for d in cluster.devices
                if model.eligible(task, d.spec)
            ]
        total += min(candidates)
    return total


def speedup(
    makespan: float, workflow: Workflow, cluster: Cluster, cpu_only: bool = True
) -> float:
    """Serial time over makespan."""
    if makespan <= 0:
        return float("inf")
    return serial_time(workflow, cluster, cpu_only) / makespan


def efficiency(
    makespan: float, workflow: Workflow, cluster: Cluster,
    cpu_only: bool = True,
) -> float:
    """Speedup per device."""
    n = len(cluster.devices)
    if n == 0:
        return 0.0
    return speedup(makespan, workflow, cluster, cpu_only) / n


def average_utilization(cluster: Cluster, makespan: float) -> float:
    """Mean busy fraction over all devices for a finished run."""
    if makespan <= 0 or not cluster.devices:
        return 0.0
    return sum(d.utilization(makespan) for d in cluster.devices) / len(
        cluster.devices
    )


def per_class_utilization(
    cluster: Cluster, makespan: float
) -> Dict[str, float]:
    """Mean busy fraction per device class."""
    if makespan <= 0:
        return {}
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for d in cluster.devices:
        key = str(d.device_class)
        sums[key] = sums.get(key, 0.0) + d.utilization(makespan)
        counts[key] = counts.get(key, 0) + 1
    return {k: sums[k] / counts[k] for k in sums}
