"""Multi-run comparison tables.

:class:`ComparisonTable` accumulates (row, column) -> value measurements —
typically (workflow, scheduler) -> makespan — and renders/normalizes them.
It is the backbone of the T1/T2/T3 tables.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.analysis.stats import geometric_mean


class ComparisonTable:
    """A (row x column) table of numeric measurements."""

    def __init__(self, row_label: str = "workflow") -> None:
        self.row_label = row_label
        self._rows: List[str] = []
        self._cols: List[str] = []
        self._values: Dict[tuple, float] = {}

    def set(self, row: str, col: str, value: float) -> None:
        """Record one cell (overwrites)."""
        if row not in self._rows:
            self._rows.append(row)
        if col not in self._cols:
            self._cols.append(col)
        self._values[(row, col)] = float(value)

    def get(self, row: str, col: str) -> float:
        """One cell's value; KeyError if missing."""
        return self._values[(row, col)]

    @property
    def rows(self) -> List[str]:
        """Row keys in insertion order."""
        return list(self._rows)

    @property
    def columns(self) -> List[str]:
        """Column keys in insertion order."""
        return list(self._cols)

    def row_values(self, row: str) -> Dict[str, float]:
        """All cells of one row as {column: value}."""
        return {
            c: self._values[(row, c)]
            for c in self._cols
            if (row, c) in self._values
        }

    def column_values(self, col: str) -> Dict[str, float]:
        """All cells of one column as {row: value}."""
        return {
            r: self._values[(r, col)]
            for r in self._rows
            if (r, col) in self._values
        }

    def normalized(self, reference_col: str) -> "ComparisonTable":
        """A copy with every row divided by its reference-column cell."""
        out = ComparisonTable(self.row_label)
        for r in self._rows:
            ref = self._values.get((r, reference_col))
            if ref is None or ref == 0:
                raise ValueError(
                    f"row {r!r} lacks a usable reference cell {reference_col!r}"
                )
            for c in self._cols:
                if (r, c) in self._values:
                    out.set(r, c, self._values[(r, c)] / ref)
        return out

    def with_geomean_row(self, label: str = "geo-mean") -> "ComparisonTable":
        """A copy with an appended geometric-mean summary row."""
        out = ComparisonTable(self.row_label)
        for r in self._rows:
            for c, v in self.row_values(r).items():
                out.set(r, c, v)
        for c in self._cols:
            col = self.column_values(c)
            if col and all(v > 0 for v in col.values()):
                out.set(label, c, geometric_mean(col.values()))
        return out

    def best_column_per_row(self, minimize: bool = True) -> Dict[str, str]:
        """Winner column of each row."""
        out: Dict[str, str] = {}
        for r in self._rows:
            vals = self.row_values(r)
            if vals:
                key = min if minimize else max
                out[r] = key(vals, key=lambda c: (vals[c], c))
        return out

    def render(self, precision: int = 3, title: Optional[str] = None) -> str:
        """Text rendering via :func:`repro.analysis.report.format_table`."""
        headers = [self.row_label] + self._cols
        rows = []
        for r in self._rows:
            row: List[Any] = [r]
            for c in self._cols:
                row.append(self._values.get((r, c), float("nan")))
            rows.append(row)
        return format_table(headers, rows, precision=precision, title=title)

    def __str__(self) -> str:
        return self.render()
