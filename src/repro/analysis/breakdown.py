"""Post-run breakdowns: where did the time, work and bytes go?

Answers the profiling questions an operator asks after a campaign run:
which *stage* dominated (per-category busy time), which *device class*
carried the work, and how utilization splits across the platform —
computed from the execution trace and device intervals, presentable as
text tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import format_table
from repro.platform.cluster import Cluster
from repro.sim.trace import TraceRecorder


@dataclass
class CategoryBreakdown:
    """Aggregates for one task category."""

    category: str
    tasks: int = 0
    busy_seconds: float = 0.0
    energy_j: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Average execution time per task of this category."""
        return self.busy_seconds / self.tasks if self.tasks else 0.0


def by_category(trace: TraceRecorder) -> Dict[str, CategoryBreakdown]:
    """Per-category busy time and energy from ``task.finish`` records."""
    out: Dict[str, CategoryBreakdown] = {}
    for rec in trace.of_kind("task.finish"):
        cat = rec.get("category", "unknown")
        entry = out.setdefault(cat, CategoryBreakdown(cat))
        entry.tasks += 1
        entry.busy_seconds += float(rec.get("duration", 0.0))
        entry.energy_j += float(rec.get("energy_j", 0.0))
    return out


def by_device_class(
    cluster: Cluster, trace: TraceRecorder
) -> Dict[str, Dict[str, float]]:
    """Per-device-class task counts and busy seconds."""
    class_of = {d.uid: str(d.device_class) for d in cluster.devices}
    out: Dict[str, Dict[str, float]] = {}
    for rec in trace.of_kind("task.finish"):
        cls = class_of.get(rec.get("device"), "unknown")
        entry = out.setdefault(cls, {"tasks": 0.0, "busy_s": 0.0})
        entry["tasks"] += 1
        entry["busy_s"] += float(rec.get("duration", 0.0))
    return out


def transfer_summary(trace: TraceRecorder) -> Dict[str, float]:
    """Bytes moved, split by source kind (peer node vs shared storage)."""
    peer = 0.0
    storage = 0.0
    for rec in trace.of_kind("transfer.start"):
        size = float(rec.get("size_mb", 0.0))
        if rec.get("src") == "<storage>":
            storage += size
        else:
            peer += size
    return {
        "peer_mb": peer,
        "storage_mb": storage,
        "total_mb": peer + storage,
    }


def render_breakdown(
    cluster: Cluster,
    trace: TraceRecorder,
    makespan: Optional[float] = None,
) -> str:
    """One human-readable profiling report for a finished run."""
    chunks = []

    cats = sorted(by_category(trace).values(),
                  key=lambda c: -c.busy_seconds)
    chunks.append(format_table(
        ["category", "tasks", "busy (s)", "mean (s)", "energy (J)"],
        [[c.category, c.tasks, c.busy_seconds, c.mean_seconds, c.energy_j]
         for c in cats],
        title="-- busy time by task category --",
    ))

    classes = by_device_class(cluster, trace)
    chunks.append(format_table(
        ["class", "tasks", "busy (s)"],
        [[cls, int(v["tasks"]), v["busy_s"]]
         for cls, v in sorted(classes.items())],
        title="-- work by device class --",
    ))

    if makespan and makespan > 0:
        from repro.analysis.metrics import per_class_utilization

        util = per_class_utilization(cluster, makespan)
        chunks.append(format_table(
            ["class", "utilization"],
            [[cls, u] for cls, u in sorted(util.items())],
            title="-- utilization by device class --",
        ))

    moved = transfer_summary(trace)
    chunks.append(format_table(
        ["source", "MB"],
        [["peer nodes", moved["peer_mb"]],
         ["shared storage", moved["storage_mb"]],
         ["total", moved["total_mb"]]],
        title="-- data movement --",
    ))
    return "\n\n".join(chunks)
