"""ASCII Gantt charts from execution traces.

Renders one row per device with task occupancy over virtual time — the
quickest way to eyeball a schedule's shape in a terminal or a test log::

    n0:cpu-std#0 |##m0##....##m3##########..........|
    n0:gpu-std#0 |...####Seismo####...####Seismo####|
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.trace import TraceRecorder


def _collect_intervals(trace: TraceRecorder) -> Dict[str, List[Tuple[float, float, str]]]:
    """Per-device (start, end, task) execution intervals from a trace."""
    starts: Dict[Tuple[str, str, int], float] = {}
    attempt_counter: Dict[Tuple[str, str], int] = {}
    out: Dict[str, List[Tuple[float, float, str]]] = {}
    for rec in trace:
        if rec.kind == "task.start":
            key = (rec.get("task"), rec.get("device"))
            n = attempt_counter.get(key, 0)
            attempt_counter[key] = n + 1
            starts[(key[0], key[1], n)] = rec.time
        elif rec.kind in ("task.finish", "fault.task"):
            task, device = rec.get("task"), rec.get("device")
            if device is None:
                continue
            key = (task, device)
            n = attempt_counter.get(key, 1) - 1
            start = starts.pop((task, device, n), None)
            if start is None:
                continue
            out.setdefault(device, []).append((start, rec.time, task))
    for dev in out:
        out[dev].sort()
    return out


def ascii_gantt(
    trace: TraceRecorder,
    width: int = 72,
    makespan: Optional[float] = None,
) -> str:
    """Render the trace as an ASCII Gantt chart (one line per device)."""
    intervals = _collect_intervals(trace)
    if not intervals:
        return "(empty trace)"
    if makespan is None:
        makespan = max(e for ivs in intervals.values() for _s, e, _t in ivs)
    if makespan <= 0:
        return "(zero-length run)"

    label_width = max(len(d) for d in intervals)
    lines: List[str] = [
        f"{'device'.ljust(label_width)} |{'time -> %.3fs' % makespan}",
    ]
    for device in sorted(intervals):
        row = [" "] * width
        for start, end, task in intervals[device]:
            a = int(start / makespan * (width - 1))
            b = max(a + 1, int(end / makespan * (width - 1)) + 1)
            b = min(b, width)
            span = b - a
            label = task[: max(0, span - 2)]
            fill = ("#" + label + "#" * span)[:span]
            for i, ch in enumerate(fill):
                row[a + i] = ch
        lines.append(f"{device.ljust(label_width)} |{''.join(row)}|")
    return "\n".join(lines)
