"""Metrics, comparison tables, Gantt rendering and statistics.

* :mod:`~repro.analysis.metrics` — the standard workflow-scheduling
  figures of merit (makespan, SLR, speedup, efficiency, utilization).
* :mod:`~repro.analysis.stats` — repetition statistics (means, CIs,
  geometric means) used by the benchmark harness.
* :mod:`~repro.analysis.compare` — multi-run comparison tables.
* :mod:`~repro.analysis.gantt` — ASCII Gantt charts from traces.
* :mod:`~repro.analysis.report` — plain-text table formatting.
"""

from repro.analysis.metrics import (
    average_utilization,
    efficiency,
    makespan_of,
    schedule_length_ratio,
    serial_time,
    speedup,
)
from repro.analysis.stats import confidence_interval, geometric_mean, summarize
from repro.analysis.compare import ComparisonTable
from repro.analysis.gantt import ascii_gantt
from repro.analysis.report import format_table

__all__ = [
    "makespan_of",
    "schedule_length_ratio",
    "serial_time",
    "speedup",
    "efficiency",
    "average_utilization",
    "confidence_interval",
    "geometric_mean",
    "summarize",
    "ComparisonTable",
    "ascii_gantt",
    "format_table",
]
