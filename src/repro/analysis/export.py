"""Machine-readable exports of experiment artefacts.

Tables render to CSV, run results flatten to JSON-safe dicts, and traces
stream to JSON-lines — the formats downstream notebooks and plotting
scripts actually consume.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Optional

from repro.analysis.compare import ComparisonTable
from repro.sim.trace import TraceRecorder


def table_to_csv(table: ComparisonTable, path: Optional[str] = None) -> str:
    """Render a comparison table as CSV (written to ``path`` if given)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([table.row_label] + table.columns)
    for row in table.rows:
        values = table.row_values(row)
        writer.writerow(
            [row] + [values.get(c, "") for c in table.columns]
        )
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(text)
    return text


def table_from_csv(text: str) -> ComparisonTable:
    """Parse a CSV produced by :func:`table_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise ValueError("empty CSV")
    header = rows[0]
    table = ComparisonTable(header[0])
    for row in rows[1:]:
        for col, cell in zip(header[1:], row[1:]):
            if cell != "":
                table.set(row[0], col, float(cell))
    return table


def run_result_to_dict(result) -> Dict[str, Any]:
    """Flatten a :class:`~repro.core.orchestrator.RunResult` to JSON-safe data."""
    execution = result.execution
    return {
        "workflow": result.workflow,
        "cluster": result.cluster,
        "mode": result.config.mode,
        "scheduler": (
            result.config.scheduler
            if isinstance(result.config.scheduler, str)
            else result.config.scheduler.name
        ),
        "seed": result.config.seed,
        "summary": result.summary(),
        "tasks": {
            name: {
                "state": rec.state,
                "device": rec.device,
                "start": rec.start,
                "finish": rec.finish,
                "attempts": rec.attempts,
                "faults": rec.faults,
            }
            for name, rec in execution.records.items()
        },
        "energy": {
            uid: {
                "busy_s": d.busy_seconds,
                "idle_s": d.idle_seconds,
                "busy_j": d.busy_joules,
                "idle_j": d.idle_joules,
            }
            for uid, d in result.energy.devices.items()
        },
    }


def run_result_to_json(result, path: Optional[str] = None, indent: int = 2) -> str:
    """Serialize a run result to JSON (written to ``path`` if given)."""
    text = json.dumps(run_result_to_dict(result), indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def trace_to_jsonl(trace: TraceRecorder, path: Optional[str] = None) -> str:
    """Serialize a trace as JSON-lines, one record per line."""
    lines = [
        json.dumps({"time": r.time, "kind": r.kind, **r.data}, sort_keys=True)
        for r in trace
    ]
    text = "\n".join(lines)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text
