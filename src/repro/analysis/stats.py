"""Repetition statistics for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean, spread and range of one repeated measurement."""

    n: int
    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Flat-dict view for table assembly."""
        return {
            "n": float(self.n),
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample (ddof=1 std; normal-approx CI)."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(vals.mean())
    std = float(vals.std(ddof=1)) if vals.size > 1 else 0.0
    ci95 = 1.96 * std / math.sqrt(vals.size) if vals.size > 1 else 0.0
    return Summary(
        n=int(vals.size),
        mean=mean,
        std=std,
        ci95=ci95,
        minimum=float(vals.min()),
        maximum=float(vals.max()),
    )


def confidence_interval(values: Sequence[float]) -> float:
    """Half-width of the 95% normal-approximation CI."""
    return summarize(values).ci95


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the right way to average ratios like SLR)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot take the geometric mean of nothing")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(vals))))


class StreamingSummary:
    """Welford accumulator: :func:`summarize` in O(1) memory.

    Feeds one value at a time (the streaming-campaign aggregation path,
    where records arrive cell-by-cell and the series never exists as a
    list).  ``result()`` agrees with :func:`summarize` over the same
    series to ~1e-12 relative — the Welford recurrence and numpy's
    two-pass moments differ only in rounding.
    """

    __slots__ = ("n", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        v = float(value)
        self.n += 1
        delta = v - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (v - self.mean)
        if v < self.minimum:
            self.minimum = v
        if v > self.maximum:
            self.maximum = v

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1), 0.0 below two samples."""
        if self.n < 2:
            return 0.0
        # Rounding can push m2 infinitesimally negative on constant series.
        return math.sqrt(max(self._m2, 0.0) / (self.n - 1))

    @property
    def ci95(self) -> float:
        if self.n < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def result(self) -> Summary:
        """The finished :class:`Summary`; raises on an empty stream."""
        if self.n == 0:
            raise ValueError("cannot summarize an empty sample")
        return Summary(
            n=self.n,
            mean=self.mean,
            std=self.std,
            ci95=self.ci95,
            minimum=self.minimum,
            maximum=self.maximum,
        )


class StreamingGeomean:
    """Log-sum accumulator: :func:`geometric_mean` in O(1) memory."""

    __slots__ = ("n", "_log_sum")

    def __init__(self) -> None:
        self.n = 0
        self._log_sum = 0.0

    def add(self, value: float) -> None:
        v = float(value)
        if v <= 0:
            raise ValueError("geometric mean requires strictly positive values")
        self.n += 1
        self._log_sum += math.log(v)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def result(self) -> float:
        if self.n == 0:
            raise ValueError("cannot take the geometric mean of nothing")
        return math.exp(self._log_sum / self.n)


def normalized_to(values: Dict[str, float], reference: str) -> Dict[str, float]:
    """Normalize a metric dict to one of its keys (reference -> 1.0)."""
    if reference not in values:
        raise KeyError(f"reference {reference!r} not among {sorted(values)}")
    ref = values[reference]
    if ref == 0:
        raise ValueError("reference value is zero")
    return {k: v / ref for k, v in values.items()}


def rank_order(values: Dict[str, float], ascending: bool = True) -> List[str]:
    """Keys sorted by value (ties broken by key for determinism)."""
    return sorted(values, key=lambda k: (values[k] if ascending else -values[k], k))
