"""Repetition statistics for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean, spread and range of one repeated measurement."""

    n: int
    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Flat-dict view for table assembly."""
        return {
            "n": float(self.n),
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample (ddof=1 std; normal-approx CI)."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(vals.mean())
    std = float(vals.std(ddof=1)) if vals.size > 1 else 0.0
    ci95 = 1.96 * std / math.sqrt(vals.size) if vals.size > 1 else 0.0
    return Summary(
        n=int(vals.size),
        mean=mean,
        std=std,
        ci95=ci95,
        minimum=float(vals.min()),
        maximum=float(vals.max()),
    )


def confidence_interval(values: Sequence[float]) -> float:
    """Half-width of the 95% normal-approximation CI."""
    return summarize(values).ci95


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the right way to average ratios like SLR)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot take the geometric mean of nothing")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(vals))))


def normalized_to(values: Dict[str, float], reference: str) -> Dict[str, float]:
    """Normalize a metric dict to one of its keys (reference -> 1.0)."""
    if reference not in values:
        raise KeyError(f"reference {reference!r} not among {sorted(values)}")
    ref = values[reference]
    if ref == 0:
        raise ValueError("reference value is zero")
    return {k: v / ref for k, v in values.items()}


def rank_order(values: Dict[str, float], ascending: bool = True) -> List[str]:
    """Keys sorted by value (ties broken by key for determinism)."""
    return sorted(values, key=lambda k: (values[k] if ascending else -values[k], k))
