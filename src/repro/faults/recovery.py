"""Recovery policies — what the orchestrator does about failures.

The policy is declarative; the enforcement logic lives in the executor and
orchestrator (:mod:`repro.core`).  Semantics:

* ``max_retries`` — how many times a crashed task is re-executed before
  the run is declared failed.  Retries re-enter scheduling, so a task that
  crashed on a dying device can move elsewhere.
* ``checkpoint_interval_s`` — task-level checkpointing: a crashed task
  resumes from its last checkpoint instead of from zero, losing at most
  one interval of progress, at the price of ``checkpoint_overhead`` of
  extra runtime while executing.  None disables checkpointing.
* ``archive_outputs`` — write every produced file back to shared storage
  in the background, so a node loss never forces re-running producers.
* ``replicate_tasks`` — submit each task to this many devices and take
  the first finisher (hot redundancy); 1 disables replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RecoveryPolicy:
    """Declarative failure-handling configuration."""

    max_retries: int = 3
    checkpoint_interval_s: Optional[float] = None
    checkpoint_overhead: float = 0.05
    archive_outputs: bool = False
    replicate_tasks: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.checkpoint_interval_s is not None and self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint interval must be positive")
        if not 0 <= self.checkpoint_overhead < 1:
            raise ValueError("checkpoint overhead must be in [0, 1)")
        if self.replicate_tasks < 1:
            raise ValueError("replicate_tasks must be >= 1")

    @property
    def checkpointing(self) -> bool:
        """Whether task-level checkpointing is on."""
        return self.checkpoint_interval_s is not None

    def effective_duration(self, duration: float) -> float:
        """Execution time including checkpoint overhead."""
        if not self.checkpointing:
            return duration
        return duration * (1.0 + self.checkpoint_overhead)

    def lost_work(self, progress: float) -> float:
        """Work lost when crashing ``progress`` seconds into execution.

        Without checkpointing everything is lost; with it, only the tail
        since the last checkpoint boundary.
        """
        if progress < 0:
            raise ValueError("progress must be non-negative")
        if not self.checkpointing:
            return progress
        return progress % self.checkpoint_interval_s

    @staticmethod
    def none() -> "RecoveryPolicy":
        """Fail the run on the first fault (the no-protection baseline)."""
        return RecoveryPolicy(max_retries=0)

    @staticmethod
    def retry(n: int = 3) -> "RecoveryPolicy":
        """Plain re-execution from scratch."""
        return RecoveryPolicy(max_retries=n)

    @staticmethod
    def checkpoint(interval_s: float, overhead: float = 0.05, retries: int = 10) -> "RecoveryPolicy":
        """Re-execution resuming from periodic checkpoints."""
        return RecoveryPolicy(
            max_retries=retries,
            checkpoint_interval_s=interval_s,
            checkpoint_overhead=overhead,
        )

    @staticmethod
    def replicated(k: int = 2, retries: int = 3) -> "RecoveryPolicy":
        """Hot task replication (first of k finishers wins)."""
        return RecoveryPolicy(max_retries=retries, replicate_tasks=k)
