"""Fault injection and recovery policies.

Models the two failure classes that matter for long-running discovery
campaigns:

* **Transient task faults** — a task crashes partway through (bit flips,
  OOM kills, preemption); exponential arrival during execution.
* **Permanent device faults** — a device dies for the rest of the run
  (Poisson over wall-clock time); its in-flight task aborts and the
  node-local replicas it held may be lost.

:class:`FaultInjector` draws the failures deterministically from a named
RNG stream; :class:`RecoveryPolicy` tells the orchestrator what to do about
them (retry/re-place, task-level checkpointing, output archiving).
"""

from repro.faults.models import DeviceFault, FaultModel
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryPolicy

__all__ = [
    "FaultModel",
    "DeviceFault",
    "FaultInjector",
    "RecoveryPolicy",
]
