"""Statistical fault models.

Rates are chosen per experiment; the F5 sweep varies ``task_fault_rate``
over orders of magnitude to chart makespan degradation under each recovery
policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class DeviceFault:
    """A scheduled permanent device failure."""

    time: float
    device_uid: str
    loses_local_data: bool = True


@dataclass(frozen=True)
class FaultModel:
    """Failure statistics for one run.

    Attributes:
        task_fault_rate: Transient failures per second of task execution
            (exponential inter-arrival).  0 disables transient faults.
        device_mtbf: Mean time between permanent failures *per device*,
            seconds of wall-clock.  None disables device faults.
        device_data_loss: Whether a dead device's node loses the replicas
            that lived only on that node's store.
    """

    task_fault_rate: float = 0.0
    device_mtbf: Optional[float] = None
    device_data_loss: bool = True

    def __post_init__(self) -> None:
        if self.task_fault_rate < 0:
            raise ValueError("task_fault_rate must be non-negative")
        if self.device_mtbf is not None and self.device_mtbf <= 0:
            raise ValueError("device_mtbf must be positive")

    @property
    def enabled(self) -> bool:
        """Whether any fault source is active."""
        return self.task_fault_rate > 0 or self.device_mtbf is not None

    def draw_task_failure(
        self, rng: np.random.Generator, duration: float
    ) -> Optional[float]:
        """Time *into* an execution of ``duration`` at which it crashes.

        Returns None when the execution completes unharmed.
        """
        if self.task_fault_rate <= 0 or duration <= 0:
            return None
        t = float(rng.exponential(1.0 / self.task_fault_rate))
        return t if t < duration else None

    def draw_device_failures(
        self,
        rng: np.random.Generator,
        device_uids: List[str],
        horizon: float,
        max_failures: Optional[int] = None,
    ) -> List[DeviceFault]:
        """Permanent failures over [0, horizon] across the given devices.

        At most one failure per device (it is permanent); ``max_failures``
        additionally caps the total so experiments can guarantee the
        workflow stays completable.
        """
        if self.device_mtbf is None:
            return []
        faults: List[DeviceFault] = []
        for uid in device_uids:
            t = float(rng.exponential(self.device_mtbf))
            if t < horizon:
                faults.append(DeviceFault(t, uid, self.device_data_loss))
        faults.sort(key=lambda f: f.time)
        if max_failures is not None:
            faults = faults[:max_failures]
        return faults
