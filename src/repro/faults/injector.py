"""Deterministic fault injection bound to named RNG streams.

One injector instance serves a whole run.  Task-failure draws consume the
``"faults.task"`` stream in execution order and device failures are drawn
once up front from ``"faults.device"``, so two runs with the same seed and
the same scheduler see identical fault sequences — the property the F5
policy comparison rests on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.models import DeviceFault, FaultModel
from repro.sim.rng import RngStreams


class FaultInjector:
    """Run-scoped source of fault decisions."""

    def __init__(self, model: FaultModel, rng: RngStreams) -> None:
        self.model = model
        self._task_rng = rng.stream("faults.task")
        self._device_rng = rng.stream("faults.device")
        self.task_faults_injected = 0
        self.device_faults_injected = 0

    def task_failure_at(self, duration: float) -> Optional[float]:
        """Crash offset for one task execution (None = survives)."""
        t = self.model.draw_task_failure(self._task_rng, duration)
        if t is not None:
            self.task_faults_injected += 1
        return t

    def plan_device_failures(
        self,
        device_uids: List[str],
        horizon: float,
        max_failures: Optional[int] = None,
    ) -> List[DeviceFault]:
        """Pre-draw the run's permanent device failures."""
        faults = self.model.draw_device_failures(
            self._device_rng, device_uids, horizon, max_failures
        )
        self.device_faults_injected += len(faults)
        return faults
