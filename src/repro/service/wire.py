"""Wire schemas of the campaign service: JSON in, JSON out, versioned.

Everything that crosses the service boundary — an HTTP request body, a
job-store row, a status response — is a schema-tagged JSON document.
**No pickle anywhere**: a submitted cell is the same data description a
:class:`~repro.runner.jobs.SimJob` already is (serialized workflow
document, cluster factory spec, scheduler name/spec, run-config dict),
so the server stores exactly what the worker rebuilds, and rebuilding
goes through the one construction path that makes records bit-identical
across inline, pooled and service execution.

Validation philosophy: reject early with a message that names the field.
A malformed submission never reaches the store; a malformed store row
(hand-edited database) fails loudly at lease time, not as a worker
crash three layers down.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.runner.jobs import SimJob

#: Schema tag of a campaign submission request body.
SUBMIT_SCHEMA = "repro.service.submit/v1"
#: Schema tag of every response envelope the API emits.
RESPONSE_SCHEMA = "repro.service.response/v1"
#: Schema tag of a serialized cell (one job-store row's ``job`` column).
CELL_SCHEMA = "repro.service.cell/v1"
#: Schema tag of a whole-store JSON dump (the CI artifact).
DUMP_SCHEMA = "repro.service.dump/v1"


class WireError(ValueError):
    """A request or stored document that violates the wire schema."""


def _require(payload: Dict[str, Any], field: str, types, where: str):
    """The field's value, or a :class:`WireError` naming what is wrong."""
    if field not in payload:
        raise WireError(f"{where}: missing required field {field!r}")
    value = payload[field]
    if not isinstance(value, types):
        names = (
            types.__name__ if isinstance(types, type)
            else "/".join(t.__name__ for t in types)
        )
        raise WireError(
            f"{where}: field {field!r} must be {names}, "
            f"got {type(value).__name__}"
        )
    return value


def job_to_wire(job: SimJob) -> Dict[str, Any]:
    """Serialize one simulation cell for the store / the HTTP boundary."""
    return {
        "schema": CELL_SCHEMA,
        "workflow": job.workflow,
        "cluster": job.cluster,
        "scheduler": job.scheduler,
        "config": job.config,
        "label": job.label,
    }


def job_from_wire(payload: Dict[str, Any], where: str = "cell") -> SimJob:
    """Rebuild the :class:`SimJob` a wire/store document describes."""
    if not isinstance(payload, dict):
        raise WireError(f"{where}: must be a JSON object")
    schema = payload.get("schema", CELL_SCHEMA)
    if schema != CELL_SCHEMA:
        raise WireError(f"{where}: unknown cell schema {schema!r}")
    workflow = _require(payload, "workflow", dict, where)
    cluster = _require(payload, "cluster", dict, where)
    scheduler = _require(payload, "scheduler", (str, dict), where)
    config = payload.get("config", {})
    if not isinstance(config, dict):
        raise WireError(f"{where}: field 'config' must be an object")
    label = payload.get("label", "")
    if not isinstance(label, str):
        raise WireError(f"{where}: field 'label' must be a string")
    return SimJob(
        workflow=workflow, cluster=cluster, scheduler=scheduler,
        config=config, label=label,
    )


def submission_to_wire(name: str, jobs: List[SimJob]) -> Dict[str, Any]:
    """A submission request body for the given cells (client helper)."""
    return {
        "schema": SUBMIT_SCHEMA,
        "name": name,
        "cells": [job_to_wire(job) for job in jobs],
    }


def parse_submission(payload: Any) -> Tuple[str, List[SimJob]]:
    """Validate a submission body; ``(campaign name, cells)`` or raise.

    Every cell is rebuilt through :func:`job_from_wire` here, at the
    boundary, so a submission that parses is a submission whose cells a
    worker can execute.
    """
    if not isinstance(payload, dict):
        raise WireError("submission: body must be a JSON object")
    schema = payload.get("schema")
    if schema != SUBMIT_SCHEMA:
        raise WireError(
            f"submission: expected schema {SUBMIT_SCHEMA!r}, got {schema!r}"
        )
    name = _require(payload, "name", str, "submission")
    if not name:
        raise WireError("submission: campaign name must be non-empty")
    cells = _require(payload, "cells", list, "submission")
    if not cells:
        raise WireError("submission: at least one cell is required")
    jobs = [
        job_from_wire(cell, where=f"cells[{i}]")
        for i, cell in enumerate(cells)
    ]
    return name, jobs


def response(ok: bool, **fields: Any) -> Dict[str, Any]:
    """The uniform response envelope every endpoint returns."""
    body: Dict[str, Any] = {"schema": RESPONSE_SCHEMA, "ok": ok}
    body.update(fields)
    return body
