"""The campaign service control plane (ROADMAP item 2).

A Balsam-shaped split of the campaign runner into three processes that
meet through two shared, crash-safe substrates:

* :mod:`repro.service.store` — the sqlite job store: campaigns, cells,
  the ``queued → leased → running → terminal`` state machine, and the
  logical-tick lease clock.
* :mod:`repro.service.lease` — the lease protocol's value objects and
  invariants (deterministic tokens, tick expiry, reclaim-exactly-once).
* :mod:`repro.service.worker` — the detachable worker daemon: lease a
  batch, execute it through the inline campaign path, complete
  token-guarded.
* :mod:`repro.service.api` — the stdlib-``http.server`` JSON API:
  submit, query, metrics, drain/stop.
* :mod:`repro.service.wire` — the versioned JSON schemas every boundary
  speaks (no pickle crosses the service).

Results live in the shared content-addressed
:class:`~repro.runner.cache.ResultCache`, which is what makes service
execution byte-identical to ``repro-flow campaign`` runs of the same
cells — the service adds ownership and observability, never a second
execution semantics.
"""

from repro.service.lease import Lease, LeasedCell
from repro.service.store import (
    ALLOWED_TRANSITIONS,
    CELL_STATES,
    IllegalTransition,
    JobStore,
    StoreError,
    TERMINAL_STATES,
    can_transition,
)
from repro.service.wire import (
    CELL_SCHEMA,
    DUMP_SCHEMA,
    RESPONSE_SCHEMA,
    SUBMIT_SCHEMA,
    WireError,
)

__all__ = [
    "ALLOWED_TRANSITIONS",
    "CELL_SCHEMA",
    "CELL_STATES",
    "DUMP_SCHEMA",
    "IllegalTransition",
    "JobStore",
    "Lease",
    "LeasedCell",
    "RESPONSE_SCHEMA",
    "StoreError",
    "SUBMIT_SCHEMA",
    "TERMINAL_STATES",
    "WireError",
    "can_transition",
]
