"""The lease-based worker daemon: poll, lease, execute, complete.

A worker is a plain process holding its own :class:`JobStore` connection
(processes meet through sqlite WAL, never through shared Python state)
and a :class:`~repro.runner.pool.CampaignRunner` attached to the shared
result cache.  Its loop::

    poll:  tick the logical clock, reclaim expired leases, ask the
           health gate for admission
    lease: claim a batch of queued cells (atomic; never double-assigned)
    run:   mark the batch running, resolve cache hits as ``cached``,
           execute the misses through the exact inline campaign path
           (same construction, same retry/quarantine classification,
           same cache writes — byte-identical records by construction),
           heartbeating the lease as outcomes stream in
    done:  token-guarded completion per cell; stale tokens mean the
           lease was reclaimed while we ran and our verdict is discarded

Crash-safety needs no worker cooperation: a SIGKILLed worker simply
stops heartbeating and polling, every *other* worker's polls advance
the shared logical clock past its lease expiry, and the reclaim requeues
its unfinished cells exactly once.  Cells it had already completed are
terminal in the store and present in the content-addressed cache, so
the resumed cells' records are the cached bytes, not re-rolls.

The health gate is the admission controller: each poll asks the
runner's :class:`~repro.runner.health.HealthTracker` (which has observed
every outcome this worker produced) whether to keep leasing; a ``halt``
verdict releases the current lease back to the queue and stops the
worker — a blocked campaign drains by attrition instead of grinding
through poisoned cells.

Determinism hooks for the service smoke test: ``stall_after=N`` makes
the worker write a marker file after its N-th completed cell and then
spin without heartbeating or completing — a deterministic stand-in for
"worker wedged mid-batch", giving the harness a precise, race-free
moment to SIGKILL it with leases still held.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.observe.events import emit_event
from repro.runner.health import HALT, TRANSIENT
from repro.runner.pool import CampaignHaltedError, CampaignRunner
from repro.runner.record import CellFailure, is_failure_record
from repro.service.store import (
    CACHED,
    DONE,
    FAILED,
    JobStore,
    Lease,
    QUARANTINED,
)
from repro.service.wire import job_from_wire

#: How long a worker sleeps between empty polls (seconds; bounded wait,
#: not a clock *read* — the lease clock is the store's logical tick).
POLL_SLEEP_S = 0.05

#: Default lease batch size and time-to-live (in logical ticks, i.e.
#: store polls by any worker).
DEFAULT_BATCH = 8
DEFAULT_TTL = 12


@dataclass
class WorkerStats:
    """What one worker did, for the exit report and the status API."""

    worker_id: str = ""
    polls: int = 0
    leases: int = 0
    cells: int = 0
    done: int = 0
    cached: int = 0
    failed: int = 0
    quarantined: int = 0
    stale: int = 0
    reclaimed: int = 0
    released: int = 0
    halted: bool = False
    by_state: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "worker_id": self.worker_id,
            "polls": self.polls,
            "leases": self.leases,
            "cells": self.cells,
            "done": self.done,
            "cached": self.cached,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "stale": self.stale,
            "reclaimed": self.reclaimed,
            "released": self.released,
            "halted": self.halted,
        }
        return out


class ServiceWorker:
    """One store-polling worker (see module doc for the loop)."""

    def __init__(
        self,
        store: JobStore,
        runner: CampaignRunner,
        *,
        worker_id: Optional[str] = None,
        batch: int = DEFAULT_BATCH,
        ttl: int = DEFAULT_TTL,
        poll_sleep_s: float = POLL_SLEEP_S,
        stall_after: Optional[int] = None,
        stall_marker: Optional[str] = None,
        emit=None,
    ) -> None:
        if runner.failure_mode != "record":
            raise ValueError(
                "service workers need failure_mode='record': per-cell "
                "failures are store rows, not exceptions"
            )
        self.store = store
        self.runner = runner
        # Worker identity only needs to be unique among live workers on
        # this store; the pid is that, with no ambient entropy.
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.batch = batch
        self.ttl = ttl
        self.poll_sleep_s = poll_sleep_s
        self.stall_after = stall_after
        self.stall_marker = stall_marker
        self._emit = emit
        self._completed = 0
        self.stats = WorkerStats(worker_id=self.worker_id)

    def _say(self, message: str) -> None:
        if self._emit is not None:
            self._emit(f"[{self.worker_id}] {message}")

    # ---------------------------------------------------------------- #
    # the poll loop                                                    #
    # ---------------------------------------------------------------- #

    def run(
        self,
        *,
        keep_alive: bool = False,
        max_polls: Optional[int] = None,
    ) -> WorkerStats:
        """Poll until the store drains (default), halts, or the bound.

        ``keep_alive=True`` turns the worker into a daemon that keeps
        polling after a drain (new submissions wake it on a later poll);
        ``max_polls`` bounds the loop either way — the harness safety
        net against a store that can never drain.
        """
        stats = self.stats
        while True:
            if max_polls is not None and stats.polls >= max_polls:
                self._say(f"poll bound {max_polls} reached; exiting")
                break
            stats.polls += 1
            self.store.tick()
            reclaimed = self.store.reclaim_expired()
            if reclaimed:
                stats.reclaimed += len(reclaimed)
                emit_event(
                    "service.reclaim", worker=self.worker_id,
                    cells=len(reclaimed),
                )
                self._say(f"reclaimed {len(reclaimed)} expired cell(s)")
            decision = self.runner.health.decide(
                context="worker-admission", worker=self.worker_id
            )
            if decision.action == HALT:
                stats.halted = True
                self._say(f"health gate halt: {decision.reason}; exiting")
                break
            lease = self.store.lease(self.worker_id, self.batch, self.ttl)
            if lease is None:
                if self.store.drained():
                    if not keep_alive:
                        self._say("store drained; exiting")
                        break
                time.sleep(self.poll_sleep_s)
                continue
            stats.leases += 1
            stats.cells += len(lease)
            emit_event(
                "service.lease", worker=self.worker_id,
                cells=len(lease), token=lease.token,
            )
            try:
                self._process_lease(lease)
            except CampaignHaltedError as exc:
                stats.released += self.store.release(lease.token)
                stats.halted = True
                self._say(f"halted mid-lease: {exc}; cells released")
                break
            finally:
                # Anything the batch did not finish goes straight back
                # to the queue instead of waiting out the lease TTL.
                stats.released += self.store.release(lease.token)
        return stats

    # ---------------------------------------------------------------- #
    # one lease                                                        #
    # ---------------------------------------------------------------- #

    def _process_lease(self, lease: Lease) -> None:
        """Execute one leased batch; every cell ends token-guarded."""
        token = lease.token
        self.store.mark_running(token)
        cells = list(lease.cells)
        jobs = [
            job_from_wire(cell.job, where=f"store cell {cell.key}")
            for cell in cells
        ]
        keys = [cell.key for cell in cells]

        # Cells another client already computed resolve as ``cached``
        # without touching the pool — the shared-cache payoff the store
        # surfaces as its own state.
        hits: Dict[str, dict] = {}
        if self.runner.cache is not None:
            hits = self.runner.cache.get_many(keys)
        miss_indexes: List[int] = []
        for i, cell in enumerate(cells):
            record = hits.get(keys[i])
            if record is None:
                miss_indexes.append(i)
                continue
            self._finish(cell.campaign_id, cell.key, token, CACHED, record)

        if not miss_indexes:
            return
        miss_jobs = [jobs[i] for i in miss_indexes]
        for j, outcome in self.runner.run_sims_iter(
            miss_jobs, failure_mode="record"
        ):
            cell = cells[miss_indexes[j]]
            # Live leases never expire: the heartbeat pushes expiry out
            # by a full TTL every time a result lands.
            self.store.heartbeat(token, self.ttl)
            record = outcome.to_dict()
            self._finish(
                cell.campaign_id, cell.key, token,
                self._terminal_state(record), record,
            )

    @staticmethod
    def _terminal_state(record: Dict[str, Any]) -> str:
        """Map an execution outcome to its store state.

        Successes are ``done``.  Failures reuse the
        :class:`CellFailure` classification unchanged: a retryable
        (transient-category) failure that still failed means the retry
        loop gave up on the cell — ``quarantined``, like any failure
        that burned more than one attempt.  A first-attempt permanent/
        infrastructure verdict is a plain ``failed``.
        """
        if not is_failure_record(record):
            return DONE
        failure = CellFailure.from_dict(record)
        if failure.category == TRANSIENT or failure.attempts > 1:
            return QUARANTINED
        return FAILED

    def _finish(
        self,
        campaign_id: str,
        key: str,
        token: str,
        state: str,
        record: Dict[str, Any],
    ) -> None:
        """Token-guarded completion + stall hook + bookkeeping."""
        accepted = self.store.complete(
            campaign_id, key, token, state, result=record
        )
        stats = self.stats
        if not accepted:
            # The lease was reclaimed (worker presumed dead) while this
            # cell ran; whoever holds the live lease owns the verdict.
            stats.stale += 1
            self._say(f"stale token for {key}; verdict discarded")
            return
        if state == DONE:
            stats.done += 1
        elif state == CACHED:
            stats.cached += 1
        elif state == FAILED:
            stats.failed += 1
        else:
            stats.quarantined += 1
        self._completed += 1
        self._maybe_stall()

    def _maybe_stall(self) -> None:
        """The smoke test's deterministic crash window (see module doc)."""
        if self.stall_after is None or self._completed < self.stall_after:
            return
        if self.stall_marker:
            with open(self.stall_marker, "w", encoding="utf-8") as fh:
                fh.write(f"{self.worker_id} stalled at {self._completed}\n")
        self._say(
            f"stalling after {self._completed} cell(s); "
            "no further heartbeats"
        )
        while True:  # pragma: no cover - exited only by SIGKILL
            time.sleep(POLL_SLEEP_S)
