"""The persistent campaign job store: sqlite now, postgres-shaped always.

One database file is the control plane's source of truth: campaigns,
their cells, every cell's state, and the lease that says which worker is
currently responsible for it.  Results themselves live in the shared
content-addressed :class:`~repro.runner.cache.ResultCache`; the store
keeps a copy of each cell's *record* JSON for the status API, but
crash-resume correctness never depends on it — a cell re-executed after
a lost lease hits the cache and comes back byte-identical.

**State machine** (enforced; illegal transitions raise or reject)::

    queued ──lease──▶ leased ──mark_running──▶ running ──complete──▶ done
       ▲                │                         │                  cached
       │                │                         │                  failed
       └──── reclaim ───┴───────── reclaim ───────┘                  quarantined

``done``/``cached``/``failed``/``quarantined`` are terminal.  ``cached``
means the shared result cache already held the record (no simulation);
``failed`` is a first-attempt permanent failure; ``quarantined`` means
the worker's bounded retry loop gave up on the cell.

**Leases** are the crash-safety primitive.  A worker leases a batch and
owns those cells until it completes them, releases them, or its lease
expires.  Expiry is measured on a **logical tick clock** stored in the
database — every worker poll advances it — never on the wall clock, so
the same operation sequence always reclaims at the same point (the
determinism lint bans ambient clock reads and this module needs no
exemption).  A SIGKILLed worker simply stops heartbeating; the next
poll by any other worker advances the clock past the lease's expiry and
:meth:`JobStore.reclaim_expired` requeues its cells — exactly once,
because the requeue is a guarded state transition, not a timer.

Completion requires the **current** lease token: a zombie worker whose
lease was reclaimed (and possibly re-leased) gets ``False`` back and
its result is discarded — the cell's truth is whatever the holder of
the live lease wrote.  Attempt counts survive reclaim, so a cell that
keeps killing its workers steps toward quarantine instead of cycling
forever.

**Portability**: the schema uses TEXT/INTEGER columns, standard SQL and
single-statement guarded updates (optimistic state checks in ``WHERE``
clauses) — the shape a postgres port keeps; only the connection setup
(WAL pragmas, ``?`` placeholders) is sqlite-specific.  Concurrent
access runs in WAL mode: readers never block the writer, and writing
transactions are ``BEGIN IMMEDIATE`` so two workers leasing at once
serialize cleanly instead of deadlocking.  One :class:`JobStore` object
is safe to share across threads (handler threads of the API server): a
process-level lock serializes statements on the shared connection.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runner.hashing import cache_key, digest
from repro.runner.jobs import SimJob
from repro.service.lease import Lease, LeasedCell, lease_token
from repro.service.wire import DUMP_SCHEMA, job_to_wire

#: Cell states, in lifecycle order.
QUEUED = "queued"
LEASED = "leased"
RUNNING = "running"
DONE = "done"
CACHED = "cached"
FAILED = "failed"
QUARANTINED = "quarantined"

CELL_STATES = (QUEUED, LEASED, RUNNING, DONE, CACHED, FAILED, QUARANTINED)

#: States a completed cell can land in.
TERMINAL_STATES = (DONE, CACHED, FAILED, QUARANTINED)

#: The legal transition relation.  ``leased/running -> queued`` is the
#: lease-reclaim edge; everything else is the forward lifecycle.
ALLOWED_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    QUEUED: (LEASED,),
    LEASED: (RUNNING, QUEUED),
    RUNNING: (DONE, CACHED, FAILED, QUARANTINED, QUEUED),
    DONE: (),
    CACHED: (),
    FAILED: (),
    QUARANTINED: (),
}


def can_transition(frm: str, to: str) -> bool:
    """Whether ``frm -> to`` is a legal cell-state transition."""
    return to in ALLOWED_TRANSITIONS.get(frm, ())


class StoreError(RuntimeError):
    """A job-store operation that cannot be performed."""


class IllegalTransition(StoreError):
    """A requested cell-state transition outside the legal relation."""


#: The schema, one statement per entry.  TEXT/INTEGER only; standard SQL.
_SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS campaigns (
        id             TEXT PRIMARY KEY,
        name           TEXT NOT NULL,
        submit_seq     INTEGER NOT NULL,
        submitted_tick INTEGER NOT NULL,
        cells          INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS cells (
        campaign_id   TEXT NOT NULL,
        cell_key      TEXT NOT NULL,
        global_seq    INTEGER NOT NULL,
        state         TEXT NOT NULL,
        job           TEXT NOT NULL,
        label         TEXT NOT NULL DEFAULT '',
        attempts      INTEGER NOT NULL DEFAULT 0,
        reclaims      INTEGER NOT NULL DEFAULT 0,
        lease_token   TEXT,
        lease_expires INTEGER,
        worker_id     TEXT,
        result        TEXT,
        PRIMARY KEY (campaign_id, cell_key)
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_cells_state ON cells(state, global_seq)",
    "CREATE INDEX IF NOT EXISTS idx_cells_token ON cells(lease_token)",
)

#: Logical counters living in ``meta``.
_TICK = "tick"
_SUBMIT_SEQ = "submit_seq"
_LEASE_SEQ = "lease_seq"


class JobStore:
    """Campaign/cell rows with lease-based ownership (see module doc)."""

    def __init__(self, path: str, *, busy_timeout_s: float = 30.0) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        # One connection shared across this process's threads, serialized
        # by the lock; other processes get their own JobStore and meet
        # this one through WAL.
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            path, timeout=busy_timeout_s, check_same_thread=False,
            isolation_level=None,  # explicit BEGIN IMMEDIATE transactions
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}"
            )
            with self._txn():
                for statement in _SCHEMA_STATEMENTS:
                    self._conn.execute(statement)
                for key in (_TICK, _SUBMIT_SEQ, _LEASE_SEQ):
                    self._conn.execute(
                        "INSERT OR IGNORE INTO meta(key, value) VALUES (?, 0)",
                        (key,),
                    )

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextlib.contextmanager
    def _txn(self) -> Iterator[None]:
        """A write transaction: BEGIN IMMEDIATE, commit/rollback."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._conn.rollback()
            raise
        self._conn.commit()

    def _counter(self, key: str, bump: int = 0) -> int:
        """Read (and optionally advance) a logical counter.  Lock held."""
        if bump:
            self._conn.execute(
                "UPDATE meta SET value = value + ? WHERE key = ?", (bump, key)
            )
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return int(row["value"])

    # ------------------------------------------------------------------ #
    # the logical clock                                                  #
    # ------------------------------------------------------------------ #

    def now(self) -> int:
        """The current logical tick."""
        with self._lock:
            return self._counter(_TICK)

    def tick(self, n: int = 1) -> int:
        """Advance the logical clock (every worker poll does); new tick."""
        if n < 1:
            raise ValueError(f"tick step must be >= 1, got {n}")
        with self._lock, self._txn():
            return self._counter(_TICK, bump=n)

    # ------------------------------------------------------------------ #
    # submission                                                         #
    # ------------------------------------------------------------------ #

    def submit(self, name: str, jobs: Sequence[SimJob]) -> str:
        """Insert a campaign with one queued cell per distinct job.

        The cell id is the job's content hash — the *same* key the
        result cache uses — so duplicate cells within a submission
        collapse to one row, and a cell completed by any previous
        campaign resolves as ``cached`` the moment a worker leases it.
        Returns the campaign id (deterministic: submission counter plus
        a content digest, no ambient entropy).
        """
        if not jobs:
            raise StoreError("a campaign needs at least one cell")
        keyed: Dict[str, SimJob] = {}
        for job in jobs:
            keyed.setdefault(cache_key(job), job)
        with self._lock, self._txn():
            seq = self._counter(_SUBMIT_SEQ, bump=1)
            now = self._counter(_TICK)
            campaign_id = (
                f"c{seq:06d}-{digest([name, sorted(keyed)])[:8]}"
            )
            self._conn.execute(
                "INSERT INTO campaigns(id, name, submit_seq, submitted_tick,"
                " cells) VALUES (?, ?, ?, ?, ?)",
                (campaign_id, name, seq, now, len(keyed)),
            )
            for key, job in keyed.items():
                self._conn.execute(
                    "INSERT INTO cells(campaign_id, cell_key, global_seq,"
                    " state, job, label) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        campaign_id, key,
                        self._next_global_seq(),
                        QUEUED,
                        json.dumps(job_to_wire(job), sort_keys=True),
                        job.label,
                    ),
                )
        return campaign_id

    def _next_global_seq(self) -> int:
        """Monotone submission order across campaigns.  Lock held."""
        row = self._conn.execute(
            "SELECT COALESCE(MAX(global_seq), 0) AS m FROM cells"
        ).fetchone()
        return int(row["m"]) + 1

    # ------------------------------------------------------------------ #
    # leasing                                                            #
    # ------------------------------------------------------------------ #

    def lease(
        self, worker_id: str, limit: int, ttl: int
    ) -> Optional[Lease]:
        """Atomically claim up to ``limit`` queued cells for ``worker_id``.

        The claim is one transaction: two workers leasing concurrently
        serialize on the write lock and the ``WHERE state = 'queued'``
        guard, so a cell can never be assigned to both.  Returns None
        when nothing is queued.  ``ttl`` is in logical ticks.
        """
        if limit < 1:
            raise ValueError(f"lease limit must be >= 1, got {limit}")
        if ttl < 1:
            raise ValueError(f"lease ttl must be >= 1 tick, got {ttl}")
        with self._lock, self._txn():
            rows = self._conn.execute(
                "SELECT campaign_id, cell_key, job, label, attempts"
                " FROM cells WHERE state = ? ORDER BY global_seq LIMIT ?",
                (QUEUED, limit),
            ).fetchall()
            if not rows:
                return None
            now = self._counter(_TICK)
            token = lease_token(worker_id, self._counter(_LEASE_SEQ, bump=1))
            expires = now + ttl
            cells = []
            for row in rows:
                claimed = self._conn.execute(
                    "UPDATE cells SET state = ?, lease_token = ?,"
                    " lease_expires = ?, worker_id = ?,"
                    " attempts = attempts + 1"
                    " WHERE campaign_id = ? AND cell_key = ? AND state = ?",
                    (
                        LEASED, token, expires, worker_id,
                        row["campaign_id"], row["cell_key"], QUEUED,
                    ),
                ).rowcount
                if claimed != 1:  # pragma: no cover - guarded by the txn
                    raise StoreError(
                        f"lease race on {row['cell_key']}; aborting claim"
                    )
                cells.append(LeasedCell(
                    campaign_id=row["campaign_id"],
                    key=row["cell_key"],
                    job=json.loads(row["job"]),
                    label=row["label"],
                    attempts=int(row["attempts"]) + 1,
                ))
            return Lease(
                token=token, expires_tick=expires, cells=tuple(cells)
            )

    def mark_running(self, token: str) -> int:
        """``leased -> running`` for every cell of the lease; count moved."""
        with self._lock, self._txn():
            return self._conn.execute(
                "UPDATE cells SET state = ? WHERE lease_token = ?"
                " AND state = ?",
                (RUNNING, token, LEASED),
            ).rowcount

    def heartbeat(self, token: str, ttl: int) -> int:
        """Extend a live lease to ``now + ttl``; cells still held.

        Workers heartbeat as results stream in, so a long batch never
        outlives its lease while the worker is alive; a dead worker
        stops, and the clock — advanced by everyone else's polls —
        walks past its expiry.
        """
        with self._lock, self._txn():
            now = self._counter(_TICK)
            return self._conn.execute(
                "UPDATE cells SET lease_expires = ? WHERE lease_token = ?"
                " AND state IN (?, ?)",
                (now + ttl, token, LEASED, RUNNING),
            ).rowcount

    def release(self, token: str) -> int:
        """Give a lease's unfinished cells back to the queue (graceful)."""
        with self._lock, self._txn():
            return self._conn.execute(
                "UPDATE cells SET state = ?, lease_token = NULL,"
                " lease_expires = NULL, worker_id = NULL"
                " WHERE lease_token = ? AND state IN (?, ?)",
                (QUEUED, token, LEASED, RUNNING),
            ).rowcount

    def reclaim_expired(self) -> List[Tuple[str, str]]:
        """Requeue every cell whose lease expired; the reclaimed keys.

        Exactly-once by construction: the requeue is a guarded state
        transition (``state IN (leased, running)``), so a second
        reclaim — or a concurrent one in another process — finds the
        rows already queued and does nothing.  Attempt counts survive,
        stepping repeat offenders toward quarantine.
        """
        with self._lock, self._txn():
            now = self._counter(_TICK)
            rows = self._conn.execute(
                "SELECT campaign_id, cell_key FROM cells"
                " WHERE state IN (?, ?) AND lease_expires <= ?"
                " ORDER BY global_seq",
                (LEASED, RUNNING, now),
            ).fetchall()
            reclaimed: List[Tuple[str, str]] = []
            for row in rows:
                moved = self._conn.execute(
                    "UPDATE cells SET state = ?, lease_token = NULL,"
                    " lease_expires = NULL, worker_id = NULL,"
                    " reclaims = reclaims + 1"
                    " WHERE campaign_id = ? AND cell_key = ?"
                    " AND state IN (?, ?) AND lease_expires <= ?",
                    (
                        QUEUED, row["campaign_id"], row["cell_key"],
                        LEASED, RUNNING, now,
                    ),
                ).rowcount
                if moved:
                    reclaimed.append((row["campaign_id"], row["cell_key"]))
            return reclaimed

    # ------------------------------------------------------------------ #
    # completion                                                         #
    # ------------------------------------------------------------------ #

    def complete(
        self,
        campaign_id: str,
        key: str,
        token: str,
        state: str,
        result: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Move a running cell to a terminal state, token-guarded.

        Returns False when ``token`` is not the cell's *current* lease —
        the zombie-writer case: the lease was reclaimed (and possibly
        re-leased) while this worker thought it still owned the cell.
        Raises :class:`IllegalTransition` when the target state is not
        terminal or the cell (under the live token) is not ``running``.
        """
        if state not in TERMINAL_STATES:
            raise IllegalTransition(
                f"completion state must be one of {TERMINAL_STATES}, "
                f"got {state!r}"
            )
        with self._lock, self._txn():
            row = self._conn.execute(
                "SELECT state, lease_token FROM cells"
                " WHERE campaign_id = ? AND cell_key = ?",
                (campaign_id, key),
            ).fetchone()
            if row is None:
                raise StoreError(f"unknown cell {campaign_id}/{key}")
            if row["lease_token"] != token or token is None:
                return False
            if not can_transition(row["state"], state):
                raise IllegalTransition(
                    f"cell {key} is {row['state']!r}; "
                    f"{row['state']!r} -> {state!r} is not legal"
                )
            self._conn.execute(
                "UPDATE cells SET state = ?, result = ?, lease_token = NULL,"
                " lease_expires = NULL"
                " WHERE campaign_id = ? AND cell_key = ?"
                " AND lease_token = ?",
                (
                    state,
                    None if result is None else json.dumps(
                        result, sort_keys=True
                    ),
                    campaign_id, key, token,
                ),
            )
            return True

    # ------------------------------------------------------------------ #
    # queries                                                            #
    # ------------------------------------------------------------------ #

    def counts(self, campaign_id: Optional[str] = None) -> Dict[str, int]:
        """Cell count per state (every state present, zeros included)."""
        with self._lock:
            if campaign_id is None:
                rows = self._conn.execute(
                    "SELECT state, COUNT(*) AS n FROM cells GROUP BY state"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT state, COUNT(*) AS n FROM cells"
                    " WHERE campaign_id = ? GROUP BY state",
                    (campaign_id,),
                ).fetchall()
        out = {state: 0 for state in CELL_STATES}
        for row in rows:
            out[row["state"]] = int(row["n"])
        return out

    def campaigns(self) -> List[Dict[str, Any]]:
        """Every campaign, submission order, with its state counts."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, name, submit_seq, submitted_tick, cells"
                " FROM campaigns ORDER BY submit_seq"
            ).fetchall()
        return [self.campaign(row["id"]) for row in rows]

    def campaign(self, campaign_id: str) -> Dict[str, Any]:
        """One campaign's status: counts, doneness, reclaim totals."""
        with self._lock:
            row = self._conn.execute(
                "SELECT id, name, submit_seq, submitted_tick, cells"
                " FROM campaigns WHERE id = ?",
                (campaign_id,),
            ).fetchone()
            if row is None:
                raise StoreError(f"unknown campaign {campaign_id!r}")
            agg = self._conn.execute(
                "SELECT COALESCE(SUM(reclaims), 0) AS reclaims,"
                " COALESCE(SUM(attempts), 0) AS attempts"
                " FROM cells WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
        counts = self.counts(campaign_id)
        terminal = sum(counts[state] for state in TERMINAL_STATES)
        return {
            "id": row["id"],
            "name": row["name"],
            "submit_seq": int(row["submit_seq"]),
            "submitted_tick": int(row["submitted_tick"]),
            "cells": int(row["cells"]),
            "counts": counts,
            "attempts": int(agg["attempts"]),
            "reclaims": int(agg["reclaims"]),
            "done": terminal == int(row["cells"]),
        }

    def cells(
        self,
        campaign_id: str,
        state: Optional[str] = None,
        with_result: bool = False,
    ) -> List[Dict[str, Any]]:
        """Cell rows of a campaign (submission order), without job docs."""
        if state is not None and state not in CELL_STATES:
            raise StoreError(
                f"unknown state {state!r}; states are {CELL_STATES}"
            )
        query = (
            "SELECT campaign_id, cell_key, global_seq, state, label,"
            " attempts, reclaims, lease_token, lease_expires, worker_id,"
            " result FROM cells WHERE campaign_id = ?"
        )
        params: Tuple[Any, ...] = (campaign_id,)
        if state is not None:
            query += " AND state = ?"
            params += (state,)
        query += " ORDER BY global_seq"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [self._cell_dict(row, with_result=with_result) for row in rows]

    def cell(self, campaign_id: str, key: str) -> Optional[Dict[str, Any]]:
        """One cell's full status (result included), or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT campaign_id, cell_key, global_seq, state, label,"
                " attempts, reclaims, lease_token, lease_expires, worker_id,"
                " result FROM cells WHERE campaign_id = ? AND cell_key = ?",
                (campaign_id, key),
            ).fetchone()
        if row is None:
            return None
        return self._cell_dict(row, with_result=True)

    @staticmethod
    def _cell_dict(row, with_result: bool) -> Dict[str, Any]:
        out = {
            "campaign": row["campaign_id"],
            "key": row["cell_key"],
            "seq": int(row["global_seq"]),
            "state": row["state"],
            "label": row["label"],
            "attempts": int(row["attempts"]),
            "reclaims": int(row["reclaims"]),
            "lease_token": row["lease_token"],
            "lease_expires": row["lease_expires"],
            "worker": row["worker_id"],
        }
        if with_result:
            out["result"] = (
                json.loads(row["result"]) if row["result"] else None
            )
        return out

    def job_for(self, campaign_id: str, key: str) -> Dict[str, Any]:
        """The stored wire document of one cell (for re-execution)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT job FROM cells"
                " WHERE campaign_id = ? AND cell_key = ?",
                (campaign_id, key),
            ).fetchone()
        if row is None:
            raise StoreError(f"unknown cell {campaign_id}/{key}")
        return json.loads(row["job"])

    def drained(self) -> bool:
        """Whether every cell in the store is terminal."""
        counts = self.counts()
        return all(
            counts[state] == 0 for state in (QUEUED, LEASED, RUNNING)
        )

    def dump(self) -> Dict[str, Any]:
        """JSON-native dump of the control state (the CI artifact).

        Cell rows come without their job documents (which dominate the
        bytes and are reproducible from the submission); results ride
        along so the artifact alone explains every verdict.
        """
        campaigns = self.campaigns()
        return {
            "schema": DUMP_SCHEMA,
            "tick": self.now(),
            "counts": self.counts(),
            "campaigns": campaigns,
            "cells": [
                cell
                for campaign in campaigns
                for cell in self.cells(campaign["id"], with_result=True)
            ],
        }
