"""The lease protocol: who owns a cell, for how long, in what clock.

A lease is the service's unit of crash-safe work assignment:

* **Token** — ``<worker_id>.<n>`` where ``n`` is the store-wide monotone
  lease counter.  Deterministic (no uuid/entropy), unique for the store's
  lifetime, and strictly ordered: after a reclaim, the *re*-lease carries
  a later token, which is how the store recognizes a zombie's write with
  the old token and discards it.
* **Expiry** — an absolute tick on the store's **logical clock**, not a
  wall-clock deadline.  Every worker poll advances the clock by one, so
  "a lease lives ``ttl`` ticks" means "``ttl`` store polls by anyone" —
  the same schedule of polls always expires leases at the same point,
  regardless of machine speed (and the determinism lint's wall-clock ban
  holds service-wide with no exemptions).
* **Heartbeat** — a live worker pushes its expiry out by a full TTL every
  time a result lands, so batches of any length survive; only a worker
  that *stops* (crash, SIGKILL, wedge) lets the clock walk past it.
* **Reclaim** — a guarded ``leased/running -> queued`` transition on
  expired cells: exactly-once by construction, attempts preserved so a
  worker-killing cell steps toward quarantine instead of cycling.

:class:`Lease` and :class:`LeasedCell` are the value objects the store
hands a worker; the transitions themselves live in
:mod:`repro.service.store` next to the rest of the state machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class LeasedCell:
    """One cell handed to a worker inside a lease."""

    campaign_id: str
    key: str
    job: Dict[str, Any]
    label: str
    attempts: int


@dataclass(frozen=True)
class Lease:
    """A batch of cells a worker owns until expiry/completion/release."""

    token: str
    expires_tick: int
    cells: Tuple[LeasedCell, ...]

    def __len__(self) -> int:
        return len(self.cells)


def lease_token(worker_id: str, seq: int) -> str:
    """The deterministic token for the ``seq``-th lease ever granted."""
    return f"{worker_id}.{seq}"
