"""The campaign service's JSON API — stdlib ``http.server``, no pickle.

One :class:`ThreadingHTTPServer` fronts a shared :class:`JobStore`:
every request runs in its own handler thread, every store call is
serialized by the store's internal lock, and every body on the wire is
a schema-tagged JSON document validated at the boundary
(:mod:`repro.service.wire`).  Workers are *not* behind this server —
they are separate processes sharing the store file through WAL — so the
API stays responsive while campaigns execute.

Endpoints (all responses wear the ``repro.service.response/v1``
envelope)::

    GET  /api/ping                         liveness + logical tick
    POST /api/campaigns                    submit (submit/v1 body)
    GET  /api/campaigns                    all campaigns + state counts
    GET  /api/campaigns/<id>               one campaign's status
    GET  /api/campaigns/<id>/cells         its cells (?state= filters)
    GET  /api/campaigns/<id>/cells/<key>   one cell, result included
    GET  /api/metrics                      observe events + store counts
    GET  /api/store                        full store dump (CI artifact)
    POST /api/drain                        refuse new submissions
    POST /api/stop                         drain + shut the server down

Error contract: malformed bodies are 400 with the validator's message,
unknown resources 404, a drained server answers submissions with 503 —
clients never see a traceback page.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse, parse_qs

from repro.observe.events import emit_event, events_snapshot
from repro.service.store import CELL_STATES, JobStore, StoreError
from repro.service.wire import WireError, parse_submission, response

#: Request body size cap — a submission of thousands of cells fits in a
#: few MB; anything larger is a client bug, not a campaign.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server plus the shared service state handlers use."""

    #: Handler threads must not outlive a stopped server.
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: JobStore,
        *,
        emit=None,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.store = store
        self.draining = threading.Event()
        self.emit = emit


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the shared store (one instance per request)."""

    server: ServiceServer  # narrowed for readability; set by the server
    protocol_version = "HTTP/1.1"

    # -------------------------------------------------------------- #
    # plumbing                                                       #
    # -------------------------------------------------------------- #

    def log_message(self, fmt: str, *args) -> None:
        emit = self.server.emit
        if emit is not None:
            emit(f"[serve] {self.address_string()} {fmt % args}")

    def _reply(self, status: int, body: Dict[str, Any]) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _fail(self, status: int, message: str) -> None:
        self._reply(status, response(False, error=message))

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length <= 0:
            raise WireError("request body is required")
        if length > MAX_BODY_BYTES:
            raise WireError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"request body is not valid JSON: {exc}")

    # -------------------------------------------------------------- #
    # routing                                                        #
    # -------------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        try:
            self._route_get()
        except StoreError as exc:
            self._fail(404, str(exc))
        except Exception as exc:  # never a traceback page
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        try:
            self._route_post()
        except WireError as exc:
            self._fail(400, str(exc))
        except StoreError as exc:
            self._fail(404, str(exc))
        except Exception as exc:
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def _route_get(self) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        store = self.server.store
        if parts == ["api", "ping"]:
            self._reply(200, response(
                True, tick=store.now(), draining=self.server.draining.is_set(),
            ))
        elif parts == ["api", "campaigns"]:
            self._reply(200, response(True, campaigns=store.campaigns()))
        elif len(parts) == 3 and parts[:2] == ["api", "campaigns"]:
            self._reply(200, response(True, campaign=store.campaign(parts[2])))
        elif (
            len(parts) == 4
            and parts[:2] == ["api", "campaigns"]
            and parts[3] == "cells"
        ):
            state = self._state_filter(url.query)
            store.campaign(parts[2])  # 404 for unknown ids, not []
            self._reply(200, response(
                True, cells=store.cells(parts[2], state=state),
            ))
        elif (
            len(parts) == 5
            and parts[:2] == ["api", "campaigns"]
            and parts[3] == "cells"
        ):
            cell = store.cell(parts[2], parts[4])
            if cell is None:
                self._fail(404, f"unknown cell {parts[2]}/{parts[4]}")
            else:
                self._reply(200, response(True, cell=cell))
        elif parts == ["api", "metrics"]:
            self._reply(200, response(
                True,
                tick=store.now(),
                counts=store.counts(),
                events=events_snapshot(),
            ))
        elif parts == ["api", "store"]:
            self._reply(200, response(True, dump=store.dump()))
        else:
            self._fail(404, f"no such resource: {url.path}")

    def _route_post(self) -> None:
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        store = self.server.store
        if parts == ["api", "campaigns"]:
            if self.server.draining.is_set():
                self._fail(503, "server is draining; submissions refused")
                return
            name, jobs = parse_submission(self._read_json())
            campaign_id = store.submit(name, jobs)
            emit_event(
                "service.submit", campaign=campaign_id, cells=len(jobs),
            )
            self._reply(200, response(
                True, campaign=store.campaign(campaign_id),
            ))
        elif parts == ["api", "drain"]:
            self.server.draining.set()
            self._reply(200, response(
                True, draining=True, counts=store.counts(),
            ))
        elif parts == ["api", "stop"]:
            self.server.draining.set()
            self._reply(200, response(True, stopping=True))
            # shutdown() blocks until serve_forever returns; from a
            # handler thread that is safe — but only after the reply
            # above has hit the socket.
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
        else:
            self._fail(404, f"no such resource: {self.path}")

    @staticmethod
    def _state_filter(query: str) -> Optional[str]:
        params = parse_qs(query)
        values = params.get("state")
        if not values:
            return None
        state = values[0]
        if state not in CELL_STATES:
            raise StoreError(
                f"unknown state {state!r}; states are {CELL_STATES}"
            )
        return state


def build_server(
    store: JobStore,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    emit=None,
) -> ServiceServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port."""
    return ServiceServer((host, port), store, emit=emit)


def serve(
    store: JobStore,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    emit=None,
) -> None:
    """Serve until ``POST /api/stop`` (or KeyboardInterrupt)."""
    server = build_server(store, host, port, emit=emit)
    bound_host, bound_port = server.server_address[:2]
    if emit is not None:
        emit(f"[serve] listening on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
