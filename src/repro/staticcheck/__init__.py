"""Plan-time static analysis for the simulator.

Three heads, one findings pipeline:

* the **model checker** (:func:`check_run`, :func:`precheck_job`,
  :func:`audit_schedule`) proves a (workflow, cluster, config) cell
  infeasible *before* the simulator starts — stranded tasks, storage
  overflows, insane fault/power parameters, unsound schedules;
* the **determinism lint** (:mod:`repro.staticcheck.lint`) walks the
  simulator's own source for wall-clock reads, global-stream randomness,
  ambient entropy and order-dependent iteration — the bugs the runtime
  sanitizer can only catch after they have already corrupted a campaign;
* the **whole-program flow pass** (``repro-flow lint --deep``) builds a
  module-level call graph (:mod:`repro.staticcheck.callgraph`) and
  proves interprocedural properties over it: determinism taint from the
  campaign-entry roots (:mod:`repro.staticcheck.flow`), pickle-boundary
  safety of worker payloads (:mod:`repro.staticcheck.pickle_safety`) and
  concurrency/lifecycle hazards
  (:mod:`repro.staticcheck.concurrency`).

All emit :class:`Finding` objects; :class:`CheckReport` aggregates them
and decides pass/fail (only ``ERROR`` severity blocks).  The runtime
sanitizer's violations convert to the same type, so plan-time and
run-time reports render uniformly, and :func:`findings_to_json` /
:func:`findings_to_sarif` export any findings list for CI annotation.
"""

from repro.staticcheck.callgraph import CallGraph, build_callgraph
from repro.staticcheck.concurrency import check_concurrency
from repro.staticcheck.findings import (
    CheckReport,
    Finding,
    Severity,
    StaticCheckError,
    error,
    findings_to_json,
    findings_to_sarif,
    summary_table,
    warning,
)
from repro.staticcheck.flow import check_flow
from repro.staticcheck.pickle_safety import check_pickle_safety
from repro.staticcheck.model_checks import (
    check_data,
    check_fault_model,
    check_placement,
    check_platform,
    check_recovery,
    check_run,
    precheck_job,
)
from repro.staticcheck.schedule_audit import audit_schedule
from repro.staticcheck.workflow_checks import check_workflow

__all__ = [
    "CallGraph",
    "CheckReport",
    "Finding",
    "Severity",
    "StaticCheckError",
    "audit_schedule",
    "build_callgraph",
    "check_concurrency",
    "check_data",
    "check_fault_model",
    "check_flow",
    "check_pickle_safety",
    "check_placement",
    "check_platform",
    "check_recovery",
    "check_run",
    "check_workflow",
    "error",
    "findings_to_json",
    "findings_to_sarif",
    "precheck_job",
    "summary_table",
    "warning",
]
