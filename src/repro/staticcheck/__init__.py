"""Plan-time static analysis for the simulator.

Two heads, one findings pipeline:

* the **model checker** (:func:`check_run`, :func:`precheck_job`,
  :func:`audit_schedule`) proves a (workflow, cluster, config) cell
  infeasible *before* the simulator starts — stranded tasks, storage
  overflows, insane fault/power parameters, unsound schedules;
* the **determinism lint** (:mod:`repro.staticcheck.lint`) walks the
  simulator's own source for wall-clock reads, global-stream randomness
  and order-dependent iteration — the bugs the runtime sanitizer can only
  catch after they have already corrupted a campaign.

Both emit :class:`Finding` objects; :class:`CheckReport` aggregates them
and decides pass/fail (only ``ERROR`` severity blocks).  The runtime
sanitizer's violations convert to the same type, so plan-time and
run-time reports render uniformly.
"""

from repro.staticcheck.findings import (
    CheckReport,
    Finding,
    Severity,
    StaticCheckError,
    error,
    warning,
)
from repro.staticcheck.model_checks import (
    check_data,
    check_fault_model,
    check_placement,
    check_platform,
    check_recovery,
    check_run,
    precheck_job,
)
from repro.staticcheck.schedule_audit import audit_schedule
from repro.staticcheck.workflow_checks import check_workflow

__all__ = [
    "CheckReport",
    "Finding",
    "Severity",
    "StaticCheckError",
    "audit_schedule",
    "check_data",
    "check_fault_model",
    "check_placement",
    "check_platform",
    "check_recovery",
    "check_run",
    "check_workflow",
    "error",
    "precheck_job",
    "warning",
]
