"""The shared finding vocabulary of the static-analysis subsystem.

Every static check — workflow structure, cross-layer placement, schedule
audit, determinism lint — reports problems as :class:`Finding` objects:
a check id, a severity, the layer the problem lives in, a location string
("workflow:mProject_3", "src/repro/foo.py:42"), a human message and a fix
hint.  The runtime :class:`~repro.sanitizer.Sanitizer` converts its
violations to the same type (``Violation.as_finding()``), so plan-time and
run-time reports render uniformly.

:class:`CheckReport` aggregates findings from several check groups and
decides pass/fail: only ``ERROR``-severity findings fail a precheck;
warnings are advisory and printed but never block a run.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe configurations that cannot run correctly
    (the simulator would strand tasks, overflow a store, or silently
    produce garbage); ``WARNING`` findings describe configurations that
    run but are statistically doomed or suspicious; ``INFO`` is purely
    informational.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One statically-detected problem.

    Attributes:
        check: Stable check identifier (``"stranded-task"``), the handle
            used by allowlists and tests.
        severity: How bad it is (see :class:`Severity`).
        layer: Which layer the problem lives in (``workflow``, ``data``,
            ``platform``, ``plan``, ``schedule``, ``lint``, ``runtime``).
        location: Where — a task/file/device name, ``path:line`` for lint
            findings, or a virtual time for runtime violations.
        message: Human-readable statement of the problem.
        hint: Optional one-line suggestion for the fix.
    """

    check: str
    severity: Severity
    layer: str
    location: str
    message: str
    hint: str = ""

    def __str__(self) -> str:
        text = f"[{self.severity}] {self.check} @ {self.layer}:{self.location}: {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


def error(check: str, layer: str, location: str, message: str, hint: str = "") -> Finding:
    """Shorthand for an ERROR finding."""
    return Finding(check, Severity.ERROR, layer, location, message, hint)


def warning(check: str, layer: str, location: str, message: str, hint: str = "") -> Finding:
    """Shorthand for a WARNING finding."""
    return Finding(check, Severity.WARNING, layer, location, message, hint)


class CheckReport:
    """An ordered collection of findings with pass/fail semantics."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self.findings: List[Finding] = list(findings)

    def extend(self, findings: Iterable[Finding]) -> "CheckReport":
        """Append findings (chainable)."""
        self.findings.extend(findings)
        return self

    @property
    def errors(self) -> List[Finding]:
        """Findings that must block a run."""
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        """Advisory findings."""
        return [f for f in self.findings if f.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no finding is an error."""
        return not self.errors

    def by_check(self, check: str) -> List[Finding]:
        """Findings with the given check id (test helper)."""
        return [f for f in self.findings if f.check == check]

    def render(self) -> str:
        """Multi-line human-readable report (summary line last)."""
        lines = [str(f) for f in self.findings]
        lines.append(
            f"static check: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) in {len(self.findings)} finding(s)"
            if self.findings
            else "static check: clean"
        )
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        """Raise :class:`StaticCheckError` when any finding is an error."""
        if not self.ok:
            raise StaticCheckError(self)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CheckReport errors={len(self.errors)} warnings={len(self.warnings)}>"


# --------------------------------------------------------------------- #
# machine-readable exports (CI annotation)                              #
# --------------------------------------------------------------------- #

#: Schema tag of the JSON findings report.
JSON_SCHEMA = "repro.staticcheck-findings/v1"

#: SARIF severity levels by finding severity.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _split_location(location: str) -> tuple:
    """``path:line`` -> (path, line); non-file locations get line 0."""
    path, sep, line = location.rpartition(":")
    if sep and line.isdigit():
        return path, int(line)
    return location, 0


def findings_to_json(findings: Sequence[Finding]) -> Dict:
    """The findings report as a schema-versioned JSON document."""
    return {
        "schema": JSON_SCHEMA,
        "counts": {
            "error": sum(1 for f in findings if f.severity == Severity.ERROR),
            "warning": sum(
                1 for f in findings if f.severity == Severity.WARNING
            ),
            "total": len(findings),
        },
        "findings": [
            {
                "check": f.check,
                "severity": str(f.severity),
                "layer": f.layer,
                "location": f.location,
                "message": f.message,
                "hint": f.hint,
            }
            for f in findings
        ],
    }


def findings_to_sarif(
    findings: Sequence[Finding], tool_version: str = "0"
) -> Dict:
    """The findings report as a minimal SARIF 2.1.0 document.

    One rule per distinct check id; each result carries the finding's
    message, severity level and — when the location parses as
    ``path:line`` — a physical location CI annotators understand.
    """
    rules: List[Dict] = []
    rule_index: Dict[str, int] = {}
    results: List[Dict] = []
    for finding in findings:
        if finding.check not in rule_index:
            rule_index[finding.check] = len(rules)
            rules.append({
                "id": finding.check,
                "shortDescription": {"text": finding.check},
                "help": {"text": finding.hint or finding.check},
            })
        path, line = _split_location(finding.location)
        result: Dict = {
            "ruleId": finding.check,
            "ruleIndex": rule_index[finding.check],
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
        }
        if line > 0:
            result["locations"] = [{
                "physicalLocation": {
                    "artifactLocation": {"uri": path},
                    "region": {"startLine": line},
                },
            }]
        results.append(result)
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-staticcheck",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def summary_table(
    findings: Sequence[Finding], checks: Optional[Sequence[str]] = None
) -> str:
    """Per-check-id counts as an aligned text table (CI job-log summary).

    ``checks`` lists every check id that *ran*, so a clean check shows
    an explicit zero row instead of silently vanishing.
    """
    counts: Dict[str, List[int]] = {}
    for check in checks or ():
        counts[check] = [0, 0]
    for f in findings:
        row = counts.setdefault(f.check, [0, 0])
        row[0 if f.severity == Severity.ERROR else 1] += 1
    width = max([len("check"), *(len(c) for c in counts)], default=5)
    lines = [
        f"{'check':<{width}}  {'errors':>6}  {'warnings':>8}",
        f"{'-' * width}  {'-' * 6}  {'-' * 8}",
    ]
    for check in sorted(counts):
        err, warn = counts[check]
        lines.append(f"{check:<{width}}  {err:>6}  {warn:>8}")
    return "\n".join(lines)


def write_json_file(path: str, document: Dict) -> None:
    """Write one JSON document, creating parent directories."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


class StaticCheckError(RuntimeError):
    """Raised when a precheck found blocking (ERROR) findings."""

    def __init__(self, report: CheckReport) -> None:
        self.report = report
        super().__init__(
            "static check found {} blocking finding(s):\n{}".format(
                len(report.errors), report.render()
            )
        )
