"""The shared finding vocabulary of the static-analysis subsystem.

Every static check — workflow structure, cross-layer placement, schedule
audit, determinism lint — reports problems as :class:`Finding` objects:
a check id, a severity, the layer the problem lives in, a location string
("workflow:mProject_3", "src/repro/foo.py:42"), a human message and a fix
hint.  The runtime :class:`~repro.sanitizer.Sanitizer` converts its
violations to the same type (``Violation.as_finding()``), so plan-time and
run-time reports render uniformly.

:class:`CheckReport` aggregates findings from several check groups and
decides pass/fail: only ``ERROR``-severity findings fail a precheck;
warnings are advisory and printed but never block a run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe configurations that cannot run correctly
    (the simulator would strand tasks, overflow a store, or silently
    produce garbage); ``WARNING`` findings describe configurations that
    run but are statistically doomed or suspicious; ``INFO`` is purely
    informational.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One statically-detected problem.

    Attributes:
        check: Stable check identifier (``"stranded-task"``), the handle
            used by allowlists and tests.
        severity: How bad it is (see :class:`Severity`).
        layer: Which layer the problem lives in (``workflow``, ``data``,
            ``platform``, ``plan``, ``schedule``, ``lint``, ``runtime``).
        location: Where — a task/file/device name, ``path:line`` for lint
            findings, or a virtual time for runtime violations.
        message: Human-readable statement of the problem.
        hint: Optional one-line suggestion for the fix.
    """

    check: str
    severity: Severity
    layer: str
    location: str
    message: str
    hint: str = ""

    def __str__(self) -> str:
        text = f"[{self.severity}] {self.check} @ {self.layer}:{self.location}: {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


def error(check: str, layer: str, location: str, message: str, hint: str = "") -> Finding:
    """Shorthand for an ERROR finding."""
    return Finding(check, Severity.ERROR, layer, location, message, hint)


def warning(check: str, layer: str, location: str, message: str, hint: str = "") -> Finding:
    """Shorthand for a WARNING finding."""
    return Finding(check, Severity.WARNING, layer, location, message, hint)


class CheckReport:
    """An ordered collection of findings with pass/fail semantics."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self.findings: List[Finding] = list(findings)

    def extend(self, findings: Iterable[Finding]) -> "CheckReport":
        """Append findings (chainable)."""
        self.findings.extend(findings)
        return self

    @property
    def errors(self) -> List[Finding]:
        """Findings that must block a run."""
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        """Advisory findings."""
        return [f for f in self.findings if f.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no finding is an error."""
        return not self.errors

    def by_check(self, check: str) -> List[Finding]:
        """Findings with the given check id (test helper)."""
        return [f for f in self.findings if f.check == check]

    def render(self) -> str:
        """Multi-line human-readable report (summary line last)."""
        lines = [str(f) for f in self.findings]
        lines.append(
            f"static check: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) in {len(self.findings)} finding(s)"
            if self.findings
            else "static check: clean"
        )
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        """Raise :class:`StaticCheckError` when any finding is an error."""
        if not self.ok:
            raise StaticCheckError(self)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CheckReport errors={len(self.errors)} warnings={len(self.warnings)}>"


class StaticCheckError(RuntimeError):
    """Raised when a precheck found blocking (ERROR) findings."""

    def __init__(self, report: CheckReport) -> None:
        self.report = report
        super().__init__(
            "static check found {} blocking finding(s):\n{}".format(
                len(report.errors), report.render()
            )
        )
