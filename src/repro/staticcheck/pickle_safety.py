"""Pickle-boundary safety for worker payloads.

Everything a :class:`~repro.runner.pool.CampaignRunner` ships to a pool
worker crosses a fork/forkserver/spawn pickle boundary twice: the
payload on the way out, the record on the way back.  The runner's
contract (:mod:`repro.runner.jobs`) is that payloads are *plain data* —
dicts of JSON-ish values rebuilt by factory specs on the worker side —
because anything richer either fails to pickle (closures, lambdas, open
handles, locally-defined classes) or, worse, pickles *silently wrong*
(a captured module-level mutable is copied at dispatch time, so parent
and worker quietly diverge afterwards).

This pass proves the contract statically.  It finds the payload
construction sites by name (``payload`` / ``_payload_for`` methods, the
runner convention), walks everything reachable from them through the
call graph, and flags inside that cone:

* ``pickle-lambda`` — a lambda stored into a payload dict;
* ``pickle-local-def`` — a function or class defined inside the
  enclosing function stored into a payload dict (closures and local
  classes cannot be pickled by reference);
* ``pickle-open-handle`` — a value bound from ``open(...)`` stored into
  a payload dict (file handles do not survive any start method);
* ``pickle-module-state`` — a module-level mutable global stored into a
  payload dict (the worker gets a snapshot copy, not the shared
  object — mutation after dispatch diverges silently).

Independently, every pool dispatch call in the tree
(``.map``/``.imap``/``.imap_unordered``/``.starmap``/``.apply_async``/…)
is checked for an unpicklable *target*: the dispatched callable must be
a module-level function, never a lambda or a nested def
(``pickle-unpicklable-target``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import CallGraph, FunctionInfo, local_nodes
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.lint import allow_match

#: Layer tag for every finding this module emits.
LAYER = "pickle"

#: Function names treated as payload construction sites (the runner
#: convention: SimJob.payload / TimingJob.payload / _payload_for).
PAYLOAD_BUILDER_NAMES = ("payload", "_payload_for", "build_payload")

#: Pool methods whose first argument crosses the pickle boundary.
POOL_DISPATCH_METHODS = (
    "map", "imap", "imap_unordered", "starmap", "starmap_async",
    "map_async", "apply_async",
)

#: Constructor names whose module-level result is a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque",
}


def payload_builders(graph: CallGraph) -> List[str]:
    """Payload-construction functions present in the graph, sorted."""
    return sorted(
        qual for qual, info in graph.functions.items()
        if info.name in PAYLOAD_BUILDER_NAMES
    )


def _is_mutable_global(node: Optional[ast.AST]) -> bool:
    """Whether a module-level assigned value is a mutable container."""
    if node is None:
        return False
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _function_locals(info: FunctionInfo) -> Tuple[Set[str], Set[str], Set[str]]:
    """(nested def/class names, open-handle locals, parameter names)."""
    local_defs: Set[str] = set()
    open_handles: Set[str] = set()
    args = info.node.args
    params = {
        a.arg for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    if args.vararg:
        params.add(args.vararg.arg)
    if args.kwarg:
        params.add(args.kwarg.arg)
    for node in local_nodes(info.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            local_defs.add(node.name)
        elif isinstance(node, ast.Assign) and _is_open_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    open_handles.add(target.id)
        elif isinstance(node, ast.With):
            for item in node.items:
                if (
                    _is_open_call(item.context_expr)
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    open_handles.add(item.optional_vars.id)
    return local_defs, open_handles, params


def _is_open_call(node: Optional[ast.AST]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "open"
    )


def check_pickle_safety(
    graph: CallGraph,
    builders: Optional[Iterable[str]] = None,
    allow: Sequence = (),
    used: Optional[Set] = None,
) -> List[Finding]:
    """All pickle-boundary findings over the graph (see module docs)."""
    findings: List[Finding] = []
    builder_list = (
        list(builders) if builders is not None else payload_builders(graph)
    )
    cone = graph.reachable(builder_list)

    def flag(check: str, path: str, lineno: int, message: str, hint: str):
        location = f"{path}:{lineno}"
        if allow_match(allow, path, check, location, message, used):
            return
        findings.append(
            Finding(check, Severity.ERROR, LAYER, location, message, hint)
        )

    for qual in sorted(cone):
        info = graph.functions[qual]
        module = graph.modules.get(info.module)
        if module is None:
            continue
        local_defs, open_handles, params = _function_locals(info)

        def classify_value(node: ast.AST) -> None:
            lineno = getattr(node, "lineno", info.lineno)
            if isinstance(node, ast.Lambda):
                flag(
                    "pickle-lambda", module.path, lineno,
                    f"{qual} stores a lambda in a worker payload; lambdas "
                    f"cannot cross the pool's pickle boundary",
                    "ship data and rebuild the callable worker-side "
                    "(factory spec)",
                )
            elif _is_open_call(node):
                flag(
                    "pickle-open-handle", module.path, lineno,
                    f"{qual} stores an open file handle in a worker "
                    f"payload; handles do not survive the pickle boundary",
                    "ship the path and reopen in the worker",
                )
            elif isinstance(node, ast.Name):
                name = node.id
                if name in params:
                    return  # caller-supplied: checked at its own source
                if name in local_defs:
                    flag(
                        "pickle-local-def", module.path, lineno,
                        f"{qual} stores locally-defined {name!r} in a "
                        f"worker payload; local functions/classes cannot "
                        f"be pickled by reference",
                        "hoist the definition to module level",
                    )
                elif name in open_handles:
                    flag(
                        "pickle-open-handle", module.path, lineno,
                        f"{qual} stores open handle {name!r} in a worker "
                        f"payload; handles do not survive the pickle "
                        f"boundary",
                        "ship the path and reopen in the worker",
                    )
                elif name not in module.functions and name not in module.classes:
                    value = module.globals.get(name)
                    if _is_mutable_global(value):
                        flag(
                            "pickle-module-state", module.path, lineno,
                            f"{qual} stores module-level mutable {name!r} "
                            f"in a worker payload; the worker receives a "
                            f"dispatch-time snapshot that silently "
                            f"diverges from the parent's copy",
                            "pass an immutable view or rebuild "
                            "worker-side from plain data",
                        )
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                for element in node.elts:
                    classify_value(element)
            elif isinstance(node, ast.Dict):
                for value in node.values:
                    if value is not None:
                        classify_value(value)

        for node in local_nodes(info.node):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                classify_value(node.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        classify_value(node.value)

    findings.extend(_check_pool_targets(graph, allow, used))
    return findings


def _check_pool_targets(
    graph: CallGraph, allow: Sequence, used: Optional[Set]
) -> List[Finding]:
    """Flag unpicklable callables handed to pool dispatch methods."""
    findings: List[Finding] = []
    for qual in sorted(graph.functions):
        info = graph.functions[qual]
        module = graph.modules.get(info.module)
        if module is None:
            continue
        local_defs = {
            n.name for n in local_nodes(info.node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in graph.function_nodes(qual):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_DISPATCH_METHODS
                and node.args
            ):
                continue
            target = node.args[0]
            problem = None
            if isinstance(target, ast.Lambda):
                problem = "a lambda"
            elif isinstance(target, ast.Name) and target.id in local_defs:
                problem = f"nested function {target.id!r}"
            if problem is None:
                continue
            lineno = getattr(node, "lineno", info.lineno)
            location = f"{module.path}:{lineno}"
            message = (
                f"{qual} dispatches {problem} to "
                f"{node.func.attr}(); pool targets must be module-level "
                f"functions to pickle under spawn/forkserver"
            )
            if allow_match(
                allow, module.path, "pickle-unpicklable-target",
                location, message, used,
            ):
                continue
            findings.append(Finding(
                "pickle-unpicklable-target", Severity.ERROR, LAYER,
                location, message,
                "hoist the target to module level",
            ))
    return findings
