"""Interprocedural determinism taint over the call graph.

The file-local lint (:mod:`repro.staticcheck.lint`) sees a sink only in
the function that contains it.  This pass makes the property
*whole-program*: a campaign-entry root whose transitive callees reach a
wall-clock read, a global-stream random draw, an unseeded generator or
an ambient-entropy source is flagged **at the root**, with the shortest
call chain from the root to the sink — because that is the function
whose output the determinism gate actually bit-compares.

Mechanics:

* every function gets a **taint summary**: the determinism sinks its
  own body contains (classified by the shared
  :func:`repro.staticcheck.lint.sink_for_call` catalog), minus sinks the
  allowlist suppresses — an allowlisted sink (e.g. the sanctioned
  ``repro.observe.clock`` shim) seeds no taint, which is exactly the
  sink-site granularity the allowlist's third field exists for;
* taint propagates backwards over call edges to a fixed point;
* each tainted **root** produces one ``taint-flow`` finding per distinct
  sink check id, carrying the chain
  ``root -> callee -> ... -> sink() at path:line``.

Roots default to the campaign entry points: the worker executor
(``repro.runner.jobs.execute_sim``), the batch admission loop
(``repro.runner.pool.CampaignRunner.run_batches``) and every scheduler
``schedule``/``schedule_workflow`` plan entry point under
``repro.schedulers``.  Linting a tree that contains none of these (a
test fixture, a subpackage) simply checks whatever roots it does
contain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import CallGraph
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.lint import allow_match, sink_for_call

#: Layer tag for every finding this module emits.
LAYER = "flow"

#: Campaign-entry roots always checked when present in the graph.
DEFAULT_ROOTS = (
    "repro.runner.jobs.execute_sim",
    "repro.runner.jobs.execute_payload",
    "repro.runner.pool.CampaignRunner.run_batches",
    "repro.runner.pool.CampaignRunner.run_sims",
)

#: Module prefix whose ``schedule``/``schedule_workflow`` methods are
#: plan entry points (every registered scheduler's public surface).
SCHEDULER_PREFIX = "repro.schedulers."
SCHEDULER_ENTRY_NAMES = ("schedule", "schedule_workflow")


@dataclass(frozen=True)
class SinkSite:
    """One direct determinism sink inside one function."""

    check: str      # lint check id ("wall-clock", ...)
    message: str    # the sink catalog's message
    path: str
    lineno: int

    @property
    def location(self) -> str:
        return f"{self.path}:{self.lineno}"


def default_roots(graph: CallGraph) -> List[str]:
    """Campaign-entry roots present in this graph, deterministic order."""
    roots = [r for r in DEFAULT_ROOTS if r in graph.functions]
    for qual in sorted(graph.functions):
        info = graph.functions[qual]
        if (
            info.module.startswith(SCHEDULER_PREFIX)
            and info.name in SCHEDULER_ENTRY_NAMES
            and info.cls is not None
        ):
            roots.append(qual)
    return roots


def function_sinks(
    graph: CallGraph,
    allow: Sequence = (),
    used: Optional[Set] = None,
) -> Dict[str, List[SinkSite]]:
    """Per-function direct-sink summaries, allowlist already applied.

    Matching reuses the lint allowlist exactly: a 2-field entry
    suppresses the check anywhere in the file, a 3-field entry only the
    named site — either way the sink seeds no interprocedural taint.
    """
    summaries: Dict[str, List[SinkSite]] = {}
    for qual, info in graph.functions.items():
        module = graph.modules.get(info.module)
        if module is None:
            continue
        sites: List[SinkSite] = []
        for node in graph.function_nodes(qual):
            if not isinstance(node, ast.Call):
                continue
            sink = sink_for_call(node, module.aliases)
            if sink is None:
                continue
            check, message = sink
            lineno = getattr(node, "lineno", info.lineno)
            location = f"{module.path}:{lineno}"
            if allow_match(allow, module.path, check, location, message, used):
                continue
            sites.append(SinkSite(check, message, module.path, lineno))
        if sites:
            summaries[qual] = sites
    return summaries


def propagate_taint(
    graph: CallGraph, sinks: Dict[str, List[SinkSite]]
) -> Dict[str, Set[str]]:
    """Fixed-point taint: function -> the sink check ids it can reach."""
    taint: Dict[str, Set[str]] = {
        qual: {site.check for site in sites} for qual, sites in sinks.items()
    }
    # Reverse edges once; worklist to a fixed point.
    callers: Dict[str, List[str]] = {}
    for caller, edges in graph.edges.items():
        for callee, _lineno in edges:
            callers.setdefault(callee, []).append(caller)
    work = list(taint)
    while work:
        fn = work.pop()
        checks = taint.get(fn, set())
        for caller in callers.get(fn, ()):  # noqa: B020
            have = taint.setdefault(caller, set())
            if not checks <= have:
                have.update(checks)
                work.append(caller)
    return taint


def _chain_text(
    graph: CallGraph,
    root: str,
    sinks: Dict[str, List[SinkSite]],
    check: str,
) -> str:
    """Render ``root -> ... -> sink() at path:line`` for one check id."""
    carriers = {
        qual for qual, sites in sinks.items()
        if any(site.check == check for site in sites)
    }
    chain = graph.call_chain(root, carriers)
    if chain is None:  # taint said reachable; belt-and-braces fallback
        return f"{root} reaches a {check} sink"
    site = next(s for s in sinks[chain[-1]] if s.check == check)
    hops = " -> ".join(q.rsplit(".", 2)[-1] if q.count(".") < 2
                       else ".".join(q.rsplit(".", 2)[-2:]) for q in chain)
    return f"{hops} -> {check} at {site.location}"


def check_flow(
    graph: CallGraph,
    roots: Optional[Iterable[str]] = None,
    allow: Sequence = (),
    used: Optional[Set] = None,
) -> List[Finding]:
    """Interprocedural determinism taint from the campaign-entry roots.

    One ``taint-flow`` ERROR per (root, sink check id) pair; the message
    carries the shortest call chain so the finding is actionable at
    either end (fix the sink, or cut the call path).
    """
    root_list = list(roots) if roots is not None else default_roots(graph)
    sinks = function_sinks(graph, allow=allow, used=used)
    taint = propagate_taint(graph, sinks)
    findings: List[Finding] = []
    for root in root_list:
        info = graph.functions.get(root)
        if info is None:
            continue
        for check in sorted(taint.get(root, ())):
            chain = _chain_text(graph, root, sinks, check)
            message = (
                f"campaign entry point {root} transitively reaches a "
                f"{check} sink: {chain}"
            )
            location = f"{info.path}:{info.lineno}"
            if allow_match(
                allow, info.path, "taint-flow", location, message, used
            ):
                continue
            findings.append(Finding(
                "taint-flow", Severity.ERROR, LAYER, location, message,
                "remove the sink, route it through an allowlisted shim, "
                "or break the call path",
            ))
    return findings
