"""Concurrency and lifecycle hazard checks over the call graph.

Three bug classes PRs 5–7 met in the wild, now machine-checked:

* ``worker-global-mutation`` — code reachable from the pool's worker
  entry points (:func:`repro.runner.jobs.execute_payload` and friends)
  that mutates module- or class-level state: a ``global`` rebind, a
  mutating method call / subscript store on a module-level container, or
  an assignment to a class attribute.  Under ``fork`` the mutation is
  invisible to the parent; under ``forkserver``/``spawn`` it is invisible
  to *other* workers too — either way the processes silently diverge.
  Deliberate per-process memos are allowlisted with a written
  justification, which is exactly what the allowlist's site field is
  for.
* ``generator-pool-cleanup`` — a generator function that (transitively)
  dispatches work to a multiprocessing pool but contains no
  ``try/finally`` and no ``with closing(...)``: if the consumer abandons
  the generator mid-stream, ``GeneratorExit`` unwinds it with the pool
  iterator half-consumed and the pool unusable for the next batch — the
  exact PR 7 bug class.
* ``unclassified-raise`` — a ``raise SomeError(...)`` reachable from
  worker code where ``SomeError`` does not map to an explicit category
  in :func:`repro.runner.health.classify_exception`'s taxonomy (mirrored
  statically here).  Unknown classes fall to the unknown-permanent
  fallback at runtime, which silently disables retry for genuinely
  transient conditions — every exception class a worker can raise must
  be a *deliberate* taxonomy decision, and raising ``BaseException``
  family members (``SystemExit``, ``KeyboardInterrupt``) escapes the
  ``except Exception`` failure capture entirely.
* ``thread-shared-mutation`` — the in-process sibling of
  ``worker-global-mutation``, introduced with the campaign service:
  module- or class-level state mutated by code reachable from functions
  that run on *threads sharing one interpreter* — the HTTP API's
  handler threads and the service worker's store-polling loop.  There
  the hazard is not divergence but a data race.  Mutations lexically
  inside a ``with <...lock...>:`` block are accepted (the one static
  shape that proves intent); anything else needs a written allowlist
  justification (e.g. a GIL-atomic memo store that at worst recomputes).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import (
    CallGraph,
    FunctionInfo,
    local_nodes,
)
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.lint import allow_match
from repro.staticcheck.pickle_safety import POOL_DISPATCH_METHODS

#: Layer tag for every finding this module emits.
LAYER = "concurrency"

#: Pool worker entry points checked when present in the graph.
DEFAULT_WORKER_ROOTS = (
    "repro.runner.jobs.execute_payload",
    "repro.runner.jobs.execute_sim",
    "repro.runner.jobs.execute_timing",
)

#: Container methods that mutate their receiver.
MUTATOR_METHODS = {
    "append", "add", "clear", "update", "pop", "popitem", "setdefault",
    "extend", "insert", "remove", "discard",
}

#: Static mirror of :func:`repro.runner.health.classify_exception`.
#: Class *names* (matched anywhere in the statically-resolved base
#: chain, like the runtime's MRO walk) -> failure category.  Kept in
#: sync by a consistency test against the live function.
STATIC_TAXONOMY: Dict[str, str] = {
    # explicit markers, matched by name like the runtime does
    "TransientCellError": "transient",
    "SanitizerError": "sanitizer",
    # infrastructure: the host, not the cell, is the problem
    "MemoryError": "infrastructure",
    "PermissionError": "infrastructure",
    "OSError": "infrastructure",
    "IOError": "infrastructure",
    # transient: a bounded retry can plausibly clear these
    "TimeoutError": "transient",
    "ConnectionError": "transient",
    "InterruptedError": "transient",
    # permanent: deterministic simulation errors retry to the same failure
    "ValueError": "permanent",
    "TypeError": "permanent",
    "KeyError": "permanent",
    "IndexError": "permanent",
    "LookupError": "permanent",
    "AttributeError": "permanent",
    "NameError": "permanent",
    "RuntimeError": "permanent",
    "NotImplementedError": "permanent",
    "ArithmeticError": "permanent",
    "ZeroDivisionError": "permanent",
    "OverflowError": "permanent",
    "AssertionError": "permanent",
    "StopIteration": "permanent",
    "RecursionError": "permanent",
    "UnicodeError": "permanent",
    "ImportError": "permanent",
    "ModuleNotFoundError": "permanent",
    "EOFError": "permanent",
    "BufferError": "permanent",
    "SystemError": "permanent",
}

#: Exception names that are *never* acceptable at a worker raise site:
#: too generic to classify, or outside ``except Exception`` entirely.
UNCLASSIFIABLE_NAMES = {
    "Exception", "BaseException", "SystemExit", "KeyboardInterrupt",
    "GeneratorExit",
}


#: Entry points that run on threads sharing one interpreter: the HTTP
#: API's per-request handler threads and the worker daemon's poll loop
#: (which shares its process with heartbeat-time store access).
DEFAULT_THREAD_ROOTS = (
    "repro.service.api.ServiceHandler.do_GET",
    "repro.service.api.ServiceHandler.do_POST",
    "repro.service.worker.ServiceWorker.run",
    # The graph cannot resolve `self.server.store.submit()`-style
    # instance-attribute chains, so the shared JobStore's public surface
    # is rooted explicitly: every one of these runs on whichever handler
    # thread (or worker loop) called it.
    "repro.service.store.JobStore.submit",
    "repro.service.store.JobStore.lease",
    "repro.service.store.JobStore.mark_running",
    "repro.service.store.JobStore.heartbeat",
    "repro.service.store.JobStore.release",
    "repro.service.store.JobStore.reclaim_expired",
    "repro.service.store.JobStore.complete",
    "repro.service.store.JobStore.tick",
    "repro.service.store.JobStore.counts",
    "repro.service.store.JobStore.campaign",
    "repro.service.store.JobStore.campaigns",
    "repro.service.store.JobStore.cells",
    "repro.service.store.JobStore.cell",
    "repro.service.store.JobStore.dump",
)


def default_worker_roots(graph: CallGraph) -> List[str]:
    return [r for r in DEFAULT_WORKER_ROOTS if r in graph.functions]


def default_thread_roots(graph: CallGraph) -> List[str]:
    return [r for r in DEFAULT_THREAD_ROOTS if r in graph.functions]


# ------------------------------------------------------------------ #
# shared helpers                                                     #
# ------------------------------------------------------------------ #

def _local_bindings(info: FunctionInfo) -> Set[str]:
    """Names bound inside the function (params, assigns, loops, withs)."""
    args = info.node.args
    bound = {
        a.arg for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)

    def add_target(target: ast.AST) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                bound.add(node.id)

    for node in local_nodes(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    add_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            add_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    add_target(item.optional_vars)
    return bound


def _resolve_class(graph: CallGraph, module, node: ast.AST) -> Optional[str]:
    """Resolve an expression to a class qualname, if statically known."""
    from repro.staticcheck.callgraph import _resolve_symbol

    resolved = _resolve_symbol(graph, module, node)
    if resolved and resolved[0] == "class":
        return resolved[1]
    return None


# ------------------------------------------------------------------ #
# shared-state mutation scanning                                     #
# ------------------------------------------------------------------ #

def _state_mutations(
    graph: CallGraph, qual: str
) -> Tuple[Optional[object], List[Tuple[ast.AST, str]]]:
    """``(module, [(node, what), ...])`` mutation sites in one function.

    A site is a mutation of state that outlives the call: a ``global``
    rebind, a subscript store / delete / mutating method call on a
    module-level container, or an assignment to a class attribute.
    The *meaning* of a site (process divergence vs. thread race) is the
    caller's to judge.
    """
    info = graph.functions[qual]
    module = graph.modules.get(info.module)
    if module is None:
        return None, []
    declared_global: Set[str] = set()
    for node in local_nodes(info.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    local = _local_bindings(info) - declared_global
    sites: List[Tuple[ast.AST, str]] = []

    def is_module_state(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Name)
            and node.id not in local
            and (node.id in module.globals or node.id in declared_global)
        ):
            return node.id
        return None

    for node in local_nodes(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    sites.append((node, f"module global {target.id!r}"))
                elif isinstance(target, ast.Subscript):
                    name = is_module_state(target.value)
                    if name is not None:
                        sites.append(
                            (node, f"module-level container {name!r}")
                        )
                elif isinstance(target, ast.Attribute):
                    cls = _resolve_class(graph, module, target.value)
                    if cls is not None:
                        sites.append(
                            (node, f"class attribute {cls}.{target.attr}")
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = is_module_state(target.value)
                    if name is not None:
                        sites.append(
                            (node, f"module-level container {name!r}")
                        )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
        ):
            name = is_module_state(node.func.value)
            if name is not None:
                sites.append((
                    node,
                    f"module-level container {name!r} "
                    f"(.{node.func.attr}())",
                ))
    return module, sites


# ------------------------------------------------------------------ #
# worker-global-mutation                                             #
# ------------------------------------------------------------------ #

def check_worker_mutation(
    graph: CallGraph,
    worker_roots: Optional[Iterable[str]] = None,
    allow: Sequence = (),
    used: Optional[Set] = None,
) -> List[Finding]:
    """Module/class-state mutation reachable from worker entry points."""
    roots = (
        list(worker_roots) if worker_roots is not None
        else default_worker_roots(graph)
    )
    findings: List[Finding] = []
    for qual in sorted(graph.reachable(roots)):
        info = graph.functions[qual]
        module, sites = _state_mutations(graph, qual)
        if module is None:
            continue
        for node, what in sites:
            lineno = getattr(node, "lineno", info.lineno)
            location = f"{module.path}:{lineno}"
            message = (
                f"worker-reachable {qual} mutates {what}; workers and "
                f"parent silently diverge across the process boundary"
            )
            if allow_match(
                allow, module.path, "worker-global-mutation",
                location, message, used,
            ):
                continue
            findings.append(Finding(
                "worker-global-mutation", Severity.ERROR, LAYER, location,
                message,
                "make the state per-call, or allowlist with a written "
                "justification if it is a deliberate per-process memo",
            ))
    return findings


# ------------------------------------------------------------------ #
# thread-shared-mutation                                             #
# ------------------------------------------------------------------ #

def _mentions_lock(expr: ast.AST) -> bool:
    """Whether an expression's names make it recognizably a lock."""
    for sub in ast.walk(expr):
        name = (
            sub.id if isinstance(sub, ast.Name)
            else sub.attr if isinstance(sub, ast.Attribute)
            else ""
        )
        if "lock" in name.lower():
            return True
    return False


def _lock_guarded_ranges(info: FunctionInfo) -> List[Tuple[int, int]]:
    """Line ranges of ``with`` blocks whose context names a lock."""
    ranges: List[Tuple[int, int]] = []
    for node in local_nodes(info.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_mentions_lock(item.context_expr) for item in node.items):
                ranges.append(
                    (node.lineno, getattr(node, "end_lineno", node.lineno)
                     or node.lineno)
                )
    return ranges


def check_thread_mutation(
    graph: CallGraph,
    thread_roots: Optional[Iterable[str]] = None,
    allow: Sequence = (),
    used: Optional[Set] = None,
) -> List[Finding]:
    """Unlocked shared-state mutation reachable from thread entry points.

    The in-process sibling of :func:`check_worker_mutation`: the roots
    run on threads sharing one interpreter (HTTP handler threads, the
    service worker's loop), so a module-global mutation is a data race,
    not a divergence.  Mutations lexically inside a ``with <...lock...>``
    block pass — naming the guard is the one static shape that proves
    the race was considered; everything else is flagged (or allowlisted
    with a written justification, e.g. GIL-atomic memo stores).
    """
    roots = (
        list(thread_roots) if thread_roots is not None
        else default_thread_roots(graph)
    )
    findings: List[Finding] = []
    for qual in sorted(graph.reachable(roots)):
        info = graph.functions[qual]
        module, sites = _state_mutations(graph, qual)
        if module is None:
            continue
        guarded = _lock_guarded_ranges(info)
        for node, what in sites:
            lineno = getattr(node, "lineno", info.lineno)
            if any(lo <= lineno <= hi for lo, hi in guarded):
                continue
            location = f"{module.path}:{lineno}"
            message = (
                f"thread-reachable {qual} mutates {what} outside any "
                f"lock; threads sharing the interpreter race on it"
            )
            if allow_match(
                allow, module.path, "thread-shared-mutation",
                location, message, used,
            ):
                continue
            findings.append(Finding(
                "thread-shared-mutation", Severity.ERROR, LAYER, location,
                message,
                "guard the mutation with `with <lock>:`, make the state "
                "per-call, or allowlist with a written justification if "
                "the race is benign by construction",
            ))
    return findings


# ------------------------------------------------------------------ #
# generator-pool-cleanup                                             #
# ------------------------------------------------------------------ #

def _dispatching_functions(graph: CallGraph) -> Set[str]:
    """Functions that (transitively) dispatch work to a pool."""
    base: Set[str] = set()
    for qual in graph.functions:
        for node in graph.function_nodes(qual):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_DISPATCH_METHODS
            ):
                base.add(qual)
                break
    callers: Dict[str, List[str]] = {}
    for caller, edges in graph.edges.items():
        for callee, _lineno in edges:
            callers.setdefault(callee, []).append(caller)
    work = list(base)
    while work:
        fn = work.pop()
        for caller in callers.get(fn, ()):
            if caller not in base:
                base.add(caller)
                work.append(caller)
    return base


def _has_cleanup_path(info: FunctionInfo) -> bool:
    """try/finally or ``with closing(...)`` anywhere in the body."""
    for node in local_nodes(info.node):
        if isinstance(node, ast.Try) and node.finalbody:
            return True
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    func = expr.func
                    name = func.id if isinstance(func, ast.Name) else (
                        func.attr if isinstance(func, ast.Attribute) else ""
                    )
                    if name == "closing":
                        return True
    return False


def check_generator_cleanup(
    graph: CallGraph,
    allow: Sequence = (),
    used: Optional[Set] = None,
) -> List[Finding]:
    """Pool-dispatching generators without a guaranteed cleanup path."""
    findings: List[Finding] = []
    dispatchers = _dispatching_functions(graph)
    for qual in sorted(dispatchers):
        info = graph.functions[qual]
        if not info.is_generator or _has_cleanup_path(info):
            continue
        module = graph.modules.get(info.module)
        path = module.path if module else info.path
        location = f"{path}:{info.lineno}"
        message = (
            f"generator {qual} dispatches to a process pool with no "
            f"try/finally or closing() path; abandoning it mid-stream "
            f"strands the pool's in-flight iterator"
        )
        if allow_match(
            allow, path, "generator-pool-cleanup", location, message, used
        ):
            continue
        findings.append(Finding(
            "generator-pool-cleanup", Severity.ERROR, LAYER, location,
            message,
            "wrap the dispatch/consume loop in try/finally and dispose "
            "the pool iterator there",
        ))
    return findings


# ------------------------------------------------------------------ #
# unclassified-raise                                                 #
# ------------------------------------------------------------------ #

def classify_static(graph: CallGraph, class_name: str) -> Optional[str]:
    """Category of an exception class qualname/name, or None if unknown.

    Walks the statically-resolved base chain, matching class *names*
    against :data:`STATIC_TAXONOMY` at every step — the same
    name-anywhere-in-the-MRO rule the runtime classifier uses.
    """
    seen: Set[str] = set()
    stack = [class_name]
    while stack:
        current = stack.pop(0)
        if current in seen:
            continue
        seen.add(current)
        bare = current.rsplit(".", 1)[-1]
        if bare in UNCLASSIFIABLE_NAMES:
            return None
        if bare in STATIC_TAXONOMY:
            return STATIC_TAXONOMY[bare]
        cls = graph.classes.get(current)
        if cls is not None:
            stack.extend(cls.bases)
    return None


def check_unclassified_raises(
    graph: CallGraph,
    worker_roots: Optional[Iterable[str]] = None,
    allow: Sequence = (),
    used: Optional[Set] = None,
) -> List[Finding]:
    """Worker-reachable raise sites outside the failure taxonomy."""
    from repro.staticcheck.callgraph import _resolve_symbol

    roots = (
        list(worker_roots) if worker_roots is not None
        else default_worker_roots(graph)
    )
    findings: List[Finding] = []
    for qual in sorted(graph.reachable(roots)):
        info = graph.functions[qual]
        module = graph.modules.get(info.module)
        if module is None:
            continue
        local = _local_bindings(info)
        for node in graph.function_nodes(qual):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name: Optional[str] = None
            resolved = _resolve_symbol(graph, module, target)
            if resolved and resolved[0] == "class":
                name = resolved[1]
            elif isinstance(target, ast.Name):
                if target.id in local or not target.id[:1].isupper():
                    continue  # re-raising a caught/local exception object
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            else:
                continue
            if classify_static(graph, name) is not None:
                continue
            lineno = getattr(node, "lineno", info.lineno)
            location = f"{module.path}:{lineno}"
            bare = name.rsplit(".", 1)[-1]
            message = (
                f"worker-reachable {qual} raises {bare}, which "
                f"classify_exception cannot place in the failure "
                f"taxonomy (falls to the unknown-permanent fallback)"
            )
            if allow_match(
                allow, module.path, "unclassified-raise",
                location, message, used,
            ):
                continue
            findings.append(Finding(
                "unclassified-raise", Severity.ERROR, LAYER, location,
                message,
                "derive the class from a classified base (e.g. "
                "RuntimeError or TransientCellError) or extend the "
                "taxonomy deliberately",
            ))
    return findings


# ------------------------------------------------------------------ #
# combined entry point                                               #
# ------------------------------------------------------------------ #

def check_concurrency(
    graph: CallGraph,
    worker_roots: Optional[Iterable[str]] = None,
    allow: Sequence = (),
    used: Optional[Set] = None,
) -> List[Finding]:
    """All concurrency/lifecycle findings (see the module docstring)."""
    findings: List[Finding] = []
    findings.extend(
        check_worker_mutation(graph, worker_roots, allow=allow, used=used)
    )
    findings.extend(check_thread_mutation(graph, allow=allow, used=used))
    findings.extend(check_generator_cleanup(graph, allow=allow, used=used))
    findings.extend(
        check_unclassified_raises(graph, worker_roots, allow=allow, used=used)
    )
    return findings
