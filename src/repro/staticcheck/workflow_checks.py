"""Workflow-layer static checks (submission-time structural validation).

This is the check group :func:`repro.workflows.validate.validate_workflow`
has always run, re-homed into the findings pipeline: acyclicity, orphan
files, consumed-but-never-produced files, eligibility sanity, and no-op
tasks.  All findings here are errors — a workflow failing any of them is
structurally malformed, not merely suspicious — which keeps the historical
``validate_workflow`` contract (raise on any problem) intact through the
shim.
"""

from __future__ import annotations

from typing import List

from repro.staticcheck.findings import Finding, error
from repro.workflows.graph import Workflow

#: Layer tag for every finding this group emits.
LAYER = "workflow"


def check_workflow(workflow: Workflow) -> List[Finding]:
    """Structural findings for one workflow (empty list = valid)."""
    findings: List[Finding] = []

    if workflow.n_tasks == 0:
        findings.append(
            error(
                "empty-workflow", LAYER, workflow.name,
                "workflow has no tasks",
                "add at least one task before submitting",
            )
        )
        return findings

    if not workflow.is_acyclic():
        findings.append(
            error(
                "workflow-cycle", LAYER, workflow.name,
                "dependency graph contains a cycle",
                "check control edges and file producer/consumer relations",
            )
        )

    produced = {f for t in workflow.tasks.values() for f in t.outputs}
    consumed = {f for t in workflow.tasks.values() for f in t.inputs}

    for fname, f in workflow.files.items():
        if f.initial:
            if fname in produced:
                findings.append(
                    error(
                        "file-initial-produced", LAYER, fname,
                        f"initial file {fname!r} is also produced",
                        "initial files must pre-exist; drop the producer output",
                    )
                )
        elif fname not in produced:
            if fname in consumed:
                findings.append(
                    error(
                        "file-unproduced", LAYER, fname,
                        f"file {fname!r} is consumed but never produced and not initial",
                        "mark it initial or add the producing task",
                    )
                )
            else:
                findings.append(
                    error(
                        "file-unused", LAYER, fname,
                        f"file {fname!r} is registered but unused",
                        "remove the registration or wire it to a task",
                    )
                )

    for task in workflow.tasks.values():
        if not task.eligible_classes():
            findings.append(
                error(
                    "task-no-class", LAYER, task.name,
                    f"task {task.name!r} is eligible on no device class",
                    "give the task a positive affinity for at least one class",
                )
            )
        if task.work == 0 and not task.inputs and not task.outputs:
            findings.append(
                error(
                    "task-trivial", LAYER, task.name,
                    f"task {task.name!r} has zero work and no data role",
                    "delete the task or give it work or data",
                )
            )

    return findings
