"""Cross-layer model checker: is this (workflow, cluster, config) runnable?

Every check here is *static* — it consults only the declared models, never
the simulator — yet each one corresponds to a failure mode the runtime
sanitizer (PR 2) could only catch after paying for a full run:

* ``stranded-task`` — a task whose eligibility set intersected with the
  alive devices (class affinity, memory fit) is empty; the executor would
  declare it dead mid-run.
* ``fault-fragile`` — permanent device faults are enabled and a task has
  exactly one eligible device: a single unlucky draw strands it.
* ``file-location-unknown`` / ``file-oversized`` / ``node-storage-overflow``
  — files crossing the workflow/catalog boundary that can never become
  resident where they are needed.
* ``fault-insane`` / ``fault-rate-extreme`` / ``mtbf-below-runtime`` —
  fault-model parameters that are nonsensical or statistically doom the
  run.
* ``power-insane`` / ``power-sleep-above-idle`` / ``dvfs-duplicate`` /
  ``storage-insane`` / ``missing-link`` — platform model insanity.
* ``replication-overcommit`` — the recovery policy wants more hot replicas
  than some task has eligible devices.

:func:`check_run` bundles the groups into one :class:`CheckReport`;
:func:`precheck_job` does the same for a serialized
:class:`~repro.runner.jobs.SimJob` cell (including the static schedule
audit for ``static``-mode cells), which is how ``--precheck`` and the
golden-fixture regeneration guard are wired.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform.cluster import Cluster
from repro.platform.devices import Device
from repro.staticcheck.findings import CheckReport, Finding, error, warning
from repro.staticcheck.workflow_checks import check_workflow
from repro.workflows.graph import Workflow

#: Expected transient faults per attempt beyond which a task is considered
#: statistically doomed (success probability per attempt < e^-3 ~ 5%).
EXPECTED_FAULTS_PER_ATTEMPT_LIMIT = 3.0

#: Numeric slack for time comparisons.
TOL = 1e-9


def _eligible_devices(task, cluster: Cluster) -> Dict[str, List[Device]]:
    """Alive devices split into class-eligible and fully-eligible sets."""
    model = cluster.execution_model
    class_ok = [d for d in cluster.alive_devices() if model.eligible(task, d.spec)]
    fit = [d for d in class_ok if d.spec.memory_gb >= task.memory_gb]
    return {"class": class_ok, "fit": fit}


# --------------------------------------------------------------------- #
# placement feasibility                                                 #
# --------------------------------------------------------------------- #

def check_placement(
    workflow: Workflow,
    cluster: Cluster,
    fault_model: Optional[FaultModel] = None,
) -> List[Finding]:
    """Stranded-task analysis: can every task run somewhere, and still
    run somewhere after a worst-case single permanent device loss?"""
    findings: List[Finding] = []
    for name, task in workflow.tasks.items():
        sets = _eligible_devices(task, cluster)
        if not sets["class"]:
            classes = [str(c) for c in task.eligible_classes()]
            findings.append(
                error(
                    "stranded-task", "plan", name,
                    f"task {name!r} needs device classes {classes} but the "
                    f"cluster {cluster.name!r} has no alive device of any "
                    f"of them",
                    "add a device of an eligible class or relax the task's affinity",
                )
            )
        elif not sets["fit"]:
            best = max(d.spec.memory_gb for d in sets["class"])
            findings.append(
                error(
                    "stranded-task", "plan", name,
                    f"task {name!r} needs {task.memory_gb:g} GB but the "
                    f"largest eligible device offers {best:g} GB",
                    "lower the task's memory_gb or add a larger device",
                )
            )
        elif (
            fault_model is not None
            and fault_model.device_mtbf is not None
            and len(sets["fit"]) == 1
        ):
            findings.append(
                warning(
                    "fault-fragile", "plan", name,
                    f"permanent device faults are enabled and task {name!r} "
                    f"is eligible on exactly one device "
                    f"({sets['fit'][0].uid}); one unlucky draw strands it",
                    "add a second eligible device or disable device faults",
                )
            )
    return findings


# --------------------------------------------------------------------- #
# data / catalog boundary                                               #
# --------------------------------------------------------------------- #

def check_data(workflow: Workflow, cluster: Cluster) -> List[Finding]:
    """File-placement feasibility across the workflow/catalog boundary."""
    findings: List[Finding] = []
    node_names = {n.name for n in cluster.nodes}
    max_capacity = max(n.spec.disk_capacity_gb for n in cluster.nodes)
    born_at: Dict[str, float] = {}
    consumed = {f for t in workflow.tasks.values() for f in t.inputs}

    for fname, f in workflow.files.items():
        if f.size_mb / 1024.0 > max_capacity + TOL:
            findings.append(
                error(
                    "file-oversized", "data", fname,
                    f"file {fname!r} is {f.size_mb / 1024.0:.1f} GB but the "
                    f"largest node store holds {max_capacity:g} GB; it can "
                    f"never be resident anywhere",
                    "shrink the file or provision a larger node store",
                )
            )
        if not f.initial:
            continue
        if f.location is not None:
            if f.location not in node_names:
                findings.append(
                    error(
                        "file-location-unknown", "data", fname,
                        f"initial file {fname!r} is born on node "
                        f"{f.location!r} which cluster {cluster.name!r} "
                        f"does not have (nodes: {sorted(node_names)})",
                        "fix the file's location or run on a matching cluster",
                    )
                )
            else:
                born_at[f.location] = born_at.get(f.location, 0.0) + f.size_mb
        if fname not in consumed:
            findings.append(
                warning(
                    "file-unread", "data", fname,
                    f"initial file {fname!r} is staged but no task consumes it",
                    "drop the file or wire it to a consumer",
                )
            )

    for node_name, total_mb in sorted(born_at.items()):
        capacity = cluster.node(node_name).spec.disk_capacity_gb
        if total_mb / 1024.0 > capacity + TOL:
            findings.append(
                error(
                    "node-storage-overflow", "data", node_name,
                    f"initial files born on {node_name!r} total "
                    f"{total_mb / 1024.0:.1f} GB, beyond its "
                    f"{capacity:g} GB store; they can never all be resident",
                    "spread the files over more nodes or grow the store",
                )
            )
    return findings


# --------------------------------------------------------------------- #
# platform model sanity                                                 #
# --------------------------------------------------------------------- #

def check_platform(cluster: Cluster) -> List[Finding]:
    """Power/DVFS/storage/interconnect parameter sanity."""
    findings: List[Finding] = []

    seen_specs: Dict[int, str] = {}
    for device in cluster.devices:
        spec = device.spec
        if id(spec) in seen_specs:
            continue
        seen_specs[id(spec)] = spec.name
        power = spec.power
        if power.busy_watts < power.idle_watts:
            findings.append(
                error(
                    "power-insane", "platform", spec.name,
                    f"device spec {spec.name!r} draws less busy "
                    f"({power.busy_watts} W) than idle ({power.idle_watts} W)",
                    "swap the figures; busy power must dominate idle",
                )
            )
        if power.idle_watts < 0 or power.busy_watts < 0 or power.sleep_watts < 0:
            findings.append(
                error(
                    "power-insane", "platform", spec.name,
                    f"device spec {spec.name!r} has a negative power draw",
                    "power draws must be non-negative",
                )
            )
        if power.sleep_watts > power.idle_watts:
            findings.append(
                warning(
                    "power-sleep-above-idle", "platform", spec.name,
                    f"device spec {spec.name!r} sleeps at {power.sleep_watts} W, "
                    f"above its idle draw {power.idle_watts} W; governors "
                    f"would burn energy by power-gating it",
                    "sleep power should be well below idle",
                )
            )
        names = [s.name for s in power.dvfs_states]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            findings.append(
                error(
                    "dvfs-duplicate", "platform", spec.name,
                    f"device spec {spec.name!r} has duplicate DVFS state "
                    f"names {dupes}; state lookup by name is ambiguous",
                    "give every DVFS operating point a unique name",
                )
            )

    if cluster.storage_bandwidth <= 0 or cluster.storage_latency < 0:
        findings.append(
            error(
                "storage-insane", "platform", cluster.name,
                f"shared storage has bandwidth "
                f"{cluster.storage_bandwidth} MB/s and latency "
                f"{cluster.storage_latency} s",
                "bandwidth must be positive and latency non-negative",
            )
        )

    names = [n.name for n in cluster.nodes]
    for src in names:
        for dst in names:
            if src == dst:
                continue
            try:
                cluster.interconnect.link(src, dst)
            except KeyError:
                findings.append(
                    error(
                        "missing-link", "platform", f"{src}->{dst}",
                        f"interconnect has no link {src} -> {dst}; any "
                        f"transfer on that pair raises at run time",
                        "add the link or use Interconnect.uniform",
                    )
                )
    return findings


# --------------------------------------------------------------------- #
# fault / recovery model sanity                                         #
# --------------------------------------------------------------------- #

def check_fault_model(
    fault_model: FaultModel,
    workflow: Workflow,
    cluster: Cluster,
) -> List[Finding]:
    """Statistical sanity of the failure model against this workload."""
    findings: List[Finding] = []

    if fault_model.task_fault_rate < 0:
        findings.append(
            error(
                "fault-insane", "plan", "task_fault_rate",
                f"task fault rate {fault_model.task_fault_rate} is negative",
                "rates are failures per second and must be >= 0",
            )
        )
    if fault_model.device_mtbf is not None and fault_model.device_mtbf <= 0:
        findings.append(
            error(
                "fault-insane", "plan", "device_mtbf",
                f"device MTBF {fault_model.device_mtbf} is not positive",
                "MTBF is seconds between failures and must be > 0",
            )
        )

    model = cluster.execution_model
    if fault_model.task_fault_rate > 0:
        doomed: List[str] = []
        worst_name, worst_exp = "", 0.0
        for name, task in workflow.tasks.items():
            ests = [
                model.estimate(task, d.spec)
                for d in _eligible_devices(task, cluster)["fit"]
            ]
            if not ests:
                continue  # stranded; reported by check_placement
            expected = fault_model.task_fault_rate * min(ests)
            if expected > EXPECTED_FAULTS_PER_ATTEMPT_LIMIT:
                doomed.append(name)
                if expected > worst_exp:
                    worst_name, worst_exp = name, expected
        if doomed:
            findings.append(
                warning(
                    "fault-rate-extreme", "plan", worst_name,
                    f"{len(doomed)} task(s) expect more than "
                    f"{EXPECTED_FAULTS_PER_ATTEMPT_LIMIT:g} transient faults "
                    f"per attempt even on their fastest device (worst: "
                    f"{worst_name!r} with {worst_exp:.1f}); bounded retries "
                    f"will almost surely exhaust",
                    "lower task_fault_rate or enable checkpointing",
                )
            )

    if fault_model.device_mtbf is not None and fault_model.device_mtbf > 0:
        alive = cluster.alive_devices()
        if alive:
            cp_lb = workflow.critical_path_work() / max(d.speed for d in alive)
            if fault_model.device_mtbf < cp_lb:
                findings.append(
                    warning(
                        "mtbf-below-runtime", "plan", "device_mtbf",
                        f"device MTBF {fault_model.device_mtbf:g} s is below "
                        f"the critical-path lower bound {cp_lb:.1f} s; "
                        f"expect device losses before any schedule can finish",
                        "raise the MTBF or shrink the workflow",
                    )
                )
    return findings


def check_recovery(
    recovery: RecoveryPolicy,
    workflow: Workflow,
    cluster: Cluster,
) -> List[Finding]:
    """Recovery-policy feasibility against the eligible device sets."""
    findings: List[Finding] = []
    if recovery.replicate_tasks <= 1:
        return findings
    starved = [
        name
        for name, task in workflow.tasks.items()
        if 0 < len(_eligible_devices(task, cluster)["fit"]) < recovery.replicate_tasks
    ]
    if starved:
        findings.append(
            warning(
                "replication-overcommit", "plan", starved[0],
                f"recovery wants {recovery.replicate_tasks} hot replicas but "
                f"{len(starved)} task(s) have fewer eligible devices "
                f"(first: {starved[0]!r})",
                "lower replicate_tasks or widen eligibility",
            )
        )
    return findings


# --------------------------------------------------------------------- #
# bundled entry points                                                  #
# --------------------------------------------------------------------- #

def check_run(
    workflow: Workflow,
    cluster: Cluster,
    fault_model: Optional[FaultModel] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> CheckReport:
    """All plan-time checks for one (workflow, cluster, config) tuple."""
    report = CheckReport()
    report.extend(check_workflow(workflow))
    report.extend(check_platform(cluster))
    report.extend(check_data(workflow, cluster))
    report.extend(check_placement(workflow, cluster, fault_model))
    if fault_model is not None:
        report.extend(check_fault_model(fault_model, workflow, cluster))
    if recovery is not None:
        report.extend(check_recovery(recovery, workflow, cluster))
    return report


def precheck_job(job) -> CheckReport:
    """Statically check one serialized simulation cell (a ``SimJob``).

    Materializes the cell exactly the way a pool worker would, runs
    :func:`check_run`, and — for ``static``-mode cells with a clean model
    check — also plans the schedule and audits it, so a scheduler bug in a
    cached campaign cell is caught before any fixture is regenerated from
    it.
    """
    import numpy as np

    import repro.core  # noqa: F401  (registers hdws in the scheduler registry)
    from repro.runner import specs as runner_specs
    from repro.schedulers import REGISTRY
    from repro.schedulers.base import SchedulingContext
    from repro.staticcheck.schedule_audit import audit_schedule
    from repro.workflows.serialize import workflow_from_dict

    workflow = workflow_from_dict(job.workflow)
    cluster = runner_specs.build(job.cluster)
    config = {k: runner_specs.build(v) for k, v in job.config.items()}

    report = check_run(
        workflow,
        cluster,
        fault_model=config.get("fault_model"),
        recovery=config.get("recovery"),
    )
    if not report.ok or config.get("mode", "static") != "static":
        return report

    scheduler = job.scheduler
    if isinstance(scheduler, str):
        scheduler = REGISTRY[scheduler]()
    else:
        scheduler = runner_specs.build(scheduler)
    seed = int(config.get("seed", 0))
    error_cv = float(config.get("estimate_error_cv", 0.0))
    context = SchedulingContext(
        workflow,
        cluster,
        estimate_error_cv=error_cv,
        rng=np.random.default_rng(seed + 7919) if error_cv > 0 else None,
        release_times=config.get("release_times"),
    )
    plan = scheduler.schedule(context)
    report.extend(audit_schedule(plan, workflow, cluster))
    return report
