"""A module-level call graph over a Python source tree.

The whole-program analyses (:mod:`repro.staticcheck.flow`,
:mod:`repro.staticcheck.pickle_safety`,
:mod:`repro.staticcheck.concurrency`) all need the same substrate: who
calls whom, statically, across the whole of ``src/repro``.  This module
parses every file once and resolves call edges with a deliberately
conservative set of rules — edges it cannot prove are *not* invented, so
downstream taint never explodes through common method names like
``get`` or ``update``:

* direct calls to names defined in the same module (including nested
  defs in the enclosing function);
* calls through ``import`` / ``from ... import`` bindings (function- and
  module-local imports both count; relative imports are resolved against
  the importing package);
* ``self.method()`` / ``cls.method()`` resolved through the class and
  its statically-known base chain;
* ``Name.method()`` where ``Name`` is a class (static/class-method
  style) or a local variable whose constructor is visible in the same
  function body (``x = Foo(); x.bar()``), including direct
  constructor-result calls (``Foo().bar()``);
* instantiating a class adds an edge to its ``__init__``.

Attribute calls that resolve to none of the above are recorded in
:attr:`CallGraph.unresolved` for diagnostics but produce no edge: the
graph under-approximates dynamic dispatch, which is the right failure
mode for a lint (missed findings, never avalanches of false ones).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.lint import iter_python_files

#: Receiver names resolved through the enclosing class.
_SELF_NAMES = ("self", "cls")


def module_name_for(path: str) -> str:
    """Dotted module name of a file, by walking up ``__init__.py`` dirs.

    Files outside any package resolve to their bare stem, so the graph
    also works over synthetic test trees.
    """
    path = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    parts: List[str] = []
    d = os.path.dirname(path)
    while os.path.isfile(os.path.join(d, "__init__.py")):
        parts.insert(0, os.path.basename(d))
        d = os.path.dirname(d)
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts) if parts else stem


def local_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """AST nodes belonging to one function body.

    Descends into everything *except* nested function/class definitions
    (their bodies are their own graph nodes); lambdas stay local to the
    enclosing function.  The nested def/class statements themselves are
    yielded, so callers can still see that they exist.
    """
    body = list(getattr(root, "body", []))
    stack: List[ast.AST] = body[::-1]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # the definition is visible; its body is not ours
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


@dataclass
class FunctionInfo:
    """One statically-known function or method."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    node: ast.AST
    cls: Optional[str] = None  # owning class qualname, if a method
    is_generator: bool = False


@dataclass
class ClassInfo:
    """One statically-known class with its resolved base chain."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    node: ast.AST
    bases: List[str] = field(default_factory=list)  # qualnames or raw names
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class ModuleInfo:
    """Per-module symbol tables the resolver consults."""

    name: str
    path: str
    tree: ast.AST
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)  # local -> qual
    classes: Dict[str, str] = field(default_factory=dict)
    #: Module-level assigned names -> the assigned value expression.
    globals: Dict[str, ast.AST] = field(default_factory=dict)


def _collect_aliases(tree: ast.AST, module: str, is_pkg: bool) -> Dict[str, str]:
    """Local name -> dotted import path, resolving relative imports."""
    package = module if is_pkg else module.rpartition(".")[0]
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                pkg_parts = package.split(".") if package else []
                keep = len(pkg_parts) - (node.level - 1)
                if keep < 0:
                    continue
                prefix = ".".join(pkg_parts[:keep])
                base = f"{prefix}.{base}" if base and prefix else (prefix or base)
            if not base:
                continue
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
    return aliases


class CallGraph:
    """The resolved call graph; see the module docstring for edge rules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> [(callee qualname, call lineno)]
        self.edges: Dict[str, List[Tuple[str, int]]] = {}
        #: caller qualname -> [(unresolved attr name, lineno)]
        self.unresolved: Dict[str, List[Tuple[str, int]]] = {}

    # ------------------------------------------------------------- #
    # queries                                                       #
    # ------------------------------------------------------------- #

    def callees(self, qualname: str) -> List[str]:
        """Distinct callee qualnames of one function, edge order."""
        seen: List[str] = []
        for callee, _lineno in self.edges.get(qualname, []):
            if callee not in seen:
                seen.append(callee)
        return seen

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            stack.extend(c for c in self.callees(fn) if c not in seen)
        return seen

    def call_chain(self, root: str, targets: Set[str]) -> Optional[List[str]]:
        """Shortest root -> target qualname path (BFS), or None."""
        if root not in self.functions:
            return None
        if root in targets:
            return [root]
        parent: Dict[str, str] = {root: ""}
        queue = [root]
        while queue:
            nxt: List[str] = []
            for fn in queue:
                for callee in self.callees(fn):
                    if callee in parent:
                        continue
                    parent[callee] = fn
                    if callee in targets:
                        chain = [callee]
                        while parent[chain[-1]]:
                            chain.append(parent[chain[-1]])
                        return chain[::-1]
                    nxt.append(callee)
            queue = nxt
        return None

    def function_nodes(self, qualname: str) -> Iterator[ast.AST]:
        """The AST nodes local to one function (see :func:`local_nodes`)."""
        info = self.functions.get(qualname)
        return iter(()) if info is None else local_nodes(info.node)

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        info = self.functions.get(qualname)
        return self.modules.get(info.module) if info else None

    def method_on(self, class_qual: str, method: str) -> Optional[str]:
        """Resolve a method through the class's static base chain."""
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            cq = stack.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            stack.extend(cls.bases)
        return None


def build_callgraph(paths: Sequence[str]) -> CallGraph:
    """Parse every ``.py`` file under ``paths`` and resolve call edges."""
    graph = CallGraph()
    for filename in iter_python_files(paths):
        try:
            with open(filename, encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=filename)
        except (OSError, SyntaxError):
            continue
        rel = os.path.relpath(filename).replace(os.sep, "/")
        module = module_name_for(filename)
        is_pkg = os.path.basename(filename) == "__init__.py"
        info = ModuleInfo(
            name=module, path=rel, tree=tree,
            aliases=_collect_aliases(tree, module, is_pkg),
        )
        graph.modules[module] = info
        _collect_defs(graph, info)
    _resolve_bases(graph)
    for module in graph.modules.values():
        _collect_edges(graph, module)
    return graph


# ----------------------------------------------------------------- #
# construction passes                                               #
# ----------------------------------------------------------------- #

def _collect_defs(graph: CallGraph, module: ModuleInfo) -> None:
    """Register module-level (and nested) functions and classes."""

    def add_function(node, scope: str, cls: Optional[str]) -> None:
        qual = f"{scope}.{node.name}" if scope else node.name
        graph.functions[qual] = FunctionInfo(
            qualname=qual, module=module.name, name=node.name,
            path=module.path, lineno=node.lineno, node=node, cls=cls,
            is_generator=any(
                isinstance(n, (ast.Yield, ast.YieldFrom))
                for n in local_nodes(node)
            ),
        )
        # Nested defs are functions in their own right.
        for child in local_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(child, qual, None)
            elif isinstance(child, ast.ClassDef):
                add_class(child, qual)

    def add_class(node: ast.ClassDef, scope: str) -> None:
        qual = f"{scope}.{node.name}" if scope else node.name
        cls = ClassInfo(
            qualname=qual, module=module.name, name=node.name,
            path=module.path, lineno=node.lineno, node=node,
        )
        graph.classes[qual] = cls
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[child.name] = f"{qual}.{child.name}"
                add_function(child, qual, qual)
            elif isinstance(child, ast.ClassDef):
                add_class(child, qual)

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[node.name] = f"{module.name}.{node.name}"
            add_function(node, module.name, None)
        elif isinstance(node, ast.ClassDef):
            module.classes[node.name] = f"{module.name}.{node.name}"
            add_class(node, module.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and node.value is not None:
                    module.globals[target.id] = node.value


def _resolve_bases(graph: CallGraph) -> None:
    """Turn raw base-class expressions into class qualnames where possible."""
    for cls in graph.classes.values():
        module = graph.modules[cls.module]
        for base in cls.node.bases:
            resolved = _resolve_symbol(graph, module, base)
            if resolved and resolved[0] == "class":
                cls.bases.append(resolved[1])
            else:
                dotted = _dotted(base, module.aliases)
                if dotted and dotted in graph.classes:
                    cls.bases.append(dotted)
                elif isinstance(base, ast.Name):
                    cls.bases.append(base.id)  # raw (builtin) name


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain through the import alias table."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or node.id not in aliases:
        return None
    parts.append(aliases[node.id])
    return ".".join(reversed(parts))


def _resolve_symbol(
    graph: CallGraph, module: ModuleInfo, node: ast.AST,
    local_defs: Optional[Dict[str, str]] = None,
) -> Optional[Tuple[str, str]]:
    """Resolve a Name/Attribute to ``("func"|"class", qualname)``."""
    if isinstance(node, ast.Name):
        if local_defs and node.id in local_defs:
            return ("func", local_defs[node.id])
        if node.id in module.functions:
            return ("func", module.functions[node.id])
        if node.id in module.classes:
            return ("class", module.classes[node.id])
        target = module.aliases.get(node.id)
        if target:
            if target in graph.functions:
                return ("func", target)
            if target in graph.classes:
                return ("class", target)
        return None
    dotted = _dotted(node, module.aliases)
    if dotted:
        if dotted in graph.functions:
            return ("func", dotted)
        if dotted in graph.classes:
            return ("class", dotted)
    return None


def _collect_edges(graph: CallGraph, module: ModuleInfo) -> None:
    """Extract call edges for every function defined in ``module``."""
    for qual, fn in list(graph.functions.items()):
        if fn.module != module.name:
            continue
        _edges_for_function(graph, module, fn)


def _edges_for_function(
    graph: CallGraph, module: ModuleInfo, fn: FunctionInfo
) -> None:
    edges = graph.edges.setdefault(fn.qualname, [])
    unresolved = graph.unresolved.setdefault(fn.qualname, [])

    # Nested defs visible from this body, by bare name.
    local_defs: Dict[str, str] = {}
    # Local variables whose constructor class is statically known.
    local_types: Dict[str, str] = {}

    nodes = list(local_nodes(fn.node))
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            local_defs[node.name] = f"{fn.qualname}.{node.name}"
    for node in nodes:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            resolved = _resolve_symbol(
                graph, module, node.value.func, local_defs
            )
            if resolved and resolved[0] == "class":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_types[target.id] = resolved[1]

    def add(callee: Optional[str], lineno: int) -> None:
        if callee is not None and callee in graph.functions:
            edges.append((callee, lineno))

    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        lineno = getattr(node, "lineno", fn.lineno)
        func = node.func
        resolved = _resolve_symbol(graph, module, func, local_defs)
        if resolved:
            kind, target = resolved
            if kind == "func":
                add(target, lineno)
            else:
                add(graph.method_on(target, "__init__"), lineno)
            continue
        if not isinstance(func, ast.Attribute):
            continue
        recv = func.value
        method = func.attr
        if (
            isinstance(recv, ast.Name)
            and recv.id in _SELF_NAMES
            and fn.cls is not None
        ):
            add(graph.method_on(fn.cls, method), lineno)
        elif isinstance(recv, ast.Name) and recv.id in local_types:
            add(graph.method_on(local_types[recv.id], method), lineno)
        elif isinstance(recv, ast.Call):
            inner = _resolve_symbol(graph, module, recv.func, local_defs)
            if inner and inner[0] == "class":
                add(graph.method_on(inner[1], method), lineno)
            else:
                unresolved.append((method, lineno))
        else:
            recv_sym = _resolve_symbol(graph, module, recv, local_defs)
            if recv_sym and recv_sym[0] == "class":
                add(graph.method_on(recv_sym[1], method), lineno)
            else:
                unresolved.append((method, lineno))
