"""Static schedule auditor: typed findings instead of golden-makespan drift.

A :class:`~repro.schedulers.schedule.Schedule` is the contract between
schedulers and the executor.  The auditor verifies any schedule object —
freshly planned, hand-built, or deserialized — against its workflow and
cluster without running anything:

* ``schedule-missing-task`` / ``schedule-unknown-task`` — the assignment
  set and the workflow's task set must match exactly;
* ``schedule-unknown-device`` / ``schedule-dead-device`` /
  ``schedule-ineligible-device`` — every task must be placed on an
  existing, alive device its affinity and memory allow;
* ``schedule-precedence`` — under the planned (estimated) finish times, no
  task may start before any predecessor finishes;
* ``schedule-negative-time`` — no assignment may start before t=0;
* ``schedule-slot-overflow`` — per device, the peak number of overlapping
  assignments must not exceed the device's slot count (the plan-time twin
  of the sanitizer's ``busy-overlap`` / ``max_concurrent_intervals``
  audit);
* ``schedule-unknown-dvfs`` — any chosen DVFS state must exist on the
  assigned device's power model.

Scheduler bugs thereby surface as typed findings with the offending task
named, instead of as unexplained drift in the golden regression grid.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.platform.cluster import Cluster
from repro.schedulers.schedule import Schedule
from repro.sim.intervals import max_overlap
from repro.staticcheck.findings import Finding, error
from repro.workflows.graph import Workflow

#: Layer tag for every finding this module emits.
LAYER = "schedule"

#: Numeric slack for time comparisons (matches Schedule.validate_against).
TOL = 1e-9


def _preview(names: List[str], limit: int = 5) -> str:
    """First few names, with an ellipsis for long lists."""
    shown = ", ".join(repr(n) for n in names[:limit])
    return shown + (", ..." if len(names) > limit else "")


def audit_schedule(
    schedule: Schedule, workflow: Workflow, cluster: Cluster
) -> List[Finding]:
    """All static findings for one schedule (empty list = sound plan)."""
    findings: List[Finding] = []
    assignments = schedule.assignments

    missing = sorted(set(workflow.tasks) - set(assignments))
    if missing:
        findings.append(
            error(
                "schedule-missing-task", LAYER, missing[0],
                f"schedule places {len(assignments)} task(s) but misses "
                f"{len(missing)}: {_preview(missing)}",
                "every workflow task must be assigned exactly once",
            )
        )
    unknown = sorted(set(assignments) - set(workflow.tasks))
    if unknown:
        findings.append(
            error(
                "schedule-unknown-task", LAYER, unknown[0],
                f"schedule places {len(unknown)} task(s) the workflow does "
                f"not have: {_preview(unknown)}",
                "the schedule was built for a different workflow",
            )
        )

    model = cluster.execution_model
    for name in sorted(set(assignments) & set(workflow.tasks)):
        a = assignments[name]
        task = workflow.tasks[name]
        try:
            device = cluster.device(a.device)
        except KeyError:
            findings.append(
                error(
                    "schedule-unknown-device", LAYER, name,
                    f"task {name!r} is placed on device {a.device!r} which "
                    f"cluster {cluster.name!r} does not have",
                    "the schedule was built for a different cluster",
                )
            )
            device = None
        if device is not None:
            if device.failed:
                findings.append(
                    error(
                        "schedule-dead-device", LAYER, name,
                        f"task {name!r} is placed on failed device "
                        f"{device.uid}",
                        "re-plan against the alive device set",
                    )
                )
            elif not model.eligible(task, device.spec):
                findings.append(
                    error(
                        "schedule-ineligible-device", LAYER, name,
                        f"task {name!r} (classes "
                        f"{[str(c) for c in task.eligible_classes()]}) is "
                        f"placed on {device.uid} of class "
                        f"{device.device_class}",
                        "the scheduler ignored the task's affinity",
                    )
                )
            elif device.spec.memory_gb < task.memory_gb:
                findings.append(
                    error(
                        "schedule-ineligible-device", LAYER, name,
                        f"task {name!r} needs {task.memory_gb:g} GB but "
                        f"{device.uid} offers {device.spec.memory_gb:g} GB",
                        "the scheduler ignored the task's memory need",
                    )
                )
            dvfs = schedule.dvfs_choice.get(name)
            if dvfs is not None:
                try:
                    device.spec.power.state(dvfs)
                except KeyError:
                    findings.append(
                        error(
                            "schedule-unknown-dvfs", LAYER, name,
                            f"task {name!r} requests DVFS state {dvfs!r} "
                            f"which {device.uid} does not offer",
                            "choose a state from the device's ladder",
                        )
                    )
        if a.start < -TOL:
            findings.append(
                error(
                    "schedule-negative-time", LAYER, name,
                    f"task {name!r} is planned to start at {a.start:.6g}",
                    "plans must not start before t=0",
                )
            )
        for pred in workflow.predecessors(name):
            pa = assignments.get(pred)
            if pa is not None and pa.finish > a.start + TOL:
                findings.append(
                    error(
                        "schedule-precedence", LAYER, name,
                        f"task {name!r} starts at {a.start:.6g} before its "
                        f"predecessor {pred!r} finishes at {pa.finish:.6g}",
                        "communication can only delay starts, never allow "
                        "earlier ones",
                    )
                )

    # Slot oversubscription: peak overlap per device vs its slot count,
    # computed from the assignments themselves (the timelines may have
    # been bypassed by whoever built the schedule).  The sweep itself is
    # the shared repro.sim.intervals.max_overlap — the same code the
    # runtime sanitizer audits executed intervals with.
    per_device: Dict[str, List[Tuple[float, float]]] = {}
    for name, a in assignments.items():
        per_device.setdefault(a.device, []).append((a.start, a.finish))
    for uid in sorted(per_device):
        try:
            slots = cluster.device(uid).spec.slots
        except KeyError:
            continue  # already reported as schedule-unknown-device
        peak = max_overlap(per_device[uid])
        if peak > slots:
            findings.append(
                error(
                    "schedule-slot-overflow", LAYER, uid,
                    f"device {uid} has {peak} overlapping planned tasks but "
                    f"only {slots} slot(s)",
                    "the scheduler double-booked the device",
                )
            )
    return findings
