"""Determinism lint: an AST pass over the simulator's own source.

The campaign runner's contract — ``--jobs N`` == ``--jobs 1`` == warm
cache, bit for bit — only holds while no code path consults ambient
nondeterminism.  This pass bans the constructs that have historically
broken that contract in workflow systems:

* ``wall-clock`` — ``time.time()`` / ``time.time_ns()`` /
  ``time.monotonic()`` / ``datetime.now()`` / ``utcnow()`` / ``today()``:
  virtual time must come from the simulator, never the host clock.
  (``time.perf_counter`` is allowed: measuring *our own* overhead is not
  simulation state.  Observability code wanting a wall stamp must go
  through the one sanctioned, allowlisted shim
  :func:`repro.observe.clock.clock` — profiling only.)
* ``global-random`` — module-level ``random.*`` and ``np.random.*`` draw
  calls: all randomness must flow through a threaded
  :class:`numpy.random.Generator` (see :mod:`repro.sim.rng`), or two runs
  of the same seed diverge as soon as call order changes.
* ``unseeded-rng`` — ``np.random.default_rng()`` with no seed (ambient
  entropy) or with a constant literal seed (a fresh, caller-invisible
  stream where the caller's seed should flow).
* ``ambient-entropy`` — ``os.urandom``, ``uuid.uuid4``/``uuid.uuid1``,
  ``secrets.*``: host entropy (or host identity) reaching simulation
  state makes two identical cells diverge by construction.
* ``hash-ordering`` — the builtin ``hash()`` used as (or inside) a sort
  key: string hashes vary per process under ``PYTHONHASHSEED``, so the
  resulting order is not reproducible across workers.
* ``fs-ordering`` — iterating ``os.listdir``/``os.scandir``/
  ``glob.glob``/``glob.iglob`` results directly: the OS returns
  directory entries in arbitrary order.  Wrap in ``sorted(...)``
  (order-insensitive reductions like ``sum``/``max``/``set`` are
  exempt).
* ``set-iteration`` — ``for x in {...}`` / ``for x in set(...)``: set
  order depends on ``PYTHONHASHSEED`` for strings, so any decision loop
  over a bare set is nondeterministic across processes.  Iterate
  ``sorted(...)`` instead.
* ``dict-mutation-in-loop`` — adding/removing keys of a dict while
  iterating it (``RuntimeError`` at best, order-dependent behaviour at
  worst).  Iterate ``list(d)`` when mutation is intended.

Deliberate exceptions are declared in ``lint_allowlist.txt`` next to this
module: one ``<path-substring>::<check-id>`` entry per line — optionally
``<path-substring>::<check-id>::<site-substring>`` to suppress a single
sink site (the third field must appear in the finding's location or
message, e.g. a function qualname or the sink's dotted name) — with a
comment saying why.  Entries that no longer suppress anything are
**stale** and fail the lint (``--prune`` rewrites the file without
them), so suppressions cannot silently rot.

``--deep`` chains the whole-program analyses on top of this file-local
pass: the interprocedural determinism taint flow
(:mod:`repro.staticcheck.flow`), the pickle-boundary checker
(:mod:`repro.staticcheck.pickle_safety`) and the concurrency/lifecycle
hazard checks (:mod:`repro.staticcheck.concurrency`).  Deep findings
can be burnt down through the committed baseline
(``deep_baseline.json``): baselined findings demote to warnings, new
ones fail, and baseline entries that stop matching fail as stale.

Run stand-alone with::

    python -m repro.staticcheck.lint [paths...] [--deep]
        [--json OUT] [--sarif OUT] [--prune]

which exits nonzero when any error-severity finding survives the
allowlist/baseline, or when either file has stale entries.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.findings import (
    Finding,
    Severity,
    findings_to_json,
    findings_to_sarif,
    summary_table,
    write_json_file,
)

#: Layer tag for every finding this module emits.
LAYER = "lint"

#: Dotted call paths that read the host clock.  ``time.perf_counter`` is
#: deliberately absent (measuring our own overhead is not simulation
#: state); the one sanctioned *wall* clock is ``repro.observe.clock``,
#: whose module carries the single allowlist entry.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Dotted call paths that draw host entropy or host identity.
AMBIENT_ENTROPY_CALLS = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.choice",
}

#: Dotted call paths returning directory entries in OS order.
FS_LISTING_CALLS = {
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
}

#: Builtins whose reduction over an iterable is order-insensitive, so
#: feeding them an unsorted listing directly is harmless.
ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "set", "frozenset", "sum", "len", "max", "min", "any", "all",
}

#: Builtins that take a ``key=`` ordering callback.
SORTING_CALLS = {"sorted", "min", "max"}

#: numpy.random attributes that construct generators (deterministic given
#: their arguments) rather than drawing from the hidden global stream.
RNG_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "SeedSequence",
}

#: stdlib ``random`` attributes that are classes, not global-stream draws.
STDLIB_RANDOM_OK = {"Random"}

#: Dict methods that add or remove keys.
DICT_MUTATORS = {"pop", "popitem", "clear", "update", "setdefault"}

#: Default allowlist shipped with the package.
DEFAULT_ALLOWLIST = os.path.join(os.path.dirname(__file__), "lint_allowlist.txt")

#: Default deep-analysis baseline shipped with the package.
DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "deep_baseline.json")

#: Check ids the file-local (shallow) pass can emit.
LINT_CHECK_IDS = (
    "wall-clock",
    "global-random",
    "unseeded-rng",
    "ambient-entropy",
    "hash-ordering",
    "fs-ordering",
    "set-iteration",
    "dict-mutation-in-loop",
)

#: Check ids the ``--deep`` whole-program pass adds.
DEEP_CHECK_IDS = (
    "taint-flow",
    "pickle-lambda",
    "pickle-local-def",
    "pickle-open-handle",
    "pickle-module-state",
    "pickle-unpicklable-target",
    "worker-global-mutation",
    "thread-shared-mutation",
    "generator-pool-cleanup",
    "unclassified-raise",
)

_HINTS = {
    "wall-clock": "use the simulator's virtual time (executor.now / sim.now)",
    "global-random": "thread a numpy Generator (see sim/rng.py) instead",
    "unseeded-rng": "accept rng= or seed= from the caller and pass it down",
    "ambient-entropy": "derive ids/draws from the campaign seed instead",
    "hash-ordering": "sort by the value itself, not its per-process hash",
    "fs-ordering": "iterate sorted(os.listdir(...)) for a stable order",
    "set-iteration": "iterate sorted(...) for a deterministic order",
    "dict-mutation-in-loop": "iterate list(d) when you must mutate d",
}

#: Allowlist entry: (path-substring, check-id, optional site-substring).
AllowEntry = Tuple[str, str, Optional[str]]


def _normalize_allow(allow: Sequence) -> List[AllowEntry]:
    """Accept legacy 2-tuples and sited 3-tuples uniformly."""
    out: List[AllowEntry] = []
    for entry in allow:
        if len(entry) == 2:
            out.append((entry[0], entry[1], None))
        else:
            out.append((entry[0], entry[1], entry[2]))
    return out


def allow_match(
    allow: Sequence,
    path: str,
    check: str,
    location: str = "",
    message: str = "",
    used: Optional[Set[AllowEntry]] = None,
) -> bool:
    """Whether an allowlist entry suppresses this finding.

    A 2-field entry matches on (path substring, check id); a 3-field
    entry additionally requires its site substring to appear in the
    finding's location or message — sink-site granularity.  Matched
    entries are recorded in ``used`` for stale detection.
    """
    hit = False
    for entry in _normalize_allow(allow):
        part, c, site = entry
        if c != check or part not in path:
            continue
        if site is not None and site not in location and site not in message:
            continue
        hit = True
        if used is not None:
            used.add(entry)
    return hit


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted import paths they are bound to."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import numpy.random`` binds the root name only.
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue  # relative imports never reach the banned modules
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _dotted_path(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to its imported dotted path, if any."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or node.id not in aliases:
        return None
    parts.append(aliases[node.id])
    return ".".join(reversed(parts))


def sink_for_call(
    node: ast.Call, aliases: Dict[str, str]
) -> Optional[Tuple[str, str]]:
    """Classify one call as a determinism sink: ``(check-id, message)``.

    The single source of truth for call-shaped sinks, shared by the
    file-local pass here and the interprocedural taint flow
    (:mod:`repro.staticcheck.flow`).
    """
    dotted = _dotted_path(node.func, aliases)
    if dotted is None:
        return None
    if dotted in WALL_CLOCK_CALLS:
        return (
            "wall-clock",
            f"{dotted}() reads the host clock inside simulation code",
        )
    if dotted in AMBIENT_ENTROPY_CALLS:
        return (
            "ambient-entropy",
            f"{dotted}() draws host entropy; two identical cells diverge",
        )
    if dotted == "numpy.random.default_rng":
        if not node.args and not node.keywords:
            return (
                "unseeded-rng",
                "default_rng() with no seed draws ambient entropy; "
                "runs become unrepeatable",
            )
        if (
            len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, int)
        ):
            return (
                "unseeded-rng",
                f"default_rng({node.args[0].value}) hard-codes a "
                f"constant seed where the caller's seed should flow",
            )
        return None
    if dotted.startswith("numpy.random."):
        tail = dotted.rsplit(".", 1)[1]
        if tail not in RNG_CONSTRUCTORS:
            return (
                "global-random",
                f"{dotted}() draws from numpy's hidden global stream",
            )
        return None
    if dotted.startswith("random."):
        tail = dotted.rsplit(".", 1)[1]
        if tail not in STDLIB_RANDOM_OK:
            return (
                "global-random",
                f"{dotted}() draws from the stdlib global stream",
            )
    return None


def _is_bare_set(node: ast.AST) -> bool:
    """Whether an expression is a set literal/comprehension/constructor."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_fs_listing(node: ast.AST, aliases: Dict[str, str]) -> bool:
    """Whether an expression is a direct unsorted-directory-listing call."""
    if not isinstance(node, ast.Call):
        return False
    return _dotted_path(node.func, aliases) in FS_LISTING_CALLS


def _uses_hash(node: ast.AST) -> bool:
    """Whether an expression is (or contains a call to) the builtin hash."""
    if isinstance(node, ast.Name) and node.id == "hash":
        return True
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "hash"
        ):
            return True
    return False


def _dict_iter_source(node: ast.AST) -> Optional[ast.AST]:
    """The mapping expression a for-loop iterates directly, if any.

    Matches ``for k in d``, ``for k in d.keys()/values()/items()`` where
    ``d`` is a name or attribute chain; wrapped iterations
    (``list(d)``, ``sorted(d)``) are the safe idiom and return None.
    """
    if isinstance(node, (ast.Name, ast.Attribute)):
        return node
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and isinstance(node.func.value, (ast.Name, ast.Attribute))
    ):
        return node.func.value
    return None


def _dict_mutations(loop: ast.For, source: ast.AST) -> List[ast.AST]:
    """Statements in the loop body that resize the iterated mapping."""
    key = ast.dump(source)
    hits: List[ast.AST] = []
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and ast.dump(target.value) == key
                    ):
                        hits.append(node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and ast.dump(target.value) == key
                    ):
                        hits.append(node)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DICT_MUTATORS
                and ast.dump(node.func.value) == key
            ):
                hits.append(node)
    return hits


def _order_insensitive_iters(tree: ast.AST) -> Set[int]:
    """ids of comprehension/listing nodes consumed order-insensitively.

    ``sum(1 for f in os.listdir(d))`` or ``max(os.listdir(d))`` never
    depend on entry order; flagging them would train people to ignore
    the check.
    """
    exempt: Set[int] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ORDER_INSENSITIVE_CONSUMERS
            and node.args
        ):
            continue
        arg = node.args[0]
        exempt.add(id(arg))
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in arg.generators:
                exempt.add(id(gen.iter))
    return exempt


def lint_source(
    source: str,
    path: str = "<string>",
    allow: Sequence = (),
    used: Optional[Set[AllowEntry]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns surviving findings."""
    tree = ast.parse(source, filename=path)
    aliases = _collect_aliases(tree)
    exempt_iters = _order_insensitive_iters(tree)
    findings: List[Finding] = []

    def flag(check: str, node: ast.AST, message: str) -> None:
        location = f"{path}:{getattr(node, 'lineno', 0)}"
        if allow_match(allow, path, check, location, message, used):
            return
        findings.append(
            Finding(check, Severity.ERROR, LAYER, location, message,
                    _HINTS[check])
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            sink = sink_for_call(node, aliases)
            if sink is not None:
                flag(sink[0], node, sink[1])
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in SORTING_CALLS
            ):
                for kw in node.keywords:
                    if kw.arg == "key" and _uses_hash(kw.value):
                        flag(
                            "hash-ordering", node,
                            f"{node.func.id}() orders by builtin hash(); "
                            f"string hashes vary per process under "
                            f"PYTHONHASHSEED",
                        )
        if isinstance(node, ast.For):
            if _is_bare_set(node.iter):
                flag(
                    "set-iteration", node,
                    "for-loop iterates a bare set; order depends on "
                    "PYTHONHASHSEED",
                )
            if _is_fs_listing(node.iter, aliases):
                flag(
                    "fs-ordering", node,
                    "for-loop iterates a directory listing in OS order",
                )
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_bare_set(gen.iter):
                    flag(
                        "set-iteration", node,
                        "comprehension iterates a bare set; order depends "
                        "on PYTHONHASHSEED",
                    )
                if (
                    _is_fs_listing(gen.iter, aliases)
                    and id(gen.iter) not in exempt_iters
                ):
                    flag(
                        "fs-ordering", node,
                        "comprehension iterates a directory listing in "
                        "OS order",
                    )
        if isinstance(node, ast.For):
            source_expr = _dict_iter_source(node.iter)
            if source_expr is not None:
                for hit in _dict_mutations(node, source_expr):
                    flag(
                        "dict-mutation-in-loop", hit,
                        "container is resized while a for-loop iterates it",
                    )
    return findings


# --------------------------------------------------------------------- #
# file/tree driving                                                     #
# --------------------------------------------------------------------- #

def load_allowlist(path: str) -> List[AllowEntry]:
    """Parse ``<path-substring>::<check-id>[::<site-substring>]`` entries."""
    entries: List[AllowEntry] = []
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = [f.strip() for f in line.split("::")]
            if len(fields) not in (2, 3) or not all(fields):
                raise ValueError(
                    f"bad allowlist entry {raw.strip()!r} in {path}; "
                    f"expected '<path-substring>::<check-id>"
                    f"[::<site-substring>]'"
                )
            part, check = fields[0], fields[1]
            site = fields[2] if len(fields) == 3 else None
            entries.append((part, check, site))
    return entries


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                out.extend(
                    os.path.join(root, f) for f in files if f.endswith(".py")
                )
        else:
            out.append(path)
    return sorted(set(out))


def lint_paths(
    paths: Iterable[str],
    allowlist_file: Optional[str] = DEFAULT_ALLOWLIST,
    used: Optional[Set[AllowEntry]] = None,
) -> List[Finding]:
    """Lint every .py file under ``paths``; returns surviving findings."""
    allow: List[AllowEntry] = []
    if allowlist_file and os.path.exists(allowlist_file):
        allow = load_allowlist(allowlist_file)
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as fh:
            source = fh.read()
        rel = os.path.relpath(filename).replace(os.sep, "/")
        findings.extend(lint_source(source, path=rel, allow=allow, used=used))
    return findings


def stale_entries(
    allow: Sequence,
    used: Set[AllowEntry],
    files: Sequence[str],
    checks_in_scope: Iterable[str],
) -> List[AllowEntry]:
    """Allowlist entries that suppressed nothing this run.

    An entry is judged only when the run could have exercised it: its
    check id must belong to a pass that actually ran, and its path
    substring must match at least one linted file (entries for files
    outside the lint scope are neither live nor stale).
    """
    scope = set(checks_in_scope)
    stale: List[AllowEntry] = []
    for entry in _normalize_allow(allow):
        if entry in used or entry[1] not in scope:
            continue
        if not any(entry[0] in path for path in files):
            continue
        stale.append(entry)
    return stale


def prune_allowlist(path: str, stale: Sequence[AllowEntry]) -> int:
    """Rewrite the allowlist file without the given stale entries."""
    dead = set(stale)
    kept: List[str] = []
    removed = 0
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if line:
                fields = [f.strip() for f in line.split("::")]
                entry = (
                    fields[0], fields[1],
                    fields[2] if len(fields) == 3 else None,
                )
                if entry in dead:
                    removed += 1
                    continue
            kept.append(raw)
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(kept)
    return removed


# --------------------------------------------------------------------- #
# deep-pass baseline (burn-down file)                                   #
# --------------------------------------------------------------------- #

def load_baseline(path: str) -> List[Dict[str, str]]:
    """Parse the committed deep-analysis baseline, if present.

    Schema: ``{"schema": "repro.staticcheck-baseline/v1", "entries":
    [{"check": ..., "path": ..., "contains": ..., "reason": ...}]}``.
    ``contains`` is matched against the finding's message, ``path``
    against its location — line numbers are deliberately absent so the
    baseline survives unrelated edits.
    """
    if not path or not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "repro.staticcheck-baseline/v1":
        raise ValueError(
            f"{path}: unknown baseline schema {doc.get('schema')!r}"
        )
    entries = doc.get("entries", [])
    for entry in entries:
        for field in ("check", "path", "contains"):
            if field not in entry:
                raise ValueError(f"{path}: baseline entry missing {field!r}")
    return entries


def apply_baseline(
    findings: List[Finding], baseline: List[Dict[str, str]]
) -> Tuple[List[Finding], List[Dict[str, str]]]:
    """Demote baselined findings to warnings; return (findings, stale).

    A baseline entry matches when its check id equals the finding's,
    its path is a substring of the finding's location and its
    ``contains`` text appears in the message.  Entries that match no
    finding are returned as stale — a burnt-down violation must leave
    the baseline in the same commit.
    """
    matched: Set[int] = set()
    out: List[Finding] = []
    for finding in findings:
        demoted = finding
        for i, entry in enumerate(baseline):
            if (
                entry["check"] == finding.check
                and entry["path"] in finding.location
                and entry["contains"] in finding.message
            ):
                matched.add(i)
                if finding.severity == Severity.ERROR:
                    demoted = dataclasses.replace(
                        finding, severity=Severity.WARNING,
                        message=finding.message + " [baselined]",
                    )
                break
        out.append(demoted)
    stale = [e for i, e in enumerate(baseline) if i not in matched]
    return out, stale


# --------------------------------------------------------------------- #
# CLI                                                                   #
# --------------------------------------------------------------------- #

def _deep_findings(
    paths: Sequence[str],
    allow: Sequence[AllowEntry],
    used: Set[AllowEntry],
) -> List[Finding]:
    """Run the whole-program analyses over ``paths``."""
    # Imported lazily: these modules import this one for the sink
    # catalog and allowlist matcher.
    from repro.staticcheck.callgraph import build_callgraph
    from repro.staticcheck.concurrency import check_concurrency
    from repro.staticcheck.flow import check_flow
    from repro.staticcheck.pickle_safety import check_pickle_safety

    graph = build_callgraph(paths)
    findings: List[Finding] = []
    findings.extend(check_flow(graph, allow=allow, used=used))
    findings.extend(check_pickle_safety(graph, allow=allow, used=used))
    findings.extend(check_concurrency(graph, allow=allow, used=used))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: lint the given paths (default: the installed repro package)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism lint over simulator source",
    )
    default_target = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("paths", nargs="*", default=[default_target])
    parser.add_argument(
        "--allowlist", default=DEFAULT_ALLOWLIST,
        help="allowlist file (<path-substring>::<check-id>[::<site>] per line)",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="add the whole-program analyses: call-graph determinism "
             "taint, pickle-boundary safety, concurrency/lifecycle hazards",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help="deep-pass burn-down baseline JSON (matches demote to warnings)",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None,
        help="write the findings report as JSON here",
    )
    parser.add_argument(
        "--sarif", dest="sarif_out", default=None,
        help="write the findings report as SARIF 2.1.0 here",
    )
    parser.add_argument(
        "--prune", action="store_true",
        help="rewrite the allowlist without stale entries instead of failing",
    )
    args = parser.parse_args(argv)

    allow: List[AllowEntry] = []
    if args.allowlist and os.path.exists(args.allowlist):
        allow = load_allowlist(args.allowlist)
    used: Set[AllowEntry] = set()
    files = [
        os.path.relpath(f).replace(os.sep, "/")
        for f in iter_python_files(args.paths)
    ]

    findings = lint_paths(args.paths, allowlist_file=None, used=used)
    # lint_paths loads its own allowlist when given a file; here the
    # entries are shared with the deep pass, so match them in one place.
    findings = [
        f for f in findings
        if not allow_match(
            allow, f.location.rsplit(":", 1)[0], f.check,
            f.location, f.message, used,
        )
    ]

    scope: List[str] = list(LINT_CHECK_IDS)
    stale_baseline: List[Dict[str, str]] = []
    if args.deep:
        scope += list(DEEP_CHECK_IDS)
        findings.extend(_deep_findings(args.paths, allow, used))
        baseline = load_baseline(args.baseline)
        findings, stale_baseline = apply_baseline(findings, baseline)

    for finding in findings:
        print(finding)

    stale = stale_entries(allow, used, files, scope)
    if stale and args.prune and args.allowlist:
        removed = prune_allowlist(args.allowlist, stale)
        print(f"pruned {removed} stale allowlist entr(y/ies) "
              f"from {args.allowlist}")
        stale = []
    for part, check, site in stale:
        entry = f"{part}::{check}" + (f"::{site}" if site else "")
        print(
            f"stale allowlist entry {entry!r}: suppresses nothing — "
            f"remove it or run with --prune"
        )
    for entry in stale_baseline:
        print(
            f"stale baseline entry {entry['check']}::{entry['path']}: "
            f"matches no finding — burnt-down violations must leave "
            f"{os.path.basename(args.baseline)}"
        )

    if args.deep or args.json_out or args.sarif_out:
        print(summary_table(findings, checks=scope))
    if args.json_out:
        write_json_file(args.json_out, findings_to_json(findings))
        print(f"findings -> {args.json_out}")
    if args.sarif_out:
        write_json_file(args.sarif_out, findings_to_sarif(findings))
        print(f"sarif    -> {args.sarif_out}")

    errors = [f for f in findings if f.severity == Severity.ERROR]
    label = "deep lint" if args.deep else "determinism lint"
    if errors or findings:
        print(f"{label}: {len(errors)} error(s) in {len(findings)} finding(s)")
    else:
        print(f"{label}: clean")
    return 1 if errors or stale or stale_baseline else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
