"""Determinism lint: an AST pass over the simulator's own source.

The campaign runner's contract — ``--jobs N`` == ``--jobs 1`` == warm
cache, bit for bit — only holds while no code path consults ambient
nondeterminism.  This pass bans the constructs that have historically
broken that contract in workflow systems:

* ``wall-clock`` — ``time.time()`` / ``time.time_ns()`` /
  ``time.monotonic()`` / ``datetime.now()`` / ``utcnow()`` / ``today()``:
  virtual time must come from the simulator, never the host clock.
  (``time.perf_counter`` is allowed: measuring *our own* overhead is not
  simulation state.  Observability code wanting a wall stamp must go
  through the one sanctioned, allowlisted shim
  :func:`repro.observe.clock.clock` — profiling only.)
* ``global-random`` — module-level ``random.*`` and ``np.random.*`` draw
  calls: all randomness must flow through a threaded
  :class:`numpy.random.Generator` (see :mod:`repro.sim.rng`), or two runs
  of the same seed diverge as soon as call order changes.
* ``unseeded-rng`` — ``np.random.default_rng()`` with no seed (ambient
  entropy) or with a constant literal seed (a fresh, caller-invisible
  stream where the caller's seed should flow).
* ``set-iteration`` — ``for x in {...}`` / ``for x in set(...)``: set
  order depends on ``PYTHONHASHSEED`` for strings, so any decision loop
  over a bare set is nondeterministic across processes.  Iterate
  ``sorted(...)`` instead.
* ``dict-mutation-in-loop`` — adding/removing keys of a dict while
  iterating it (``RuntimeError`` at best, order-dependent behaviour at
  worst).  Iterate ``list(d)`` when mutation is intended.

Deliberate exceptions are declared in ``lint_allowlist.txt`` next to this
module: one ``<path-substring>::<check-id>`` entry per line, with a
comment saying why.  Run stand-alone with::

    python -m repro.staticcheck.lint [paths...]

which exits nonzero when any finding survives the allowlist.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.staticcheck.findings import Finding, Severity

#: Layer tag for every finding this module emits.
LAYER = "lint"

#: Dotted call paths that read the host clock.  ``time.perf_counter`` is
#: deliberately absent (measuring our own overhead is not simulation
#: state); the one sanctioned *wall* clock is ``repro.observe.clock``,
#: whose module carries the single allowlist entry.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random attributes that construct generators (deterministic given
#: their arguments) rather than drawing from the hidden global stream.
RNG_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "SeedSequence",
}

#: stdlib ``random`` attributes that are classes, not global-stream draws.
STDLIB_RANDOM_OK = {"Random"}

#: Dict methods that add or remove keys.
DICT_MUTATORS = {"pop", "popitem", "clear", "update", "setdefault"}

#: Default allowlist shipped with the package.
DEFAULT_ALLOWLIST = os.path.join(os.path.dirname(__file__), "lint_allowlist.txt")

_HINTS = {
    "wall-clock": "use the simulator's virtual time (executor.now / sim.now)",
    "global-random": "thread a numpy Generator (see sim/rng.py) instead",
    "unseeded-rng": "accept rng= or seed= from the caller and pass it down",
    "set-iteration": "iterate sorted(...) for a deterministic order",
    "dict-mutation-in-loop": "iterate list(d) when you must mutate d",
}


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted import paths they are bound to."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import numpy.random`` binds the root name only.
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue  # relative imports never reach the banned modules
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _dotted_path(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to its imported dotted path, if any."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or node.id not in aliases:
        return None
    parts.append(aliases[node.id])
    return ".".join(reversed(parts))


def _is_bare_set(node: ast.AST) -> bool:
    """Whether an expression is a set literal/comprehension/constructor."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _dict_iter_source(node: ast.AST) -> Optional[ast.AST]:
    """The mapping expression a for-loop iterates directly, if any.

    Matches ``for k in d``, ``for k in d.keys()/values()/items()`` where
    ``d`` is a name or attribute chain; wrapped iterations
    (``list(d)``, ``sorted(d)``) are the safe idiom and return None.
    """
    if isinstance(node, (ast.Name, ast.Attribute)):
        return node
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and isinstance(node.func.value, (ast.Name, ast.Attribute))
    ):
        return node.func.value
    return None


def _dict_mutations(loop: ast.For, source: ast.AST) -> List[ast.AST]:
    """Statements in the loop body that resize the iterated mapping."""
    key = ast.dump(source)
    hits: List[ast.AST] = []
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and ast.dump(target.value) == key
                    ):
                        hits.append(node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and ast.dump(target.value) == key
                    ):
                        hits.append(node)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DICT_MUTATORS
                and ast.dump(node.func.value) == key
            ):
                hits.append(node)
    return hits


def lint_source(
    source: str,
    path: str = "<string>",
    allow: Sequence[Tuple[str, str]] = (),
) -> List[Finding]:
    """Lint one module's source text; returns surviving findings."""
    tree = ast.parse(source, filename=path)
    aliases = _collect_aliases(tree)
    findings: List[Finding] = []

    def flag(check: str, node: ast.AST, message: str) -> None:
        if any(part in path for part, c in allow if c == check):
            return
        findings.append(
            Finding(
                check,
                Severity.ERROR,
                LAYER,
                f"{path}:{getattr(node, 'lineno', 0)}",
                message,
                _HINTS[check],
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = _dotted_path(node.func, aliases)
            if dotted is None:
                pass
            elif dotted in WALL_CLOCK_CALLS:
                flag(
                    "wall-clock", node,
                    f"{dotted}() reads the host clock inside simulation code",
                )
            elif dotted == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    flag(
                        "unseeded-rng", node,
                        "default_rng() with no seed draws ambient entropy; "
                        "runs become unrepeatable",
                    )
                elif (
                    len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, int)
                ):
                    flag(
                        "unseeded-rng", node,
                        f"default_rng({node.args[0].value}) hard-codes a "
                        f"constant seed where the caller's seed should flow",
                    )
            elif dotted.startswith("numpy.random."):
                tail = dotted.rsplit(".", 1)[1]
                if tail not in RNG_CONSTRUCTORS:
                    flag(
                        "global-random", node,
                        f"{dotted}() draws from numpy's hidden global stream",
                    )
            elif dotted.startswith("random."):
                tail = dotted.rsplit(".", 1)[1]
                if tail not in STDLIB_RANDOM_OK:
                    flag(
                        "global-random", node,
                        f"{dotted}() draws from the stdlib global stream",
                    )
        if isinstance(node, ast.For) and _is_bare_set(node.iter):
            flag(
                "set-iteration", node,
                "for-loop iterates a bare set; order depends on "
                "PYTHONHASHSEED",
            )
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_bare_set(gen.iter):
                    flag(
                        "set-iteration", node,
                        "comprehension iterates a bare set; order depends "
                        "on PYTHONHASHSEED",
                    )
        if isinstance(node, ast.For):
            source_expr = _dict_iter_source(node.iter)
            if source_expr is not None:
                for hit in _dict_mutations(node, source_expr):
                    flag(
                        "dict-mutation-in-loop", hit,
                        "container is resized while a for-loop iterates it",
                    )
    return findings


# --------------------------------------------------------------------- #
# file/tree driving                                                     #
# --------------------------------------------------------------------- #

def load_allowlist(path: str) -> List[Tuple[str, str]]:
    """Parse ``<path-substring>::<check-id>`` entries (# comments)."""
    entries: List[Tuple[str, str]] = []
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            part, sep, check = line.partition("::")
            if not sep or not part or not check:
                raise ValueError(
                    f"bad allowlist entry {raw.strip()!r} in {path}; "
                    f"expected '<path-substring>::<check-id>'"
                )
            entries.append((part.strip(), check.strip()))
    return entries


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                out.extend(
                    os.path.join(root, f) for f in files if f.endswith(".py")
                )
        else:
            out.append(path)
    return sorted(set(out))


def lint_paths(
    paths: Iterable[str],
    allowlist_file: Optional[str] = DEFAULT_ALLOWLIST,
) -> List[Finding]:
    """Lint every .py file under ``paths``; returns surviving findings."""
    allow: List[Tuple[str, str]] = []
    if allowlist_file and os.path.exists(allowlist_file):
        allow = load_allowlist(allowlist_file)
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as fh:
            source = fh.read()
        rel = os.path.relpath(filename).replace(os.sep, "/")
        findings.extend(lint_source(source, path=rel, allow=allow))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: lint the given paths (default: the installed repro package)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism lint over simulator source",
    )
    default_target = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("paths", nargs="*", default=[default_target])
    parser.add_argument(
        "--allowlist", default=DEFAULT_ALLOWLIST,
        help="allowlist file (<path-substring>::<check-id> per line)",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths, allowlist_file=args.allowlist)
    for finding in findings:
        print(finding)
    print(
        f"determinism lint: {len(findings)} finding(s)"
        if findings
        else "determinism lint: clean"
    )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
