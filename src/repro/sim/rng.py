"""Named, reproducible random-number substreams.

Experiments in the benchmark harness must be reproducible run-to-run and
independent across concerns: the stream that draws task runtimes must not be
perturbed by how many faults were injected, or the comparison between two
schedulers silently de-synchronizes.  :class:`RngStreams` derives one
independent :class:`numpy.random.Generator` per *name* from a single master
seed using ``numpy.random.SeedSequence`` spawning, so

* the same (seed, name) pair always yields the same stream, and
* distinct names yield statistically independent streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np


class RngStreams:
    """A factory of independent named random generators.

    Example::

        rng = RngStreams(seed=42)
        runtimes = rng.stream("task-runtimes")
        faults = rng.stream("fault-arrivals")
        runtimes.normal(10, 2)     # unaffected by draws from `faults`
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed all substreams derive from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so sequential draws continue the stream rather than restarting it.
        """
        if name not in self._streams:
            # Hash the name into entropy so that the mapping name->stream is
            # stable regardless of creation order.
            name_entropy = [ord(c) for c in name]
            seq = np.random.SeedSequence([self._seed] + name_entropy)
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *restarted* generator for ``name`` (position reset)."""
        self._streams.pop(name, None)
        return self.stream(name)

    def names(self) -> List[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)

    def spawn(self, index: int) -> "RngStreams":
        """Derive an independent child RngStreams (e.g. one per repetition)."""
        child_seed = int(
            np.random.SeedSequence([self._seed, int(index)]).generate_state(1)[0]
        )
        return RngStreams(child_seed)


def choice_weighted(
    rng: np.random.Generator, items: Iterable, weights: Iterable[float]
):
    """Draw one item with the given (not necessarily normalized) weights."""
    items = list(items)
    w = np.asarray(list(weights), dtype=float)
    if len(items) != len(w):
        raise ValueError("items and weights must have equal length")
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return items[int(rng.choice(len(items), p=w / total))]
