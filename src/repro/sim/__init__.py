"""Discrete-event simulation kernel.

This package provides the minimal, deterministic discrete-event machinery on
which the heterogeneous platform model and the workflow orchestrator run:

* :class:`~repro.sim.engine.Simulator` — virtual clock + event queue.
* :class:`~repro.sim.engine.EventHandle` — cancellable scheduled events.
* :class:`~repro.sim.rng.RngStreams` — named, reproducible random substreams.
* :class:`~repro.sim.trace.TraceRecorder` — structured execution traces used
  by the analysis layer (Gantt charts, utilization, transfer accounting).

The kernel is callback-based rather than coroutine-based: every scheduled
event is a plain callable invoked at its due time.  This keeps the engine
small, easy to test exhaustively, and free of hidden state — determinism is
guaranteed by a (time, priority, sequence-number) total order on events.
"""

from repro.sim.engine import EventHandle, Simulator, SimulationError
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder, TraceRecord

__all__ = [
    "EventHandle",
    "Simulator",
    "SimulationError",
    "RngStreams",
    "TraceRecorder",
    "TraceRecord",
]
