"""Sorted interval index shared by scheduler timelines and runtime audits.

Every layer that reasons about per-device busy time needs the same three
primitives over a set of ``[start, end]`` intervals:

* *earliest fit* — the first start ``>= ready`` where a duration fits,
  considering the gaps between existing intervals (HEFT-family insertion);
* *overlap insert/remove* — maintain a set of non-overlapping intervals
  with loud failure on double-booking;
* *peak overlap* — the maximum number of simultaneously open intervals
  (the slot-oversubscription audit of both the runtime sanitizer and the
  static schedule auditor).

:class:`IntervalIndex` keeps the intervals sorted by start and answers all
queries with ``bisect`` — the linear sweeps it replaces were the simulator
kernel's per-placement hot path.  The semantics are *exactly* those of the
replaced sweeps (including float-exact touching endpoints and the 1e-12
overlap tolerance); ``tests/test_interval_index.py`` property-tests that
equivalence against retained linear reference implementations.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence, Tuple

#: Two intervals may share an endpoint; anything deeper than this is overlap.
OVERLAP_TOL = 1e-12


class IntervalError(ValueError):
    """Raised when an insert would double-book an interval."""


class IntervalIndex:
    """Non-overlapping ``(start, end, tag)`` intervals sorted by start.

    The index models a *serial* resource (one occupant at a time); peak
    overlap over an arbitrary multiset of intervals — the multi-slot audit
    case — goes through the free function :func:`max_overlap` instead.
    """

    __slots__ = ("_starts", "_intervals")

    def __init__(self) -> None:
        self._starts: List[float] = []
        self._intervals: List[Tuple[float, float, object]] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self):
        return iter(self._intervals)

    @property
    def intervals(self) -> List[Tuple[float, float, object]]:
        """(start, end, tag) triples in start order (a copy)."""
        return list(self._intervals)

    def last_end(self) -> float:
        """End of the last interval in start order (0.0 when empty)."""
        return self._intervals[-1][1] if self._intervals else 0.0

    # ---------------------------------------------------------------- #
    # mutation                                                         #
    # ---------------------------------------------------------------- #

    def add(self, start: float, end: float, tag: object = None) -> None:
        """Insert ``[start, end]``; :class:`IntervalError` on overlap.

        Touching endpoints (``prev.end == start`` exactly, or within
        :data:`OVERLAP_TOL`) are allowed — a serial resource can start one
        occupant the instant the previous one ends.
        """
        if end < start:
            raise IntervalError(f"interval reversed: [{start}, {end}]")
        idx = bisect.bisect_left(self._starts, start)
        if idx > 0:
            _ps, pe, pt = self._intervals[idx - 1]
            if pe > start + OVERLAP_TOL:
                raise IntervalError(
                    f"interval [{start:.6g}, {end:.6g}] overlaps "
                    f"[{_ps:.6g}, {pe:.6g}] (tag {pt!r})"
                )
        if idx < len(self._intervals):
            ns, _ne, nt = self._intervals[idx]
            if end > ns + OVERLAP_TOL:
                raise IntervalError(
                    f"interval [{start:.6g}, {end:.6g}] overlaps "
                    f"[{ns:.6g}, {_ne:.6g}] (tag {nt!r})"
                )
        self._starts.insert(idx, start)
        self._intervals.insert(idx, (start, end, tag))

    def remove(self, start: float, end: float, tag: object = None) -> None:
        """Remove the exact ``(start, end, tag)`` entry; KeyError if absent."""
        idx = bisect.bisect_left(self._starts, start)
        while idx < len(self._intervals) and self._intervals[idx][0] == start:
            s, e, t = self._intervals[idx]
            if e == end and t == tag:
                del self._starts[idx]
                del self._intervals[idx]
                return
            idx += 1
        raise KeyError(f"no interval ({start}, {end}, {tag!r}) in index")

    # ---------------------------------------------------------------- #
    # queries                                                          #
    # ---------------------------------------------------------------- #

    def earliest_fit(
        self, ready: float, duration: float, allow_insertion: bool = True
    ) -> float:
        """Earliest start ``>= ready`` where ``duration`` fits.

        With insertion enabled the search considers gaps between existing
        intervals; otherwise only the tail.  Bisect skips every gap that
        provably cannot host the placement: a gap whose *following*
        interval starts before ``ready`` would need ``ready + duration <=
        next_start < ready`` — impossible for non-negative durations — so
        the scan starts at the interval straddling ``ready``.
        """
        if duration < 0:
            raise IntervalError("duration must be non-negative")
        intervals = self._intervals
        if not allow_insertion or not intervals:
            return max(ready, self.last_end())
        if ready + duration <= intervals[0][0]:
            return ready
        lo = bisect.bisect_left(self._starts, ready) - 1
        if lo < 0:
            lo = 0
        for i in range(lo, len(intervals) - 1):
            e0 = intervals[i][1]
            s1 = intervals[i + 1][0]
            gap_start = ready if ready > e0 else e0
            if gap_start + duration <= s1:
                return gap_start
        return max(ready, self.last_end())

    def overlapping(self, start: float, end: float) -> List[Tuple[float, float, object]]:
        """Intervals strictly overlapping ``(start, end)`` (touching excluded)."""
        out = []
        # First interval that could overlap: its start is < end, and every
        # interval ending at/before `start` is out — walk back one from the
        # bisect point to catch the straddler.
        idx = bisect.bisect_left(self._starts, start)
        if idx > 0:
            idx -= 1
        for s, e, t in self._intervals[idx:]:
            if s >= end:
                break
            if e > start and s < end:
                out.append((s, e, t))
        return out

    def free_gaps(self, horizon: float) -> List[Tuple[float, float]]:
        """Idle ``(start, end)`` stretches in ``[0, horizon]``."""
        gaps: List[Tuple[float, float]] = []
        cursor = 0.0
        for s, e, _t in self._intervals:
            if s > cursor:
                gaps.append((cursor, min(s, horizon)))
            cursor = max(cursor, e)
            if cursor >= horizon:
                break
        if cursor < horizon:
            gaps.append((cursor, horizon))
        return [(s, e) for s, e in gaps if e > s]


def max_overlap(intervals: Iterable[Tuple[float, float]]) -> int:
    """Peak number of simultaneously open ``(start, end)`` intervals.

    Zero-length intervals are ignored, and an interval ending at the exact
    instant another begins does not count as overlap (ends sort before
    starts at ties).  This is the one sweep shared verbatim by the
    executor-side sanitizer audit (``Device.max_concurrent_intervals``) and
    the plan-side schedule auditor (``schedule-slot-overflow``).
    """
    events: List[Tuple[float, int]] = []
    for start, end in intervals:
        if end > start:
            events.append((start, 1))
            events.append((end, -1))
    events.sort(key=lambda ev: (ev[0], ev[1]))
    current = peak = 0
    for _time, delta in events:
        current += delta
        if current > peak:
            peak = current
    return peak
