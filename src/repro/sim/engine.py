"""Deterministic discrete-event simulation engine.

The engine maintains a virtual clock and a priority queue of pending events.
Events scheduled for the same instant are ordered first by an integer
``priority`` (lower runs first) and then by insertion order, which makes every
simulation run bit-for-bit reproducible regardless of hash randomization or
dict ordering.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  Cancelling a handle is O(1): the entry is
    tombstoned and skipped when it reaches the head of the queue.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event as cancelled; it will never fire."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<EventHandle t={self.time:.6g} {name} {state}>"


class Simulator:
    """Virtual clock plus event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, on_task_done, task)
        sim.run()
        assert sim.now == 5.0

    The engine never advances time except by draining events, so ``now`` is
    always the timestamp of the most recently fired event (or the initial
    time if nothing has fired).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (cancelled ones excluded)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live events still waiting to fire.

        Cancelled entries (tombstones) may linger in the underlying queue
        until they reach the head, but they are excluded from this count.
        """
        return sum(1 for entry in self._queue if not entry[3].cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` after ``now``.

        ``delay`` must be non-negative.  ``priority`` breaks ties among
        events at the same instant (lower fires first); the default 0 is
        appropriate for almost all callers.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, priority, next(self._seq), callback, tuple(args))
        heapq.heappush(self._queue, (time, priority, handle.seq, handle))
        return handle

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns True if an event fired, False if the queue was empty.
        """
        while self._queue:
            time, _priority, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            handle.cancelled = True  # consumed; keeps .active meaning "pending"
            self._events_fired += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        ``until`` stops the run once the next event lies strictly beyond that
        time (the clock is then advanced to ``until``).  ``max_events`` bounds
        the number of events fired, as a runaway-simulation backstop.
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if self.step():
                    fired += 1
            if until is not None and self._now < until and not self._queue:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _peek_time(self) -> Optional[float]:
        """Time of the next live event, discarding tombstones; None if empty."""
        while self._queue:
            time, _priority, _seq, handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return time
        return None

    def clear(self) -> None:
        """Cancel every pending event (the clock is left untouched)."""
        for _time, _priority, _seq, handle in self._queue:
            handle.cancelled = True
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6g} pending={self.pending}>"
