"""Deterministic discrete-event simulation engine.

The engine maintains a virtual clock and a priority queue of pending events.
Events scheduled for the same instant are ordered first by an integer
``priority`` (lower runs first) and then by insertion order, which makes every
simulation run bit-for-bit reproducible regardless of hash randomization or
dict ordering.

Hot-path design (the event kernel):

* :class:`EventHandle` is a slot-based object ordered by ``(time, priority,
  seq)`` and pushed *directly* onto the heap — no per-event wrapper tuple,
  so scheduling allocates exactly one object.
* Cancellation is O(1): the handle is tombstoned in place and the live-event
  counter is decremented immediately, so :attr:`Simulator.pending` is an O(1)
  read that never counts cancelled entries still sitting in the heap.
* Tombstones are compacted lazily: when they outnumber live events (beyond a
  small floor) the heap is rebuilt from the survivors, keeping pop cost
  O(log live) instead of O(log total-ever-scheduled).
* :meth:`Simulator.run` drains the queue in a single batched loop — one heap
  pop per fired event — instead of the peek-then-step double traversal.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: Handle lifecycle states.  A fired handle is deliberately distinct from a
#: cancelled one so that a stale ``cancel()`` after firing is a no-op that
#: cannot corrupt the live-event accounting.
_PENDING = 0
_FIRED = 1
_CANCELLED = 2

#: Compaction floor: heaps smaller than this are never rebuilt.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at` and live directly inside the engine's heap
    (they order by ``(time, priority, seq)``).  Cancelling a handle is O(1):
    the entry is tombstoned and skipped when it reaches the head of the
    queue.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_state", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._state = _PENDING
        self._sim = sim

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark this event as cancelled; it will never fire.

        Idempotent, and a no-op on a handle that already fired — stale
        cancels from callers holding old handles never affect accounting.
        """
        if self._state != _PENDING:
            return
        self._state = _CANCELLED
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        """True once the event can no longer fire (cancelled *or* fired)."""
        return self._state != _PENDING

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return self._state == _PENDING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _FIRED: "fired", _CANCELLED: "cancelled"}[
            self._state
        ]
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<EventHandle t={self.time:.6g} {name} {state}>"


class Simulator:
    """Virtual clock plus event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, on_task_done, task)
        sim.run()
        assert sim.now == 5.0

    The engine never advances time except by draining events, so ``now`` is
    always the timestamp of the most recently fired event (or the initial
    time if nothing has fired).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._events_fired = 0
        #: Live (pending) events currently in the queue.
        self._live = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (cancelled ones excluded)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live events still waiting to fire.

        Cancelled entries (tombstones) may linger in the underlying queue
        until they reach the head or are compacted away, but the count is
        maintained incrementally and never includes them.
        """
        return self._live

    def _note_cancel(self) -> None:
        """A pending handle was tombstoned; keep the live count exact."""
        self._live -= 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap when tombstones dominate it."""
        n = len(self._queue)
        if n >= _COMPACT_MIN and self._live < n // 2:
            self._queue = [h for h in self._queue if h._state == _PENDING]
            heapq.heapify(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` after ``now``.

        ``delay`` must be non-negative.  ``priority`` breaks ties among
        events at the same instant (lower fires first); the default 0 is
        appropriate for almost all callers.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        self._seq += 1
        handle = EventHandle(time, priority, self._seq, callback, args, self)
        heapq.heappush(self._queue, handle)
        self._live += 1
        return handle

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns True if an event fired, False if the queue was empty.
        """
        queue = self._queue
        while queue:
            handle = heapq.heappop(queue)
            if handle._state != _PENDING:
                continue
            self._now = handle.time
            handle._state = _FIRED
            self._live -= 1
            self._events_fired += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        ``until`` stops the run once the next event lies strictly beyond that
        time (the clock is then advanced to ``until``).  ``max_events`` bounds
        the number of events fired, as a runaway-simulation backstop.
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        queue = self._queue
        try:
            while queue:
                if max_events is not None and fired >= max_events:
                    break
                head = queue[0]
                if head._state != _PENDING:
                    heapq.heappop(queue)  # discard tombstone
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                heapq.heappop(queue)
                self._now = head.time
                head._state = _FIRED
                self._live -= 1
                self._events_fired += 1
                fired += 1
                head.callback(*head.args)
            if until is not None and self._now < until and self._live == 0:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _peek_time(self) -> Optional[float]:
        """Time of the next live event, discarding tombstones; None if empty."""
        queue = self._queue
        while queue:
            handle = queue[0]
            if handle._state != _PENDING:
                heapq.heappop(queue)
                continue
            return handle.time
        return None

    def clear(self) -> None:
        """Cancel every pending event (the clock is left untouched)."""
        for handle in self._queue:
            if handle._state == _PENDING:
                handle._state = _CANCELLED
        self._queue.clear()
        self._live = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6g} pending={self.pending}>"
