"""Structured execution traces.

Every observable action in a simulated run — a task starting on a device, a
file transfer, a fault, a DVFS transition — is appended to a
:class:`TraceRecorder` as a :class:`TraceRecord`.  The analysis layer
(:mod:`repro.analysis`) consumes these traces to compute utilization, build
Gantt charts, and account for data movement, without the orchestrator having
to know what will be analyzed later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry.

    ``kind`` is a short dotted tag (``task.start``, ``task.finish``,
    ``transfer.start``, ``fault.inject``, ...); ``data`` carries the
    kind-specific payload (task ids, device names, byte counts).
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into the payload."""
        return self.data.get(key, default)


class TraceRecorder:
    """Append-only event trace with simple query helpers.

    Recording can be disabled wholesale (``enabled=False``) to remove
    tracing overhead from large benchmark sweeps; queries then see an empty
    trace.

    Live consumers (e.g. the :mod:`repro.sanitizer` invariant checker) can
    :meth:`subscribe` a callback that observes every record as it is
    emitted.  Subscribers fire even when storage is disabled, so auditing
    does not force traces to be retained in memory.

    ``kinds`` optionally restricts *storage* to an allowlist of record
    kinds (subscribers still see everything): a sweep that only needs
    ``task.finish`` events pays nothing for transfer/eviction chatter.
    Post-hoc audits that count records (the sanitizer) are skipped for
    filtered traces — consult :attr:`kinds_filter`.
    """

    def __init__(
        self, enabled: bool = True, kinds: Optional[Iterable[str]] = None
    ) -> None:
        self._enabled = enabled
        self._kinds: Optional[frozenset] = (
            frozenset(kinds) if kinds is not None else None
        )
        self._records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._refresh_active()

    def _refresh_active(self) -> None:
        # One precomputed boolean keeps the disabled record() path to a
        # single attribute test — the executor calls record() per event.
        self._active = bool(self._enabled or self._subscribers)

    @property
    def enabled(self) -> bool:
        """Whether records are being stored."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._refresh_active()

    @property
    def kinds_filter(self) -> Optional[frozenset]:
        """The storage allowlist of kinds, or None when unfiltered."""
        return self._kinds

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously on every record."""
        self._subscribers.append(callback)
        self._refresh_active()

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Remove a previously subscribed callback (no-op if absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)
        self._refresh_active()

    def record(self, time: float, kind: str, **data: Any) -> None:
        """Append one record (no-op when disabled and nobody listens)."""
        if not self._active:
            return  # early-out: no allocation on the disabled hot path
        store = self._enabled and (self._kinds is None or kind in self._kinds)
        if not store and not self._subscribers:
            return  # filtered out and nobody listens
        rec = TraceRecord(time, kind, data)
        if store:
            self._records.append(rec)
        for callback in self._subscribers:
            callback(rec)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All records in chronological (insertion) order."""
        return list(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records whose kind matches exactly."""
        return [r for r in self._records if r.kind == kind]

    def matching(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All records satisfying an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def kinds(self) -> Dict[str, int]:
        """Histogram of record kinds."""
        counts: Dict[str, int] = {}
        for r in self._records:
            counts[r.kind] = counts.get(r.kind, 0) + 1
        return counts

    def first(self, kind: str) -> Optional[TraceRecord]:
        """Earliest record of the given kind, or None."""
        for r in self._records:
            if r.kind == kind:
                return r
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Latest record of the given kind, or None."""
        for r in reversed(self._records):
            if r.kind == kind:
                return r
        return None

    def span(self) -> float:
        """Time between the first and last record (0 for empty traces)."""
        if not self._records:
            return 0.0
        return self._records[-1].time - self._records[0].time

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
