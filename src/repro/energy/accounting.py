"""Post-run energy integration.

Takes an executed run — the cluster (whose devices recorded their busy
intervals), the achieved makespan, and the execution trace (whose
``task.finish`` records carry per-task busy energy, including any DVFS
state the schedule chose) — and produces an :class:`EnergyReport` with
per-device busy/idle breakdowns under a chosen idle governor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.energy.governor import AlwaysOnGovernor, IdleGovernor
from repro.platform.cluster import Cluster
from repro.sim.trace import TraceRecorder


@dataclass
class DeviceEnergy:
    """Energy breakdown of one device over one run."""

    device: str
    busy_seconds: float
    idle_seconds: float
    busy_joules: float
    idle_joules: float

    @property
    def total_joules(self) -> float:
        """Busy plus idle energy."""
        return self.busy_joules + self.idle_joules


@dataclass
class EnergyReport:
    """Whole-run energy report."""

    makespan: float
    devices: Dict[str, DeviceEnergy] = field(default_factory=dict)

    @property
    def total_joules(self) -> float:
        """Cluster-wide energy for the run."""
        return sum(d.total_joules for d in self.devices.values())

    @property
    def busy_joules(self) -> float:
        """Energy spent actually executing tasks."""
        return sum(d.busy_joules for d in self.devices.values())

    @property
    def idle_joules(self) -> float:
        """Energy wasted idling (the target of DRS governors)."""
        return sum(d.idle_joules for d in self.devices.values())

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s), the combined figure of merit."""
        return self.total_joules * self.makespan

    def average_power(self) -> float:
        """Mean cluster draw over the run, watts."""
        if self.makespan <= 0:
            return 0.0
        return self.total_joules / self.makespan


def account_energy(
    cluster: Cluster,
    makespan: float,
    trace: Optional[TraceRecorder] = None,
    governor: Optional[IdleGovernor] = None,
) -> EnergyReport:
    """Integrate a run's energy.

    Busy energy prefers per-task ``energy_j`` figures from the trace
    (these reflect DVFS choices); devices without trace records fall back
    to busy-time x full busy power.  Idle energy prices every gap in each
    device's interval list (plus leading/trailing gaps within
    [0, makespan]) through the governor.
    """
    governor = governor or AlwaysOnGovernor()
    report = EnergyReport(makespan=makespan)

    traced_energy: Dict[str, float] = {}
    traced_devices = set()
    if trace is not None:
        # Completed executions, preempted replica clones and crashed
        # attempts all burnt busy power; each records its energy_j.
        for kind in ("task.finish", "task.preempt", "fault.task"):
            for rec in trace.of_kind(kind):
                dev = rec.get("device")
                e = rec.get("energy_j")
                if dev is not None and e is not None:
                    traced_energy[dev] = traced_energy.get(dev, 0.0) + float(e)
                    traced_devices.add(dev)

    for device in cluster.devices:
        intervals = sorted(
            (s, min(e, makespan)) for s, e in device.busy_intervals if s < makespan
        )
        busy = sum(e - s for s, e in intervals if e > s)
        idle = max(0.0, makespan - busy)

        power = device.spec.power
        if device.uid in traced_devices:
            busy_j = traced_energy[device.uid]
        else:
            busy_j = power.busy_watts * busy

        idle_j = 0.0
        for gap in _idle_gaps(intervals, makespan):
            idle_j += governor.idle_energy(power, gap)

        report.devices[device.uid] = DeviceEnergy(
            device=device.uid,
            busy_seconds=busy,
            idle_seconds=idle,
            busy_joules=busy_j,
            idle_joules=idle_j,
        )
    return report


def _idle_gaps(intervals: List[Tuple[float, float]], makespan: float) -> List[float]:
    """Lengths of the idle gaps of a device over [0, makespan]."""
    gaps: List[float] = []
    cursor = 0.0
    for s, e in intervals:
        if s > cursor:
            gaps.append(s - cursor)
        cursor = max(cursor, e)
    if makespan > cursor:
        gaps.append(makespan - cursor)
    return [g for g in gaps if g > 0]
