"""Carbon-aware accounting and launch-time shifting (extension).

Scientific campaigns increasingly report *carbon*, not just joules, and a
batch campaign can often choose *when* to start.  This module provides:

* :class:`CarbonIntensityTrace` — grid carbon intensity (gCO2/kWh) over
  the day; a synthetic solar-shaped diurnal curve is built in, real traces
  can be supplied as (hour, intensity) samples.
* :func:`carbon_emissions` — integrate a run's power draw against the
  trace from a given start hour.
* :func:`best_start_hour` — temporal shifting: the launch hour minimizing
  the run's total emissions (the "run the campaign at solar noon" play).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.energy.accounting import EnergyReport

#: Seconds per hour, for trace indexing.
HOUR = 3600.0


@dataclass(frozen=True)
class CarbonIntensityTrace:
    """Piecewise-linear grid carbon intensity over a 24 h day, gCO2/kWh."""

    samples: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ValueError("need at least two samples")
        hours = [h for h, _v in self.samples]
        if hours != sorted(hours):
            raise ValueError("samples must be sorted by hour")
        if hours[0] != 0.0:
            raise ValueError("trace must start at hour 0")
        if any(v < 0 for _h, v in self.samples):
            raise ValueError("intensity cannot be negative")

    @classmethod
    def synthetic_solar(
        cls,
        base: float = 450.0,
        solar_dip: float = 250.0,
        noon: float = 13.0,
        spread: float = 3.5,
    ) -> "CarbonIntensityTrace":
        """A solar-heavy grid: high overnight, dipping around noon."""
        samples: List[Tuple[float, float]] = []
        for h in range(25):
            dip = solar_dip * math.exp(-((h - noon) ** 2) / (2 * spread ** 2))
            samples.append((float(h), max(0.0, base - dip)))
        return cls(tuple(samples))

    @classmethod
    def flat(cls, intensity: float = 400.0) -> "CarbonIntensityTrace":
        """A constant-intensity grid (the carbon-blind baseline)."""
        return cls(((0.0, intensity), (24.0, intensity)))

    def intensity_at(self, hour: float) -> float:
        """Interpolated intensity at an hour-of-day (wraps modulo 24)."""
        h = hour % 24.0
        prev_h, prev_v = self.samples[0]
        for sh, sv in self.samples[1:]:
            if h <= sh:
                if sh == prev_h:
                    return sv
                frac = (h - prev_h) / (sh - prev_h)
                return prev_v + frac * (sv - prev_v)
            prev_h, prev_v = sh, sv
        return prev_v  # beyond the last sample: hold

    def mean_over(self, start_hour: float, duration_s: float, steps: int = 64) -> float:
        """Mean intensity over [start, start + duration] (midpoint rule)."""
        if duration_s <= 0:
            return self.intensity_at(start_hour)
        total = 0.0
        for k in range(steps):
            t = start_hour + (k + 0.5) / steps * (duration_s / HOUR)
            total += self.intensity_at(t)
        return total / steps


def carbon_emissions(
    report: EnergyReport,
    trace: CarbonIntensityTrace,
    start_hour: float = 0.0,
) -> float:
    """Grams of CO2 for a run starting at ``start_hour``.

    The run's average power is integrated against the intensity over its
    makespan; joules convert to kWh at 3.6e6 J/kWh.
    """
    kwh = report.total_joules / 3.6e6
    mean_intensity = trace.mean_over(start_hour, report.makespan)
    return kwh * mean_intensity


def best_start_hour(
    report: EnergyReport,
    trace: CarbonIntensityTrace,
    granularity_h: float = 0.5,
) -> Tuple[float, float]:
    """(hour, gCO2) of the launch time minimizing emissions."""
    if granularity_h <= 0:
        raise ValueError("granularity must be positive")
    best: Optional[Tuple[float, float]] = None
    hour = 0.0
    while hour < 24.0:
        g = carbon_emissions(report, trace, start_hour=hour)
        if best is None or g < best[1]:
            best = (hour, g)
        hour += granularity_h
    return best


def shifting_savings(
    report: EnergyReport, trace: CarbonIntensityTrace
) -> Dict[str, float]:
    """Summary of what temporal shifting buys for one run."""
    worst = max(
        carbon_emissions(report, trace, h * 0.5) for h in range(48)
    )
    hour, best = best_start_hour(report, trace)
    return {
        "best_hour": hour,
        "best_gco2": best,
        "worst_gco2": worst,
        "savings_fraction": 0.0 if worst == 0 else 1.0 - best / worst,
    }
