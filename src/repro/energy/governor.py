"""Idle-power management policies (dynamic resource sleep).

A governor decides how much an idle gap of a given length costs.  The
always-on policy charges full idle power for every idle second; the
deep-sleep policy (DRS) lets a device drop to its sleep draw after a
threshold, modeling power-gated accelerators — plus a fixed wake energy
penalty per sleep episode.
"""

from __future__ import annotations

import abc

from repro.platform.power import PowerModel


class IdleGovernor(abc.ABC):
    """Policy pricing one idle gap on one device."""

    name: str = "abstract"

    @abc.abstractmethod
    def idle_energy(self, power: PowerModel, gap_seconds: float) -> float:
        """Joules consumed over an idle gap of the given length."""


class AlwaysOnGovernor(IdleGovernor):
    """Full idle draw for the whole gap (no power management)."""

    name = "always-on"

    def idle_energy(self, power: PowerModel, gap_seconds: float) -> float:
        """gap * idle_watts."""
        if gap_seconds < 0:
            raise ValueError("gap must be non-negative")
        return power.idle_watts * gap_seconds


class DeepSleepGovernor(IdleGovernor):
    """Dynamic resource sleep after a threshold, with wake penalty.

    The first ``threshold_s`` of a gap draw idle power; the remainder draws
    sleep power; entering/leaving sleep costs ``wake_energy_j`` once per
    qualifying gap.
    """

    name = "deep-sleep"

    def __init__(self, threshold_s: float = 1.0, wake_energy_j: float = 5.0) -> None:
        if threshold_s < 0 or wake_energy_j < 0:
            raise ValueError("threshold and wake energy must be non-negative")
        self.threshold_s = threshold_s
        self.wake_energy_j = wake_energy_j

    def idle_energy(self, power: PowerModel, gap_seconds: float) -> float:
        """Idle draw up to the threshold, sleep draw beyond, plus wake cost."""
        if gap_seconds < 0:
            raise ValueError("gap must be non-negative")
        if gap_seconds <= self.threshold_s:
            return power.idle_watts * gap_seconds
        awake = power.idle_watts * self.threshold_s
        asleep = power.sleep_watts * (gap_seconds - self.threshold_s)
        return awake + asleep + self.wake_energy_j
