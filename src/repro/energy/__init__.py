"""Energy accounting and idle-power management.

Power *models* live with the hardware (:mod:`repro.platform.power`); this
package turns an executed run into joules:

* :mod:`~repro.energy.accounting` — integrate busy/idle energy per device
  from recorded busy intervals and per-task execution records.
* :mod:`~repro.energy.governor` — idle-power policies (always-on vs
  dynamic resource sleep), applied at accounting time.
"""

from repro.energy.accounting import DeviceEnergy, EnergyReport, account_energy
from repro.energy.governor import AlwaysOnGovernor, DeepSleepGovernor, IdleGovernor

__all__ = [
    "DeviceEnergy",
    "EnergyReport",
    "account_energy",
    "IdleGovernor",
    "AlwaysOnGovernor",
    "DeepSleepGovernor",
]
