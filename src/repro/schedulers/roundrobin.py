"""Round-robin device assignment — the weakest sensible baseline.

Tasks in topological order are dealt to eligible devices cyclically.  The
global cycle position advances across tasks, so heterogeneity, load and
communication are all ignored; only precedence is respected.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.schedule import Schedule


class RoundRobinScheduler(Scheduler):
    """Cyclic dealing of tasks to eligible devices."""

    name = "roundrobin"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Deal tasks to devices in a fixed global rotation."""
        schedule = Schedule()
        all_devices = [d.uid for d in context.cluster.alive_devices()]
        cursor = 0
        for name in context.workflow.topological_order():
            eligible = {d.uid for d in context.eligible_devices(name)}
            # Advance the global cursor to the next eligible device.
            for step in range(len(all_devices)):
                uid = all_devices[(cursor + step) % len(all_devices)]
                if uid in eligible:
                    cursor = (cursor + step + 1) % len(all_devices)
                    device = context.cluster.device(uid)
                    break
            start, finish = eft_placement(
                context, schedule, name, device, allow_insertion=False
            )
            schedule.add(name, device.uid, start, finish)
        return schedule
