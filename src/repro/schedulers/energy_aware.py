"""Energy-aware bi-objective scheduling.

``EnergyAwareHeftScheduler`` keeps HEFT's ranking but scores each candidate
placement by a convex combination of normalized finish time and normalized
execution energy::

    score = alpha * EFT/EFT_min  +  (1 - alpha) * E/E_min

``alpha=1`` recovers plain HEFT; ``alpha=0`` minimizes energy alone.
Sweeping alpha traces the energy/makespan Pareto front (experiment F7).

When a device exposes DVFS states, every state is evaluated as a separate
candidate: running a non-critical task in a low-power state often buys
energy at zero makespan cost because the slack absorbs the slowdown.  The
chosen state is recorded in ``Schedule.dvfs_choice`` so the executor and
energy accounting replay it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.platform.power import DvfsState
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.schedule import Schedule


class EnergyAwareHeftScheduler(Scheduler):
    """HEFT ranking with energy/makespan trade-off placement."""

    name = "energy-heft"

    def __init__(self, alpha: float = 0.5, use_dvfs: bool = True) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha
        self.use_dvfs = use_dvfs

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Rank like HEFT, place by the bi-objective score."""
        ranks = context.upward_ranks()
        topo_index = {
            n: i for i, n in enumerate(context.workflow.topological_order())
        }
        order = sorted(
            context.workflow.tasks, key=lambda n: (-ranks[n], topo_index[n])
        )

        schedule = Schedule()
        for name in order:
            candidates = self._candidates(context, schedule, name)
            best_finish = min(c[2] for c in candidates)
            best_energy = min(c[3] for c in candidates)
            scored = []
            for device, start, finish, energy, state in candidates:
                s = (
                    self.alpha * finish / max(best_finish, 1e-12)
                    + (1.0 - self.alpha) * energy / max(best_energy, 1e-12)
                )
                scored.append((s, finish, device.uid, device, start, state))
            scored.sort(key=lambda c: (c[0], c[1], c[2]))
            _s, finish, _uid, device, start, state = scored[0]
            schedule.add(name, device.uid, start, finish)
            if state is not None:
                schedule.dvfs_choice[name] = state.name
        return schedule

    def _candidates(
        self, context: SchedulingContext, schedule: Schedule, name: str
    ) -> List[Tuple]:
        """All (device, start, finish, energy, dvfs_state) options."""
        from repro.schedulers.base import eft_placement

        out: List[Tuple] = []
        task = context.workflow.tasks[name]
        model = context.cluster.execution_model
        for device in context.eligible_devices(name):
            states: List[Optional[DvfsState]] = [None]
            if self.use_dvfs:
                states += list(device.spec.power.dvfs_states)
            base_time = context.exec_time(name, device.uid)
            for state in states:
                # DVFS stretches execution time by 1/freq_scale; the
                # context's (possibly perturbed) estimate is rescaled
                # rather than recomputed so perturbations stay consistent.
                duration = base_time if state is None else base_time / state.freq_scale
                start, finish = _placement_with_duration(
                    context, schedule, name, device, duration
                )
                power = device.spec.power.busy_power(state)
                energy = power * duration
                out.append((device, start, finish, energy, state))
        return out


def _placement_with_duration(
    context: SchedulingContext,
    schedule: Schedule,
    name: str,
    device,
    duration: float,
) -> Tuple[float, float]:
    """EFT-style placement for a caller-supplied duration (DVFS-scaled)."""
    dst_uid = device.uid
    ready = context.staging_time(name, dst_uid)
    release = context.release_times.get(name, 0.0)
    if release > ready:
        ready = release
    for pred in context.workflow.predecessors(name):
        pa = schedule.assignments[pred]
        arrival = pa.finish + context.comm_time(pred, name, pa.device, dst_uid)
        if arrival > ready:
            ready = arrival
    start = schedule.timeline(dst_uid).earliest_fit(ready, duration)
    return start, start + duration
