"""Genetic-algorithm metaheuristic scheduler.

Searches the space of task→device assignment vectors with a steady GA:
tournament selection, uniform crossover, per-gene reassignment mutation.
Decoding fixes the task *order* to decreasing upward rank (so chromosomes
only encode placement) and prices each individual with the same
insertion-EFT machinery the list schedulers use, making fitness directly
comparable to their makespans.

The initial population is seeded with the HEFT assignment, so the GA is an
*anytime improver* over HEFT: with zero generations it reproduces HEFT, and
more generations buy schedule quality with scheduling time (the classic
quality/overhead trade of T5).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.schedule import Schedule


class GeneticScheduler(Scheduler):
    """GA over placement vectors, HEFT-seeded."""

    name = "genetic"

    def __init__(
        self,
        population: int = 24,
        generations: int = 40,
        mutation_rate: float = 0.08,
        tournament: int = 3,
        seed: int = 0,
    ) -> None:
        if population < 2:
            raise ValueError("population must be >= 2")
        self.population = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament = tournament
        self.seed = seed

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Evolve placements; return the best decoded schedule found."""
        rng = np.random.default_rng(self.seed)
        tasks = self._priority_order(context)
        eligible: Dict[str, List[str]] = {
            name: [d.uid for d in context.eligible_devices(name)]
            for name in tasks
        }

        heft_genes = self._heft_genes(context, tasks, eligible)
        pop = [heft_genes]
        for _ in range(self.population - 1):
            pop.append(
                np.array(
                    [rng.integers(0, len(eligible[t])) for t in tasks],
                    dtype=np.int64,
                )
            )

        def fitness(genes: np.ndarray) -> float:
            return self._decode(context, tasks, eligible, genes).makespan

        scores = [fitness(g) for g in pop]
        for _gen in range(self.generations):
            children = []
            elite_idx = int(np.argmin(scores))
            children.append(pop[elite_idx].copy())
            while len(children) < self.population:
                pa = self._select(pop, scores, rng)
                pb = self._select(pop, scores, rng)
                mask = rng.random(len(tasks)) < 0.5
                child = np.where(mask, pa, pb)
                for i, t in enumerate(tasks):
                    if rng.random() < self.mutation_rate:
                        child[i] = rng.integers(0, len(eligible[t]))
                children.append(child)
            pop = children
            scores = [fitness(g) for g in pop]

        best = pop[int(np.argmin(scores))]
        return self._decode(context, tasks, eligible, best)

    def _priority_order(self, context: SchedulingContext) -> List[str]:
        ranks = context.upward_ranks()
        topo_index = {
            n: i for i, n in enumerate(context.workflow.topological_order())
        }
        return sorted(
            context.workflow.tasks, key=lambda n: (-ranks[n], topo_index[n])
        )

    def _heft_genes(self, context, tasks, eligible) -> np.ndarray:
        heft = HeftScheduler().schedule(context)
        return np.array(
            [eligible[t].index(heft.device_of(t)) for t in tasks],
            dtype=np.int64,
        )

    def _select(self, pop, scores, rng) -> np.ndarray:
        idx = rng.integers(0, len(pop), size=self.tournament)
        best = min(idx, key=lambda i: scores[i])
        return pop[best]

    def _decode(self, context, tasks, eligible, genes: np.ndarray) -> Schedule:
        """Build a schedule from a placement vector in priority order."""
        schedule = Schedule()
        for i, name in enumerate(tasks):
            uid = eligible[name][int(genes[i]) % len(eligible[name])]
            device = context.cluster.device(uid)
            start, finish = eft_placement(context, schedule, name, device)
            schedule.add(name, uid, start, finish)
        return schedule
