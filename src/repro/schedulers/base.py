"""Scheduler interface and the shared estimation context.

:class:`SchedulingContext` snapshots everything an algorithm may consult —
eligible devices per task, execution-time estimates, communication and
staging estimates, and the classical rank helpers — so that every algorithm
in the zoo prices placements identically and differences in results come
from *policy*, not from divergent cost models.

Estimates can be systematically perturbed (``estimate_error_cv``) to model
bad profiling: the perturbation factor is drawn once per task and applied
across all devices, which is how mis-calibrated profilers actually err.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

import numpy as np

from repro.platform.cluster import Cluster
from repro.platform.devices import Device
from repro.schedulers import _reference
from repro.schedulers.schedule import Schedule
from repro.workflows.graph import Workflow


class SchedulingError(RuntimeError):
    """Raised when no feasible placement exists for some task."""


class SchedulingContext:
    """Precomputed cost estimates for one (workflow, cluster) pair."""

    def __init__(
        self,
        workflow: Workflow,
        cluster: Cluster,
        estimate_error_cv: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        release_times: Optional[Dict[str, float]] = None,
    ) -> None:
        self.workflow = workflow
        self.cluster = cluster
        #: Earliest permissible start per task (online arrivals); tasks
        #: absent from the map may start at time 0.
        self.release_times: Dict[str, float] = dict(release_times or {})
        model = cluster.execution_model

        # Per-task systematic estimate error (one factor per task).
        self._error: Dict[str, float] = {}
        if estimate_error_cv > 0:
            if rng is None:
                raise ValueError(
                    "estimate_error_cv > 0 requires a caller-supplied rng; "
                    "derive it from the run seed (see Orchestrator._build_policy)"
                )
            sigma2 = np.log(1.0 + estimate_error_cv ** 2)
            for name in workflow.tasks:
                self._error[name] = float(
                    rng.lognormal(mean=-0.5 * sigma2, sigma=np.sqrt(sigma2))
                )

        # Estimates are computed once per (task, distinct spec) and fanned
        # out to every device sharing the spec: presets instantiate many
        # devices from a handful of catalogue specs, so this collapses the
        # model-call count from |tasks| x |devices| to |tasks| x |specs|.
        alive = cluster.alive_devices()
        self._eligible: Dict[str, List[Device]] = {}
        self._exec: Dict[str, Dict[str, float]] = {}
        unset = object()
        for name, task in workflow.tasks.items():
            factor = self._error.get(name, 1.0)
            devices: List[Device] = []
            exec_row: Dict[str, float] = {}
            # One estimate per (task, distinct spec), fanned out to every
            # device sharing the spec: presets instantiate many devices
            # from a handful of catalogue specs, so this collapses the
            # model-call count from |tasks| x |devices| to |tasks| x
            # |specs| while keeping cluster device order.
            per_spec: Dict[int, object] = {}
            for d in alive:
                est = per_spec.get(id(d.spec), unset)
                if est is unset:
                    spec = d.spec
                    if spec.memory_gb < task.memory_gb:
                        est = None
                    else:
                        try:
                            est = model.estimate(task, spec) * factor
                        except ValueError:  # ineligible device class
                            est = None
                    per_spec[id(spec)] = est
                if est is None:
                    continue
                devices.append(d)
                exec_row[d.uid] = est
            if not devices:
                raise SchedulingError(
                    f"task {name!r} has no eligible device on cluster "
                    f"{cluster.name!r} (classes {task.eligible_classes()}, "
                    f"memory {task.memory_gb} GB)"
                )
            self._eligible[name] = devices
            self._exec[name] = exec_row

        # Hot-path memo tables: filled lazily, keyed by names/uids only.
        self._node_of: Dict[str, str] = {
            d.uid: d.node.name for n in cluster.nodes for d in n.devices
        }
        self._mean_exec: Dict[str, float] = {}
        self._best_exec: Dict[str, float] = {}
        self._edge_mb: Dict[tuple, float] = {}
        self._mean_comm: Dict[tuple, float] = {}
        self._pair_coeff: Dict[tuple, tuple] = {}
        self._staging: Dict[tuple, float] = {}

        # Vectorized-kernel infrastructure (all lazy; see eft_scan):
        # node-name ordering, per-task device/exec arrays, per-task staging
        # vectors over nodes, per-(edge, src-node) communication row vectors
        # and the node-pair latency/bandwidth matrices behind them.
        self._node_names: List[str] = [n.name for n in cluster.nodes]
        self._node_index: Dict[str, int] = {
            name: i for i, name in enumerate(self._node_names)
        }
        self._task_vec: Dict[str, tuple] = {}
        self._staging_vecs: Dict[str, np.ndarray] = {}
        self._comm_rows: Dict[tuple, Optional[np.ndarray]] = {}
        self._comm_row_lists: Dict[tuple, List[float]] = {}
        self._lat_mat: Optional[np.ndarray] = None
        self._bw_mat: Optional[np.ndarray] = None
        self._dbw_vec: Optional[np.ndarray] = None
        self._links_complete = True
        self._rank_arrays_cache: Optional[tuple] = None

        # Cluster-average communication figures for rank computations.
        links = cluster.interconnect.links
        real_links = [l for l in links if l.src != "<core>"]
        if real_links and len(cluster.nodes) > 1:
            self.avg_bandwidth = float(np.mean([l.bandwidth for l in real_links]))
            self.avg_latency = float(np.mean([l.latency for l in real_links]))
        else:
            self.avg_bandwidth = float("inf")
            self.avg_latency = 0.0

    # ------------------------------------------------------------------ #
    # execution estimates                                                #
    # ------------------------------------------------------------------ #

    def eligible_devices(self, task_name: str) -> List[Device]:
        """Devices this task may run on (affinity, memory and liveness)."""
        return self._eligible[task_name]

    def exec_time(self, task_name: str, device_uid: str) -> float:
        """Estimated runtime of a task on a device."""
        try:
            return self._exec[task_name][device_uid]
        except KeyError:
            raise SchedulingError(
                f"task {task_name!r} is not eligible on device {device_uid!r}"
            ) from None

    def mean_exec(self, task_name: str) -> float:
        """Mean runtime over eligible devices (HEFT's w-bar); memoized."""
        cached = self._mean_exec.get(task_name)
        if cached is None:
            cached = float(np.mean(list(self._exec[task_name].values())))
            self._mean_exec[task_name] = cached
        return cached

    def best_exec(self, task_name: str) -> float:
        """Best runtime over eligible devices; memoized."""
        cached = self._best_exec.get(task_name)
        if cached is None:
            cached = min(self._exec[task_name].values())
            self._best_exec[task_name] = cached
        return cached

    def best_device(self, task_name: str) -> Device:
        """The device with the smallest runtime estimate."""
        uid = min(self._exec[task_name], key=self._exec[task_name].get)
        return self.cluster.device(uid)

    # ------------------------------------------------------------------ #
    # communication estimates                                            #
    # ------------------------------------------------------------------ #

    def _edge_data(self, src_task: str, dst_task: str) -> float:
        """Memoized bytes on edge src->dst (the EFT inner-loop hot lookup)."""
        key = (src_task, dst_task)
        cached = self._edge_mb.get(key)
        if cached is None:
            cached = self.workflow.edge_data_mb(src_task, dst_task)
            self._edge_mb[key] = cached
        return cached

    def _pair(self, src_node: str, dst_node: str) -> tuple:
        """(latency, eff_bandwidth, dst_disk_bandwidth) per node pair.

        The exact ingredients of :meth:`Cluster.transfer_estimate` for a
        cross-node pair, resolved once — the per-placement cost becomes
        three float ops instead of repeated object-graph walks.
        """
        key = (src_node, dst_node)
        cached = self._pair_coeff.get(key)
        if cached is None:
            src = self.cluster.node(src_node)
            dst = self.cluster.node(dst_node)
            link = self.cluster.interconnect.link(src_node, dst_node)
            eff_bw = min(link.bandwidth, src.nic_bandwidth, dst.nic_bandwidth)
            cached = (link.latency, eff_bw, dst.disk_bandwidth)
            self._pair_coeff[key] = cached
        return cached

    def comm_time(
        self, src_task: str, dst_task: str, src_uid: str, dst_uid: str
    ) -> float:
        """Estimated edge transfer time for a concrete placement pair.

        Memo lookups are inlined (no helper calls): this runs once per
        (predecessor, candidate-device) pair inside every EFT loop.
        """
        key = (src_task, dst_task)
        data = self._edge_mb.get(key)
        if data is None:
            data = self.workflow.edge_data_mb(src_task, dst_task)
            self._edge_mb[key] = data
        if data == 0.0:
            return 0.0
        node_of = self._node_of
        src_node = node_of[src_uid]
        dst_node = node_of[dst_uid]
        if src_node == dst_node:
            return 0.0
        coeff = self._pair_coeff.get((src_node, dst_node))
        if coeff is None:
            coeff = self._pair(src_node, dst_node)
        latency, eff_bw, disk_bw = coeff
        return latency + data / eff_bw + data / disk_bw

    def mean_comm(self, src_task: str, dst_task: str) -> float:
        """Placement-agnostic mean edge cost (HEFT's c-bar); memoized."""
        key = (src_task, dst_task)
        cached = self._mean_comm.get(key)
        if cached is not None:
            return cached
        data = self._edge_data(src_task, dst_task)
        if data == 0.0 or self.avg_bandwidth == float("inf"):
            cached = 0.0
        else:
            cached = self.avg_latency + data / self.avg_bandwidth
        self._mean_comm[key] = cached
        return cached

    def staging_time(self, task_name: str, device_uid: str) -> float:
        """Estimated time to stage the task's *initial* inputs to a device.

        Initial files born on a node (``DataFile.location``) are pulled
        over the interconnect; storage-resident ones pay the shared-storage
        path.  Memoized per (task, node): every device on a node stages
        identically, so the EFT loop over a node's devices hits the cache.
        """
        return self._staging_node(task_name, self._node_of[device_uid])

    def _staging_node(self, task_name: str, node: str) -> float:
        """Node-keyed staging estimate backing :meth:`staging_time`."""
        key = (task_name, node)
        cached = self._staging.get(key)
        if cached is not None:
            return cached
        task = self.workflow.tasks[task_name]
        total = 0.0
        for fname in task.inputs:
            f = self.workflow.files[fname]
            if not f.initial:
                continue
            if f.location is None:
                total += self.cluster.staging_estimate(node, f.size_mb)
            elif f.location != node:
                total += self.cluster.transfer_estimate(
                    f.location, node, f.size_mb
                )
        self._staging[key] = total
        return total

    # ------------------------------------------------------------------ #
    # rank helpers                                                       #
    # ------------------------------------------------------------------ #

    def upward_ranks(self, use_best: bool = False) -> Dict[str, float]:
        """Classical upward ranks: rank_u(t) = w(t) + max_child(c + rank_u).

        ``use_best=True`` replaces the mean execution time with the best
        over eligible devices (the heterogeneity-aware variant HDWS uses).
        Computed by the vectorized kernel unless reference mode is active
        (see :mod:`repro.schedulers._reference`).
        """
        if _reference.reference_active():
            return _reference.upward_ranks(self, use_best)
        return _vec_upward_ranks(self, use_best)

    def downward_ranks(self) -> Dict[str, float]:
        """Classical downward ranks (distance from the entry nodes)."""
        if _reference.reference_active():
            return _reference.downward_ranks(self)
        return _vec_downward_ranks(self)

    # ------------------------------------------------------------------ #
    # vectorized-kernel infrastructure                                   #
    # ------------------------------------------------------------------ #

    def _task_arrays(self, task_name: str) -> tuple:
        """(node_idx, exec_list, uids, staging_arr, staging_list) per task.

        All aligned element-for-element with ``eligible_devices(task)``:
        ``node_idx`` is an intp array of node indices (into the cluster's
        node order), ``exec_list`` a plain list of execution estimates,
        ``uids`` the device uid strings, and ``staging_arr``/``staging_list``
        the initial-input staging estimates (array and list form — the
        ready-time kernel never mutates the cached array).
        """
        cached = self._task_vec.get(task_name)
        if cached is None:
            devices = self._eligible[task_name]
            node_index = self._node_index
            node_idx = np.array(
                [node_index[self._node_of[d.uid]] for d in devices],
                dtype=np.intp,
            )
            exec_row = self._exec[task_name]
            exec_list = [exec_row[d.uid] for d in devices]
            uids = [d.uid for d in devices]
            staging_arr = self._staging_vec(task_name)[node_idx]
            cached = (node_idx, exec_list, uids, staging_arr, staging_arr.tolist())
            self._task_vec[task_name] = cached
        return cached

    def _device_table(self) -> tuple:
        """(uids, index) over alive devices in cluster order (lazy)."""
        cached = getattr(self, "_dev_table", None)
        if cached is None:
            uids = [d.uid for d in self.cluster.alive_devices()]
            cached = (uids, {uid: i for i, uid in enumerate(uids)})
            self._dev_table = cached
        return cached

    def _oct_task_arrays(self, task_name: str) -> tuple:
        """(global_idx, exec_arr, uids) aligned with eligible devices (lazy).

        ``global_idx`` indexes into the alive-device table — the scatter
        target the vectorized optimistic-cost-table kernel uses to compare
        a parent's devices against every child's candidate devices.
        """
        cached = getattr(self, "_oct_vec", None)
        if cached is None:
            cached = self._oct_vec = {}
        entry = cached.get(task_name)
        if entry is None:
            _uids, index = self._device_table()
            devices = self._eligible[task_name]
            exec_row = self._exec[task_name]
            entry = (
                np.array([index[d.uid] for d in devices], dtype=np.intp),
                np.array([exec_row[d.uid] for d in devices]),
                [d.uid for d in devices],
            )
            cached[task_name] = entry
        return entry

    def _staging_vec(self, task_name: str) -> np.ndarray:
        """Initial-input staging estimate per cluster node (memoized)."""
        cached = self._staging_vecs.get(task_name)
        if cached is None:
            cached = np.array(
                [self._staging_node(task_name, n) for n in self._node_names]
            )
            self._staging_vecs[task_name] = cached
        return cached

    def _ensure_link_matrices(self) -> None:
        """Node-pair (latency, effective-bandwidth) matrices + disk vector.

        Pairs without an interconnect link are marked NaN and flip
        ``_links_complete`` — the vectorized ready-time path then defers to
        the scalar kernel so the original ``KeyError`` surfaces unchanged.
        """
        if self._lat_mat is not None:
            return
        names = self._node_names
        n = len(names)
        lat = np.zeros((n, n))
        bw = np.full((n, n), np.inf)
        for i, src in enumerate(names):
            for j, dst in enumerate(names):
                if i == j:
                    continue
                try:
                    latency, eff_bw, _dbw = self._pair(src, dst)
                except KeyError:
                    lat[i, j] = np.nan
                    bw[i, j] = np.nan
                    self._links_complete = False
                else:
                    lat[i, j] = latency
                    bw[i, j] = eff_bw
        self._lat_mat = lat
        self._bw_mat = bw
        self._dbw_vec = np.array(
            [self.cluster.node(name).disk_bandwidth for name in names]
        )

    def _comm_row(
        self, src_task: str, dst_task: str, src_uid: str
    ) -> Optional[np.ndarray]:
        """Edge transfer time to each of ``dst_task``'s eligible devices.

        Element ``[i]`` equals ``comm_time(src_task, dst_task, src_uid,
        dst_devices[i])`` — elementwise the same latency + data/bandwidth +
        data/disk arithmetic, so bit-identical.  Returns None for zero-byte
        edges, where the cost is 0 everywhere.  Memoized per (edge, source
        node): repeated evaluations (e.g. Min-Min frontier rescans) are a
        dictionary hit.
        """
        key = (src_task, dst_task)
        data = self._edge_mb.get(key)
        if data is None:
            data = self.workflow.edge_data_mb(src_task, dst_task)
            self._edge_mb[key] = data
        if data == 0.0:
            return None
        src_nidx = self._node_index[self._node_of[src_uid]]
        row_key = (src_task, dst_task, src_nidx)
        row = self._comm_rows.get(row_key)
        if row is None:
            self._ensure_link_matrices()
            node_row = (
                self._lat_mat[src_nidx]
                + data / self._bw_mat[src_nidx]
                + data / self._dbw_vec
            )
            node_row[src_nidx] = 0.0
            node_idx = self._task_arrays(dst_task)[0]
            row = node_row[node_idx]
            self._comm_rows[row_key] = row
        return row

    def _comm_row_list(
        self, src_task: str, dst_task: str, src_uid: str
    ) -> Optional[List[float]]:
        """:meth:`_comm_row` as a list of Python floats (memoized).

        The scalar ready-time path consumes rows element-by-element;
        ``tolist`` round-trips IEEE doubles exactly, so the values match
        the array form bit-for-bit while keeping downstream schedule
        times plain Python floats.
        """
        key = (src_task, dst_task)
        data = self._edge_mb.get(key)
        if data is None:
            data = self.workflow.edge_data_mb(src_task, dst_task)
            self._edge_mb[key] = data
        if data == 0.0:
            return None
        src_nidx = self._node_index[self._node_of[src_uid]]
        row_key = (src_task, dst_task, src_nidx)
        cached = self._comm_row_lists.get(row_key)
        if cached is None:
            cached = self._comm_row(src_task, dst_task, src_uid).tolist()
            self._comm_row_lists[row_key] = cached
        return cached

    def _ready_list(self, task_name: str, schedule: Schedule) -> List[float]:
        """Data-ready time per eligible device, as a list of Python floats.

        The elementwise max over staging, release and per-predecessor
        arrival vectors; every ingredient matches the scalar kernel's
        arithmetic op-for-op, so the values are bit-identical to looping
        :func:`repro.schedulers._reference.eft_placement` per device.
        """
        arrays = self._task_arrays(task_name)
        preds = self.workflow.predecessors(task_name)
        release = self.release_times.get(task_name, 0.0)
        if not preds and release <= 0.0:
            return arrays[4]
        assignments = schedule.assignments
        if len(preds) * len(arrays[4]) <= 256:
            # Few (pred, device) cells: scalar max/add beats the numpy
            # call overhead.  Same IEEE ops, so bit-identical results.
            ready = list(arrays[4])
            if release > 0.0:
                for i, r in enumerate(ready):
                    if release > r:
                        ready[i] = release
            for pred in preds:
                pa = assignments[pred]
                row = self._comm_row_list(pred, task_name, pa.device)
                finish = pa.finish
                if row is None:
                    for i, r in enumerate(ready):
                        if finish > r:
                            ready[i] = finish
                else:
                    for i, r in enumerate(ready):
                        arrival = finish + row[i]
                        if arrival > r:
                            ready[i] = arrival
            return ready
        ready = arrays[3]
        if release > 0.0:
            ready = np.maximum(ready, release)
        for pred in preds:
            pa = assignments[pred]
            row = self._comm_row(pred, task_name, pa.device)
            if row is None:
                ready = np.maximum(ready, pa.finish)
            else:
                ready = np.maximum(ready, pa.finish + row)
        return ready.tolist()

    def _rank_arrays(self) -> tuple:
        """CSR-style edge arrays for the vectorized rank kernels.

        Returns ``(order, succ_idx, succ_comm, pred_idx, pred_comm)`` where
        ``order`` is the topological order and, per position ``i``, the
        ``*_idx`` entries are intp arrays of neighbor positions and the
        ``*_comm`` entries the matching mean communication costs (None for
        tasks without neighbors on that side).
        """
        cached = self._rank_arrays_cache
        if cached is None:
            wf = self.workflow
            order = wf.topological_order()
            index = {name: i for i, name in enumerate(order)}
            succ_idx: List[Optional[np.ndarray]] = []
            succ_comm: List[Optional[np.ndarray]] = []
            pred_idx: List[Optional[np.ndarray]] = []
            pred_comm: List[Optional[np.ndarray]] = []
            for name in order:
                children = wf.successors(name)
                if children:
                    succ_idx.append(
                        np.array([index[c] for c in children], dtype=np.intp)
                    )
                    succ_comm.append(
                        np.array([self.mean_comm(name, c) for c in children])
                    )
                else:
                    succ_idx.append(None)
                    succ_comm.append(None)
                parents = wf.predecessors(name)
                if parents:
                    pred_idx.append(
                        np.array([index[p] for p in parents], dtype=np.intp)
                    )
                    pred_comm.append(
                        np.array([self.mean_comm(p, name) for p in parents])
                    )
                else:
                    pred_idx.append(None)
                    pred_comm.append(None)
            cached = (order, succ_idx, succ_comm, pred_idx, pred_comm)
            self._rank_arrays_cache = cached
        return cached


class Scheduler(abc.ABC):
    """Interface every scheduling algorithm implements."""

    #: Short registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> Schedule:
        """Produce a full static schedule for the context's workflow."""

    def schedule_workflow(self, workflow: Workflow, cluster: Cluster, **ctx_kwargs) -> Schedule:
        """Convenience wrapper building the context inline."""
        return self.schedule(SchedulingContext(workflow, cluster, **ctx_kwargs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


#: Single-device EFT placement — the scalar kernel, shared verbatim with
#: the differential reference (one implementation, two roles).
eft_placement = _reference.eft_placement


def eft_scan(
    context: SchedulingContext,
    schedule: Schedule,
    task_name: str,
    allow_insertion: bool = True,
) -> tuple:
    """(devices, starts, finishes) of EFT placement on *every* eligible device.

    The vectorized form of looping :func:`eft_placement` over
    ``eligible_devices(task)``: the data-ready times for all devices are
    computed as one numpy max-reduction over staging/release/predecessor
    arrival vectors, and only the timeline gap search runs per device.
    ``starts``/``finishes`` are plain Python floats, bit-identical to the
    scalar loop; selection policies keep their exact tie-break semantics by
    iterating the returned lists.
    """
    devices = context.eligible_devices(task_name)
    starts: List[float] = []
    finishes: List[float] = []
    if _reference.reference_active() or not context._links_complete:
        for device in devices:
            start, finish = _reference.eft_placement(
                context, schedule, task_name, device, allow_insertion
            )
            starts.append(start)
            finishes.append(finish)
        return devices, starts, finishes
    ready = context._ready_list(task_name, schedule)
    arrays = context._task_arrays(task_name)
    durations = arrays[1]
    uids = arrays[2]
    timelines = schedule.timelines
    for i, uid in enumerate(uids):
        duration = durations[i]
        tl = timelines.get(uid)
        if tl is None:
            # Untouched device: the earliest fit on an empty timeline is
            # simply max(ready, 0) — skip materializing the timeline.
            start = ready[i]
            if start < 0.0:
                start = 0.0
        else:
            start = tl._index.earliest_fit(ready[i], duration, allow_insertion)
        starts.append(start)
        finishes.append(start + duration)
    return devices, starts, finishes


def _vec_upward_ranks(
    context: SchedulingContext, use_best: bool = False
) -> Dict[str, float]:
    """Vectorized upward ranks over the context's CSR edge arrays.

    Per task the child max runs as one numpy ``comm + rank`` gather-reduce;
    float max is order-independent and elementwise addition matches the
    scalar sums, so the result is bit-identical to the reference kernel.
    """
    order, succ_idx, succ_comm, _pi, _pc = context._rank_arrays()
    weight = context.best_exec if use_best else context.mean_exec
    n = len(order)
    ranks = np.zeros(n)
    for i in range(n - 1, -1, -1):
        ci = succ_idx[i]
        best_child = 0.0
        if ci is not None:
            cand = float(np.max(succ_comm[i] + ranks[ci]))
            if cand > best_child:
                best_child = cand
        ranks[i] = weight(order[i]) + best_child
    out = ranks.tolist()
    return {name: out[i] for i, name in enumerate(order)}


def _vec_downward_ranks(context: SchedulingContext) -> Dict[str, float]:
    """Vectorized downward ranks (same exactness argument as upward)."""
    order, _si, _sc, pred_idx, pred_comm = context._rank_arrays()
    n = len(order)
    w_mean = np.array([context.mean_exec(name) for name in order])
    ranks = np.zeros(n)
    for i in range(n):
        pi = pred_idx[i]
        best_parent = 0.0
        if pi is not None:
            cand = float(np.max(ranks[pi] + w_mean[pi] + pred_comm[i]))
            if cand > best_parent:
                best_parent = cand
        ranks[i] = best_parent
    out = ranks.tolist()
    return {name: out[i] for i, name in enumerate(order)}
