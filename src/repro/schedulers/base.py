"""Scheduler interface and the shared estimation context.

:class:`SchedulingContext` snapshots everything an algorithm may consult —
eligible devices per task, execution-time estimates, communication and
staging estimates, and the classical rank helpers — so that every algorithm
in the zoo prices placements identically and differences in results come
from *policy*, not from divergent cost models.

Estimates can be systematically perturbed (``estimate_error_cv``) to model
bad profiling: the perturbation factor is drawn once per task and applied
across all devices, which is how mis-calibrated profilers actually err.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

import numpy as np

from repro.platform.cluster import Cluster
from repro.platform.devices import Device
from repro.schedulers.schedule import Schedule
from repro.workflows.graph import Workflow


class SchedulingError(RuntimeError):
    """Raised when no feasible placement exists for some task."""


class SchedulingContext:
    """Precomputed cost estimates for one (workflow, cluster) pair."""

    def __init__(
        self,
        workflow: Workflow,
        cluster: Cluster,
        estimate_error_cv: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        release_times: Optional[Dict[str, float]] = None,
    ) -> None:
        self.workflow = workflow
        self.cluster = cluster
        #: Earliest permissible start per task (online arrivals); tasks
        #: absent from the map may start at time 0.
        self.release_times: Dict[str, float] = dict(release_times or {})
        model = cluster.execution_model

        # Per-task systematic estimate error (one factor per task).
        self._error: Dict[str, float] = {}
        if estimate_error_cv > 0:
            if rng is None:
                raise ValueError(
                    "estimate_error_cv > 0 requires a caller-supplied rng; "
                    "derive it from the run seed (see Orchestrator._build_policy)"
                )
            sigma2 = np.log(1.0 + estimate_error_cv ** 2)
            for name in workflow.tasks:
                self._error[name] = float(
                    rng.lognormal(mean=-0.5 * sigma2, sigma=np.sqrt(sigma2))
                )

        # Estimates are computed once per (task, distinct spec) and fanned
        # out to every device sharing the spec: presets instantiate many
        # devices from a handful of catalogue specs, so this collapses the
        # model-call count from |tasks| x |devices| to |tasks| x |specs|.
        alive = cluster.alive_devices()
        spec_groups: List[tuple] = []  # (spec, [devices]) preserving order
        spec_index: Dict[int, int] = {}
        for d in alive:
            idx = spec_index.get(id(d.spec))
            if idx is None:
                spec_index[id(d.spec)] = len(spec_groups)
                spec_groups.append((d.spec, [d]))
            else:
                spec_groups[idx][1].append(d)

        order = {d.uid: i for i, d in enumerate(alive)}
        self._eligible: Dict[str, List[Device]] = {}
        self._exec: Dict[str, Dict[str, float]] = {}
        for name, task in workflow.tasks.items():
            factor = self._error.get(name, 1.0)
            devices: List[Device] = []
            exec_row: Dict[str, float] = {}
            for spec, group in spec_groups:
                if not model.eligible(task, spec) or spec.memory_gb < task.memory_gb:
                    continue
                est = model.estimate(task, spec) * factor
                for d in group:
                    devices.append(d)
                    exec_row[d.uid] = est
            if not devices:
                raise SchedulingError(
                    f"task {name!r} has no eligible device on cluster "
                    f"{cluster.name!r} (classes {task.eligible_classes()}, "
                    f"memory {task.memory_gb} GB)"
                )
            # Restore cluster device order (devices grouped by spec above).
            devices.sort(key=lambda d: order[d.uid])
            self._eligible[name] = devices
            self._exec[name] = {d.uid: exec_row[d.uid] for d in devices}

        # Hot-path memo tables: filled lazily, keyed by names/uids only.
        self._node_of: Dict[str, str] = {
            d.uid: d.node.name for n in cluster.nodes for d in n.devices
        }
        self._mean_exec: Dict[str, float] = {}
        self._best_exec: Dict[str, float] = {}
        self._edge_mb: Dict[tuple, float] = {}
        self._mean_comm: Dict[tuple, float] = {}
        self._pair_coeff: Dict[tuple, tuple] = {}
        self._staging: Dict[tuple, float] = {}

        # Cluster-average communication figures for rank computations.
        links = cluster.interconnect.links
        real_links = [l for l in links if l.src != "<core>"]
        if real_links and len(cluster.nodes) > 1:
            self.avg_bandwidth = float(np.mean([l.bandwidth for l in real_links]))
            self.avg_latency = float(np.mean([l.latency for l in real_links]))
        else:
            self.avg_bandwidth = float("inf")
            self.avg_latency = 0.0

    # ------------------------------------------------------------------ #
    # execution estimates                                                #
    # ------------------------------------------------------------------ #

    def eligible_devices(self, task_name: str) -> List[Device]:
        """Devices this task may run on (affinity, memory and liveness)."""
        return self._eligible[task_name]

    def exec_time(self, task_name: str, device_uid: str) -> float:
        """Estimated runtime of a task on a device."""
        try:
            return self._exec[task_name][device_uid]
        except KeyError:
            raise SchedulingError(
                f"task {task_name!r} is not eligible on device {device_uid!r}"
            ) from None

    def mean_exec(self, task_name: str) -> float:
        """Mean runtime over eligible devices (HEFT's w-bar); memoized."""
        cached = self._mean_exec.get(task_name)
        if cached is None:
            cached = float(np.mean(list(self._exec[task_name].values())))
            self._mean_exec[task_name] = cached
        return cached

    def best_exec(self, task_name: str) -> float:
        """Best runtime over eligible devices; memoized."""
        cached = self._best_exec.get(task_name)
        if cached is None:
            cached = min(self._exec[task_name].values())
            self._best_exec[task_name] = cached
        return cached

    def best_device(self, task_name: str) -> Device:
        """The device with the smallest runtime estimate."""
        uid = min(self._exec[task_name], key=self._exec[task_name].get)
        return self.cluster.device(uid)

    # ------------------------------------------------------------------ #
    # communication estimates                                            #
    # ------------------------------------------------------------------ #

    def _edge_data(self, src_task: str, dst_task: str) -> float:
        """Memoized bytes on edge src->dst (the EFT inner-loop hot lookup)."""
        key = (src_task, dst_task)
        cached = self._edge_mb.get(key)
        if cached is None:
            cached = self.workflow.edge_data_mb(src_task, dst_task)
            self._edge_mb[key] = cached
        return cached

    def _pair(self, src_node: str, dst_node: str) -> tuple:
        """(latency, eff_bandwidth, dst_disk_bandwidth) per node pair.

        The exact ingredients of :meth:`Cluster.transfer_estimate` for a
        cross-node pair, resolved once — the per-placement cost becomes
        three float ops instead of repeated object-graph walks.
        """
        key = (src_node, dst_node)
        cached = self._pair_coeff.get(key)
        if cached is None:
            src = self.cluster.node(src_node)
            dst = self.cluster.node(dst_node)
            link = self.cluster.interconnect.link(src_node, dst_node)
            eff_bw = min(link.bandwidth, src.nic_bandwidth, dst.nic_bandwidth)
            cached = (link.latency, eff_bw, dst.disk_bandwidth)
            self._pair_coeff[key] = cached
        return cached

    def comm_time(
        self, src_task: str, dst_task: str, src_uid: str, dst_uid: str
    ) -> float:
        """Estimated edge transfer time for a concrete placement pair.

        Memo lookups are inlined (no helper calls): this runs once per
        (predecessor, candidate-device) pair inside every EFT loop.
        """
        key = (src_task, dst_task)
        data = self._edge_mb.get(key)
        if data is None:
            data = self.workflow.edge_data_mb(src_task, dst_task)
            self._edge_mb[key] = data
        if data == 0.0:
            return 0.0
        node_of = self._node_of
        src_node = node_of[src_uid]
        dst_node = node_of[dst_uid]
        if src_node == dst_node:
            return 0.0
        coeff = self._pair_coeff.get((src_node, dst_node))
        if coeff is None:
            coeff = self._pair(src_node, dst_node)
        latency, eff_bw, disk_bw = coeff
        return latency + data / eff_bw + data / disk_bw

    def mean_comm(self, src_task: str, dst_task: str) -> float:
        """Placement-agnostic mean edge cost (HEFT's c-bar); memoized."""
        key = (src_task, dst_task)
        cached = self._mean_comm.get(key)
        if cached is not None:
            return cached
        data = self._edge_data(src_task, dst_task)
        if data == 0.0 or self.avg_bandwidth == float("inf"):
            cached = 0.0
        else:
            cached = self.avg_latency + data / self.avg_bandwidth
        self._mean_comm[key] = cached
        return cached

    def staging_time(self, task_name: str, device_uid: str) -> float:
        """Estimated time to stage the task's *initial* inputs to a device.

        Initial files born on a node (``DataFile.location``) are pulled
        over the interconnect; storage-resident ones pay the shared-storage
        path.  Memoized per (task, node): every device on a node stages
        identically, so the EFT loop over a node's devices hits the cache.
        """
        node = self._node_of[device_uid]
        key = (task_name, node)
        cached = self._staging.get(key)
        if cached is not None:
            return cached
        task = self.workflow.tasks[task_name]
        total = 0.0
        for fname in task.inputs:
            f = self.workflow.files[fname]
            if not f.initial:
                continue
            if f.location is None:
                total += self.cluster.staging_estimate(node, f.size_mb)
            elif f.location != node:
                total += self.cluster.transfer_estimate(
                    f.location, node, f.size_mb
                )
        self._staging[key] = total
        return total

    # ------------------------------------------------------------------ #
    # rank helpers                                                       #
    # ------------------------------------------------------------------ #

    def upward_ranks(self, use_best: bool = False) -> Dict[str, float]:
        """Classical upward ranks: rank_u(t) = w(t) + max_child(c + rank_u).

        ``use_best=True`` replaces the mean execution time with the best
        over eligible devices (the heterogeneity-aware variant HDWS uses).
        """
        ranks: Dict[str, float] = {}
        weight = self.best_exec if use_best else self.mean_exec
        for name in reversed(self.workflow.topological_order()):
            best_child = 0.0
            for child in self.workflow.successors(name):
                cand = self.mean_comm(name, child) + ranks[child]
                if cand > best_child:
                    best_child = cand
            ranks[name] = weight(name) + best_child
        return ranks

    def downward_ranks(self) -> Dict[str, float]:
        """Classical downward ranks (distance from the entry nodes)."""
        ranks: Dict[str, float] = {}
        for name in self.workflow.topological_order():
            best_parent = 0.0
            for parent in self.workflow.predecessors(name):
                cand = (
                    ranks[parent]
                    + self.mean_exec(parent)
                    + self.mean_comm(parent, name)
                )
                if cand > best_parent:
                    best_parent = cand
            ranks[name] = best_parent
        return ranks


class Scheduler(abc.ABC):
    """Interface every scheduling algorithm implements."""

    #: Short registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> Schedule:
        """Produce a full static schedule for the context's workflow."""

    def schedule_workflow(self, workflow: Workflow, cluster: Cluster, **ctx_kwargs) -> Schedule:
        """Convenience wrapper building the context inline."""
        return self.schedule(SchedulingContext(workflow, cluster, **ctx_kwargs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def eft_placement(
    context: SchedulingContext,
    schedule: Schedule,
    task_name: str,
    device: Device,
    allow_insertion: bool = True,
) -> tuple:
    """(start, finish) of the earliest finish of ``task_name`` on ``device``.

    The data-ready time accounts for predecessor finishes plus edge
    transfers plus initial-input staging; the start then respects the
    device timeline with optional insertion.
    """
    dst_uid = device.uid
    ready = context.staging_time(task_name, dst_uid)
    release = context.release_times.get(task_name, 0.0)
    if release > ready:
        ready = release
    for pred in context.workflow.predecessors(task_name):
        pa = schedule.assignments[pred]
        arrival = pa.finish + context.comm_time(pred, task_name, pa.device, dst_uid)
        if arrival > ready:
            ready = arrival
    duration = context.exec_time(task_name, dst_uid)
    start = schedule.timeline(dst_uid).earliest_fit(ready, duration, allow_insertion)
    return start, start + duration
