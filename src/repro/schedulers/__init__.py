"""Workflow scheduling algorithms.

The package contains the classical heterogeneous-scheduling baselines the
paper's family compares against, the schedule representation they produce,
and the shared estimation context they consult:

* :mod:`~repro.schedulers.schedule` — device timelines + schedules.
* :mod:`~repro.schedulers.base` — :class:`Scheduler` interface and the
  :class:`SchedulingContext` (execution/communication estimates).
* Static list schedulers: :class:`HeftScheduler`, :class:`CpopScheduler`,
  :class:`PeftScheduler`, :class:`MinMinScheduler`, :class:`MaxMinScheduler`,
  :class:`LevelWiseScheduler`.
* Immediate-mode heuristics: :class:`MctScheduler`, :class:`MetScheduler`,
  :class:`OlbScheduler`, :class:`RoundRobinScheduler`,
  :class:`RandomScheduler`.
* Metaheuristic: :class:`GeneticScheduler`.
* Energy-aware: :class:`EnergyAwareHeftScheduler`.

The paper's own scheduler (HDWS) lives in :mod:`repro.core`.
"""

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingError
from repro.schedulers.schedule import Assignment, DeviceTimeline, Schedule
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.cpop import CpopScheduler
from repro.schedulers.peft import PeftScheduler
from repro.schedulers.minmin import MinMinScheduler
from repro.schedulers.maxmin import MaxMinScheduler
from repro.schedulers.immediate import MctScheduler, MetScheduler, OlbScheduler
from repro.schedulers.roundrobin import RoundRobinScheduler
from repro.schedulers.randomsched import RandomScheduler
from repro.schedulers.levelwise import LevelWiseScheduler
from repro.schedulers.genetic import GeneticScheduler
from repro.schedulers.annealing import SimulatedAnnealingScheduler
from repro.schedulers.lookahead import LookaheadHeftScheduler
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler

#: All bundled schedulers by short name (HDWS registers itself on import of
#: repro.core; see repro.core.hdws).
REGISTRY = {
    "heft": HeftScheduler,
    "cpop": CpopScheduler,
    "peft": PeftScheduler,
    "minmin": MinMinScheduler,
    "maxmin": MaxMinScheduler,
    "mct": MctScheduler,
    "met": MetScheduler,
    "olb": OlbScheduler,
    "roundrobin": RoundRobinScheduler,
    "random": RandomScheduler,
    "levelwise": LevelWiseScheduler,
    "genetic": GeneticScheduler,
    "annealing": SimulatedAnnealingScheduler,
    "lookahead-heft": LookaheadHeftScheduler,
    "energy-heft": EnergyAwareHeftScheduler,
}


def by_name(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by short name."""
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(REGISTRY)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Scheduler",
    "SchedulingContext",
    "SchedulingError",
    "Assignment",
    "DeviceTimeline",
    "Schedule",
    "HeftScheduler",
    "CpopScheduler",
    "PeftScheduler",
    "MinMinScheduler",
    "MaxMinScheduler",
    "MctScheduler",
    "MetScheduler",
    "OlbScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "LevelWiseScheduler",
    "GeneticScheduler",
    "SimulatedAnnealingScheduler",
    "LookaheadHeftScheduler",
    "EnergyAwareHeftScheduler",
    "REGISTRY",
    "by_name",
]
