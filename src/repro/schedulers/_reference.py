"""Pure-Python reference kernels for the differential test harness.

The vectorized scheduler kernels in :mod:`repro.schedulers.base` and
:mod:`repro.schedulers.peft` replace these loop implementations on the hot
path, but the loops remain the *semantic definition* of each computation:

* every vectorized kernel must produce bit-identical results to its
  reference over arbitrary (workflow, cluster) inputs;
* ``tests/test_differential.py`` enforces that by fuzzing every scheduler
  in the zoo with :func:`reference_mode` on and off and diffing the
  resulting schedules exactly (device, start bits, finish bits).

Policy for contributors: **never** change a reference kernel and its
vectorized twin in the same review step.  Land the semantic change here
first (the differential suite then fails loudly against the stale fast
path), then update the vectorized kernel until the suite is green again.

The kernels take a :class:`~repro.schedulers.base.SchedulingContext` but
import nothing from it, so this module has no circular-import exposure.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

#: When True, SchedulingContext and the schedulers route every kernel
#: through this module instead of the vectorized fast path.
_ACTIVE = False


def reference_active() -> bool:
    """True while :func:`reference_mode` is in effect."""
    return _ACTIVE


@contextmanager
def reference_mode() -> Iterator[None]:
    """Context manager forcing the pure-Python reference kernels.

    Used by the differential harness; re-entrant and exception-safe.
    """
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = True
    try:
        yield
    finally:
        _ACTIVE = prev


# --------------------------------------------------------------------- #
# rank kernels                                                          #
# --------------------------------------------------------------------- #


def upward_ranks(context, use_best: bool = False) -> Dict[str, float]:
    """Classical upward ranks: rank_u(t) = w(t) + max_child(c + rank_u)."""
    ranks: Dict[str, float] = {}
    weight = context.best_exec if use_best else context.mean_exec
    for name in reversed(context.workflow.topological_order()):
        best_child = 0.0
        for child in context.workflow.successors(name):
            cand = context.mean_comm(name, child) + ranks[child]
            if cand > best_child:
                best_child = cand
        ranks[name] = weight(name) + best_child
    return ranks


def downward_ranks(context) -> Dict[str, float]:
    """Classical downward ranks (distance from the entry nodes)."""
    ranks: Dict[str, float] = {}
    for name in context.workflow.topological_order():
        best_parent = 0.0
        for parent in context.workflow.predecessors(name):
            cand = (
                ranks[parent]
                + context.mean_exec(parent)
                + context.mean_comm(parent, name)
            )
            if cand > best_parent:
                best_parent = cand
        ranks[name] = best_parent
    return ranks


# --------------------------------------------------------------------- #
# PEFT optimistic cost table                                            #
# --------------------------------------------------------------------- #


def optimistic_cost_table(context) -> Dict[str, Dict[str, float]]:
    """OCT[t][d] over eligible devices, computed bottom-up (see PEFT)."""
    wf = context.workflow
    table: Dict[str, Dict[str, float]] = {}
    for name in reversed(wf.topological_order()):
        row: Dict[str, float] = {}
        children = wf.successors(name)
        for device in context.eligible_devices(name):
            worst_child = 0.0
            for child in children:
                best_for_child = float("inf")
                for cdev in context.eligible_devices(child):
                    cost = table[child][cdev.uid] + context.exec_time(
                        child, cdev.uid
                    )
                    if cdev.uid != device.uid:
                        cost += context.mean_comm(name, child)
                    if cost < best_for_child:
                        best_for_child = cost
                if best_for_child > worst_child:
                    worst_child = best_for_child
            row[device.uid] = worst_child
        table[name] = row
    return table


# --------------------------------------------------------------------- #
# EFT placement                                                         #
# --------------------------------------------------------------------- #


def eft_placement(
    context, schedule, task_name: str, device, allow_insertion: bool = True
) -> tuple:
    """(start, finish) of the earliest finish of ``task_name`` on ``device``.

    The data-ready time accounts for predecessor finishes plus edge
    transfers plus initial-input staging; the start then respects the
    device timeline with optional insertion.  This scalar kernel is both
    the reference for the vectorized :func:`repro.schedulers.base.eft_scan`
    and the production path for single-device queries.
    """
    dst_uid = device.uid
    ready = context.staging_time(task_name, dst_uid)
    release = context.release_times.get(task_name, 0.0)
    if release > ready:
        ready = release
    for pred in context.workflow.predecessors(task_name):
        pa = schedule.assignments[pred]
        arrival = pa.finish + context.comm_time(pred, task_name, pa.device, dst_uid)
        if arrival > ready:
            ready = arrival
    duration = context.exec_time(task_name, dst_uid)
    start = schedule.timeline(dst_uid).earliest_fit(ready, duration, allow_insertion)
    return start, start + duration
