"""CPOP — Critical Path On a Processor (Topcuoglu et al., 2002).

Companion algorithm to HEFT: tasks are prioritized by the *sum* of upward
and downward rank; tasks on the critical path (those whose priority equals
the graph's critical-path length) are pinned to the single device that
minimizes the critical path's total execution time, while off-path tasks
fall back to earliest-finish-time placement.
"""

from __future__ import annotations

import heapq
from typing import Dict, Set

from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    eft_placement,
    eft_scan,
)
from repro.schedulers.schedule import Schedule


class CpopScheduler(Scheduler):
    """Critical-Path-On-a-Processor list scheduler."""

    name = "cpop"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Pin the critical path to its best single device, EFT the rest."""
        wf = context.workflow
        up = context.upward_ranks()
        down = context.downward_ranks()
        priority = {name: up[name] + down[name] for name in wf.tasks}
        cp_length = max(up[e] for e in wf.entry_tasks())

        critical: Set[str] = set()
        # Walk the critical path from the highest-priority entry task.
        current = max(
            wf.entry_tasks(), key=lambda n: (priority[n], n)
        )
        critical.add(current)
        while wf.successors(current):
            nxt = max(
                wf.successors(current), key=lambda n: (priority[n], n)
            )
            critical.add(nxt)
            current = nxt

        cp_device = self._best_cp_device(context, critical)

        # Priority-queue driven list scheduling over ready tasks.
        schedule = Schedule()
        indeg: Dict[str, int] = {
            n: len(wf.predecessors(n)) for n in wf.tasks
        }
        heap = [(-priority[n], n) for n, d in indeg.items() if d == 0]
        heapq.heapify(heap)
        scheduled = 0
        while heap:
            _p, name = heapq.heappop(heap)
            if name in critical and cp_device is not None:
                start, finish = eft_placement(context, schedule, name, cp_device)
                schedule.add(name, cp_device.uid, start, finish)
            else:
                best = None
                devices, starts, finishes = eft_scan(context, schedule, name)
                for device, start, finish in zip(devices, starts, finishes):
                    if best is None or finish < best[2] - 1e-15:
                        best = (device, start, finish)
                device, start, finish = best
                schedule.add(name, device.uid, start, finish)
            scheduled += 1
            for child in wf.successors(name):
                indeg[child] -= 1
                if indeg[child] == 0:
                    heapq.heappush(heap, (-priority[child], child))
        if scheduled != wf.n_tasks:  # pragma: no cover - defensive
            raise RuntimeError("CPOP failed to schedule every task (cycle?)")
        return schedule

    def _best_cp_device(self, context: SchedulingContext, critical: Set[str]):
        """Device minimizing total execution of the critical path.

        A device qualifying must be eligible for *every* critical task;
        when none is (common with mixed CPU-only/GPU-only paths), CPOP
        degenerates gracefully to pure EFT placement (returns None).
        """
        best_device = None
        best_total = float("inf")
        for device in context.cluster.alive_devices():
            total = 0.0
            ok = True
            for name in critical:
                eligible = {d.uid for d in context.eligible_devices(name)}
                if device.uid not in eligible:
                    ok = False
                    break
                total += context.exec_time(name, device.uid)
            if ok and total < best_total:
                best_total = total
                best_device = device
        return best_device
