"""Level-by-level scheduling.

Groups tasks by DAG depth and schedules each level as an independent bag
using longest-processing-time-first EFT within the level.  Levels act as
barriers in the *ordering* only (placements still respect exact
data-ready times), which mimics how bulk-synchronous workflow engines
dispatch stage by stage.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.schedule import Schedule


class LevelWiseScheduler(Scheduler):
    """Stage-by-stage LPT + earliest-finish placement."""

    name = "levelwise"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Schedule levels in order, longest tasks first within a level."""
        schedule = Schedule()
        for level in context.workflow.levels():
            ordered = sorted(
                level, key=lambda n: (-context.mean_exec(n), n)
            )
            for name in ordered:
                best = None
                for device in context.eligible_devices(name):
                    start, finish = eft_placement(context, schedule, name, device)
                    if best is None or finish < best[2] - 1e-15:
                        best = (device, start, finish)
                device, start, finish = best
                schedule.add(name, device.uid, start, finish)
        return schedule
