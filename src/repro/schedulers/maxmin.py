"""Max-Min batch heuristic.

Identical machinery to Min-Min but commits the ready task whose *best*
completion time is largest — front-loading long tasks so they overlap the
sea of short ones.  Often beats Min-Min on workflows with a few dominant
tasks (SIPHT's Findterm) and loses on uniform bags.
"""

from __future__ import annotations

from repro.schedulers.minmin import MinMinScheduler


class MaxMinScheduler(MinMinScheduler):
    """Batch-mode Max-Min over the ready frontier."""

    name = "maxmin"
    take_max = True
