"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

The canonical list scheduler for heterogeneous platforms and the primary
baseline of every system in this paper's family:

1. Compute upward ranks with mean execution and mean communication costs.
2. Walk tasks in decreasing rank order.
3. Place each task on the device minimizing its earliest finish time,
   using insertion-based gap search.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler, SchedulingContext, eft_scan
from repro.schedulers.schedule import Schedule


class HeftScheduler(Scheduler):
    """Classical insertion-based HEFT."""

    name = "heft"

    def __init__(self, allow_insertion: bool = True) -> None:
        self.allow_insertion = allow_insertion

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Rank tasks, then greedily minimize earliest finish time."""
        ranks = context.upward_ranks()
        # Tie-break equal ranks by topological index: zero-weight tasks can
        # tie with a parent, and name order would then break precedence.
        topo_index = {n: i for i, n in enumerate(context.workflow.topological_order())}
        order = sorted(
            context.workflow.tasks,
            key=lambda name: (-ranks[name], topo_index[name]),
        )
        schedule = Schedule()
        for name in order:
            best = None
            devices, starts, finishes = eft_scan(
                context, schedule, name, self.allow_insertion
            )
            for device, start, finish in zip(devices, starts, finishes):
                if best is None or finish < best[2] - 1e-15:
                    best = (device, start, finish)
            device, start, finish = best
            schedule.add(name, device.uid, start, finish)
        return schedule
