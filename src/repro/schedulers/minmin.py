"""Min-Min batch heuristic adapted to workflows.

At each step, consider every *ready* task (all predecessors scheduled),
compute its best earliest completion time over eligible devices, and commit
the (task, device) pair with the smallest such completion time.  Min-Min
finishes short tasks first, which maximizes early throughput but starves
the critical path — exactly the failure mode the deep-chained Epigenomics
workflow exposes (T1).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    eft_placement,
    eft_scan,
)
from repro.schedulers.schedule import Schedule


class MinMinScheduler(Scheduler):
    """Batch-mode Min-Min over the ready frontier."""

    name = "minmin"

    #: Pick the candidate with the minimum best-completion-time.
    take_max = False

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Repeatedly commit the extremal (task, device) ready pair.

        The frontier re-evaluation is incremental: a ready task's data-ready
        times are fixed (all predecessors are already placed), so committing
        one placement can only change its candidates *on the committed
        device*.  Each round therefore refreshes exactly one (task, device)
        cell per surviving cached task instead of rescanning every device —
        the values are identical to a full rescan, so the selection (with
        its epsilon tie-breaks) is unchanged.
        """
        wf = context.workflow
        schedule = Schedule()
        indeg: Dict[str, int] = {n: len(wf.predecessors(n)) for n in wf.tasks}
        ready: Set[str] = {n for n, d in indeg.items() if d == 0}

        # name -> [devices, starts, finishes, uid->position, best]
        cache: Dict[str, list] = {}
        dirty_uid = None
        while ready:
            chosen = None
            for name in sorted(ready):
                entry = cache.get(name)
                stale = True
                if entry is None:
                    devices, starts, finishes = eft_scan(context, schedule, name)
                    entry = [
                        devices,
                        starts,
                        finishes,
                        {d.uid: i for i, d in enumerate(devices)},
                        None,
                    ]
                    cache[name] = entry
                else:
                    devices, starts, finishes = entry[0], entry[1], entry[2]
                    i = entry[3].get(dirty_uid)
                    if i is not None:
                        starts[i], finishes[i] = eft_placement(
                            context, schedule, name, devices[i]
                        )
                    else:
                        # Nothing about this candidate row changed since
                        # its best was last computed — reuse it.
                        stale = False
                if stale:
                    best = None
                    for device, start, finish in zip(devices, starts, finishes):
                        if best is None or finish < best[2] - 1e-15:
                            best = (device, start, finish)
                    entry[4] = best
                else:
                    best = entry[4]
                if chosen is None:
                    better = True
                elif self.take_max:
                    better = best[2] > chosen[3] + 1e-15
                else:
                    better = best[2] < chosen[3] - 1e-15
                if better:
                    chosen = (name, best[0], best[1], best[2])
            name, device, start, finish = chosen
            schedule.add(name, device.uid, start, finish)
            dirty_uid = device.uid
            cache.pop(name, None)
            ready.discard(name)
            for child in wf.successors(name):
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.add(child)
        return schedule
