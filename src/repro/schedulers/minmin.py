"""Min-Min batch heuristic adapted to workflows.

At each step, consider every *ready* task (all predecessors scheduled),
compute its best earliest completion time over eligible devices, and commit
the (task, device) pair with the smallest such completion time.  Min-Min
finishes short tasks first, which maximizes early throughput but starves
the critical path — exactly the failure mode the deep-chained Epigenomics
workflow exposes (T1).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.schedule import Schedule


class MinMinScheduler(Scheduler):
    """Batch-mode Min-Min over the ready frontier."""

    name = "minmin"

    #: Pick the candidate with the minimum best-completion-time.
    take_max = False

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Repeatedly commit the extremal (task, device) ready pair."""
        wf = context.workflow
        schedule = Schedule()
        indeg: Dict[str, int] = {n: len(wf.predecessors(n)) for n in wf.tasks}
        ready: Set[str] = {n for n, d in indeg.items() if d == 0}

        while ready:
            chosen = None
            for name in sorted(ready):
                best = None
                for device in context.eligible_devices(name):
                    start, finish = eft_placement(context, schedule, name, device)
                    if best is None or finish < best[2] - 1e-15:
                        best = (device, start, finish)
                if chosen is None:
                    better = True
                elif self.take_max:
                    better = best[2] > chosen[3] + 1e-15
                else:
                    better = best[2] < chosen[3] - 1e-15
                if better:
                    chosen = (name, best[0], best[1], best[2])
            name, device, start, finish = chosen
            schedule.add(name, device.uid, start, finish)
            ready.discard(name)
            for child in wf.successors(name):
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.add(child)
        return schedule
