"""Lookahead HEFT (Bittencourt, Sakellariou & Madeira, 2010).

HEFT with one *tentative* planning step: to score placing task t on device
d, actually place it there on a scratch copy of the partial schedule, then
run EFT placement for each of t's children and take the worst child finish
as the score.  This sees one level of consequences for real (unlike PEFT's
precomputed optimistic table), at a device-squared scheduling cost — the
classic quality/overhead rung between HEFT and full search (T5 shows the
price).
"""

from __future__ import annotations

from typing import List

from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.schedule import Schedule


class LookaheadHeftScheduler(Scheduler):
    """HEFT with one level of tentative-placement lookahead."""

    name = "lookahead-heft"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Rank like HEFT; score candidates by their worst child's EFT."""
        wf = context.workflow
        ranks = context.upward_ranks()
        topo_index = {n: i for i, n in enumerate(wf.topological_order())}
        order = sorted(wf.tasks, key=lambda n: (-ranks[n], topo_index[n]))

        schedule = Schedule()
        for name in order:
            children = wf.successors(name)
            best = None
            for device in context.eligible_devices(name):
                start, finish = eft_placement(context, schedule, name, device)
                if children:
                    score = self._worst_child_eft(
                        context, schedule, name, device, start, finish,
                        children,
                    )
                else:
                    score = finish
                cand = (score, finish, device.uid, device, start)
                if best is None or cand[:3] < best[:3]:
                    best = cand
            _score, finish, _uid, device, start = best
            schedule.add(name, device.uid, start, finish)
        return schedule

    def _worst_child_eft(
        self,
        context: SchedulingContext,
        schedule: Schedule,
        name: str,
        device,
        start: float,
        finish: float,
        children: List[str],
    ) -> float:
        """Tentatively place ``name`` and EFT each child on its best device.

        Children whose other parents are not scheduled yet are priced with
        the available information only (their missing parents contribute
        nothing) — the standard lookahead-HEFT approximation.
        """
        scratch = _copy_schedule(schedule)
        scratch.add(name, device.uid, start, finish)
        worst = finish
        for child in children:
            best_child = float("inf")
            for cdev in context.eligible_devices(child):
                ready = context.staging_time(child, cdev.uid)
                for pred in context.workflow.predecessors(child):
                    pa = scratch.assignments.get(pred)
                    if pa is None:
                        continue  # unscheduled parent: no information yet
                    arrival = pa.finish + context.comm_time(
                        pred, child, pa.device, cdev.uid
                    )
                    if arrival > ready:
                        ready = arrival
                duration = context.exec_time(child, cdev.uid)
                cstart = scratch.timeline(cdev.uid).earliest_fit(ready, duration)
                if cstart + duration < best_child:
                    best_child = cstart + duration
            if best_child > worst:
                worst = best_child
        return worst


def _copy_schedule(schedule: Schedule) -> Schedule:
    """A cheap structural copy used for tentative placements."""
    clone = Schedule()
    for a in schedule.assignments.values():
        clone.add(a.task, a.device, a.start, a.finish)
    clone.dvfs_choice.update(schedule.dvfs_choice)
    return clone
