"""Schedule representation: assignments plus per-device timelines.

A :class:`Schedule` is the contract between schedulers and the executor —
which device runs each task and the *estimated* start/finish times the
scheduler planned for.  Each device owns a :class:`DeviceTimeline` of
non-overlapping intervals supporting insertion-based gap search (the
"insertion policy" of HEFT-class algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.intervals import IntervalError, IntervalIndex


@dataclass(frozen=True)
class Assignment:
    """One task's planned placement."""

    task: str
    device: str
    start: float
    finish: float

    def __post_init__(self) -> None:
        if self.finish < self.start:
            raise ValueError(
                f"assignment for {self.task!r} ends before it starts"
            )

    @property
    def duration(self) -> float:
        """Planned execution time."""
        return self.finish - self.start


class DeviceTimeline:
    """Sorted, non-overlapping occupation intervals on one device slot set.

    The timeline models a *serial* device (one task at a time), matching the
    single-slot devices used throughout the evaluation; multi-slot devices
    are represented by one timeline per slot at the scheduler layer.
    """

    def __init__(self, device: str) -> None:
        self.device = device
        self._index = IntervalIndex()

    def __len__(self) -> int:
        return len(self._index)

    @property
    def intervals(self) -> List[Tuple[float, float, str]]:
        """(start, end, task) triples in time order."""
        return self._index.intervals

    def free_at(self) -> float:
        """End of the last occupied interval (0 when empty)."""
        return self._index.last_end()

    def earliest_fit(
        self, ready: float, duration: float, allow_insertion: bool = True
    ) -> float:
        """Earliest start >= ready where ``duration`` fits.

        With insertion enabled the search considers gaps between existing
        intervals (bisect-indexed — see
        :meth:`repro.sim.intervals.IntervalIndex.earliest_fit`); otherwise
        only the tail of the timeline.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return self._index.earliest_fit(ready, duration, allow_insertion)

    def add(self, start: float, end: float, task: str) -> None:
        """Occupy [start, end]; raises on overlap with an existing interval."""
        if end < start:
            raise ValueError(f"interval reversed for task {task!r}")
        try:
            self._index.add(start, end, task)
        except IntervalError:
            clash = self._index.overlapping(start, end)
            other = clash[0][2] if clash else "<unknown>"
            raise ValueError(
                f"task {task!r} overlaps {other!r} on device {self.device}"
            ) from None

    def busy_time(self) -> float:
        """Total occupied seconds."""
        return sum(e - s for s, e, _t in self._index)


class Schedule:
    """A complete mapping of workflow tasks onto cluster devices."""

    def __init__(self) -> None:
        self.assignments: Dict[str, Assignment] = {}
        self.timelines: Dict[str, DeviceTimeline] = {}
        #: Optional per-task DVFS state names chosen by energy-aware policies.
        self.dvfs_choice: Dict[str, str] = {}

    def timeline(self, device: str) -> DeviceTimeline:
        """The (possibly new) timeline for a device uid."""
        if device not in self.timelines:
            self.timelines[device] = DeviceTimeline(device)
        return self.timelines[device]

    def add(self, task: str, device: str, start: float, finish: float) -> Assignment:
        """Record a placement and occupy the device timeline."""
        if task in self.assignments:
            raise ValueError(f"task {task!r} already scheduled")
        a = Assignment(task, device, start, finish)
        self.timeline(device).add(start, finish, task)
        self.assignments[task] = a
        return a

    def device_of(self, task: str) -> str:
        """Device uid the task was placed on."""
        return self.assignments[task].device

    def finish_of(self, task: str) -> float:
        """Planned finish time of a task."""
        return self.assignments[task].finish

    @property
    def makespan(self) -> float:
        """Planned overall completion time (0 for an empty schedule)."""
        if not self.assignments:
            return 0.0
        return max(a.finish for a in self.assignments.values())

    @property
    def n_tasks(self) -> int:
        """Number of scheduled tasks."""
        return len(self.assignments)

    def tasks_on(self, device: str) -> List[str]:
        """Tasks planned on a device, in start order."""
        tl = self.timelines.get(device)
        if tl is None:
            return []
        return [t for _s, _e, t in tl.intervals]

    def devices_used(self) -> List[str]:
        """Device uids with at least one task."""
        return [d for d, tl in self.timelines.items() if len(tl) > 0]

    def validate_against(self, workflow) -> None:
        """Check completeness and precedence feasibility.

        Every workflow task must be scheduled, and no task may start before
        every predecessor's planned finish (communication delays may push
        starts later; they can never allow earlier starts).
        """
        missing = set(workflow.tasks) - set(self.assignments)
        if missing:
            raise ValueError(f"schedule misses tasks: {sorted(missing)[:5]}...")
        extra = set(self.assignments) - set(workflow.tasks)
        if extra:
            raise ValueError(f"schedule has unknown tasks: {sorted(extra)[:5]}...")
        for name, a in self.assignments.items():
            for pred in workflow.predecessors(name):
                if self.assignments[pred].finish > a.start + 1e-9:
                    raise ValueError(
                        f"precedence violation: {name!r} starts at {a.start:.6g} "
                        f"before predecessor {pred!r} finishes at "
                        f"{self.assignments[pred].finish:.6g}"
                    )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"schedule: {self.n_tasks} tasks on {len(self.devices_used())} "
            f"devices, makespan {self.makespan:.2f}s"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Schedule tasks={self.n_tasks} makespan={self.makespan:.3f}>"
