"""Immediate-mode mapping heuristics: MCT, MET, OLB.

The classical trio from the heterogeneous-computing mapping literature
(Braun et al.): tasks are taken one at a time in a fixed topological order
and mapped immediately, with no batch reconsideration.

* **MCT** (Minimum Completion Time): device minimizing this task's
  completion time — a decent greedy baseline.
* **MET** (Minimum Execution Time): device minimizing raw execution time,
  ignoring availability — piles everything onto the fastest device class.
* **OLB** (Opportunistic Load Balancing): earliest-available device,
  ignoring execution time — balances load but wastes heterogeneity.
"""

from __future__ import annotations

from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    eft_placement,
    eft_scan,
)
from repro.schedulers.schedule import Schedule


class MctScheduler(Scheduler):
    """Minimum Completion Time immediate-mode mapper."""

    name = "mct"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Map tasks in topological order to their min-completion device."""
        schedule = Schedule()
        for name in context.workflow.topological_order():
            best = None
            devices, starts, finishes = eft_scan(context, schedule, name)
            for device, start, finish in zip(devices, starts, finishes):
                if best is None or finish < best[2] - 1e-15:
                    best = (device, start, finish)
            device, start, finish = best
            schedule.add(name, device.uid, start, finish)
        return schedule


class MetScheduler(Scheduler):
    """Minimum Execution Time immediate-mode mapper (availability-blind)."""

    name = "met"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Map each task to its fastest device, then fit on its timeline."""
        schedule = Schedule()
        for name in context.workflow.topological_order():
            device = min(
                context.eligible_devices(name),
                key=lambda d: (context.exec_time(name, d.uid), d.uid),
            )
            start, finish = eft_placement(context, schedule, name, device)
            schedule.add(name, device.uid, start, finish)
        return schedule


class OlbScheduler(Scheduler):
    """Opportunistic Load Balancing (execution-time-blind)."""

    name = "olb"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Map each task to the earliest-available eligible device."""
        schedule = Schedule()
        for name in context.workflow.topological_order():
            device = min(
                context.eligible_devices(name),
                key=lambda d: (schedule.timeline(d.uid).free_at(), d.uid),
            )
            start, finish = eft_placement(
                context, schedule, name, device, allow_insertion=False
            )
            schedule.add(name, device.uid, start, finish)
        return schedule
