"""Simulated-annealing metaheuristic scheduler.

Same encoding as the GA (a task→device assignment vector decoded in
upward-rank order through insertion EFT) but a single-chain annealer:
propose one reassignment, accept improvements always and regressions with
probability exp(-delta/T), cool geometrically.  HEFT-seeded like the GA,
so it is an anytime improver with a different exploration profile —
annealing escapes local packings the GA's crossover tends to preserve.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.schedule import Schedule


class SimulatedAnnealingScheduler(Scheduler):
    """Single-chain simulated annealing over placement vectors."""

    name = "annealing"

    def __init__(
        self,
        iterations: int = 400,
        initial_temperature: float = 0.10,
        cooling: float = 0.995,
        seed: int = 0,
    ) -> None:
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Anneal from the HEFT assignment; return the best decoded plan."""
        rng = np.random.default_rng(self.seed)
        ranks = context.upward_ranks()
        topo_index = {
            n: i for i, n in enumerate(context.workflow.topological_order())
        }
        tasks = sorted(
            context.workflow.tasks, key=lambda n: (-ranks[n], topo_index[n])
        )
        eligible: Dict[str, List[str]] = {
            name: [d.uid for d in context.eligible_devices(name)]
            for name in tasks
        }

        heft = HeftScheduler().schedule(context)
        genes = [eligible[t].index(heft.device_of(t)) for t in tasks]

        def decode(g: List[int]) -> Schedule:
            schedule = Schedule()
            for i, name in enumerate(tasks):
                uid = eligible[name][g[i] % len(eligible[name])]
                device = context.cluster.device(uid)
                start, finish = eft_placement(context, schedule, name, device)
                schedule.add(name, uid, start, finish)
            return schedule

        current = decode(genes)
        current_cost = current.makespan
        best_genes = list(genes)
        best_cost = current_cost

        # Temperature is relative to the HEFT makespan so the same settings
        # behave across workloads of different scale.
        temperature = self.initial_temperature * max(current_cost, 1e-9)
        for _ in range(self.iterations):
            i = int(rng.integers(0, len(tasks)))
            if len(eligible[tasks[i]]) < 2:
                temperature *= self.cooling
                continue
            old = genes[i]
            new = int(rng.integers(0, len(eligible[tasks[i]])))
            if new == old:
                temperature *= self.cooling
                continue
            genes[i] = new
            cand = decode(genes)
            delta = cand.makespan - current_cost
            if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-12)
            ):
                current_cost = cand.makespan
                if current_cost < best_cost:
                    best_cost = current_cost
                    best_genes = list(genes)
            else:
                genes[i] = old
            temperature *= self.cooling

        return decode(best_genes)
