"""PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa, 2014).

Extends HEFT with one level of lookahead via the Optimistic Cost Table:
``OCT[t][d]`` is the optimistic remaining path length if ``t`` runs on
``d``, assuming every descendant also gets its best device.  Tasks are
ranked by their mean OCT row and placed on the device minimizing
``EFT + OCT`` rather than bare EFT, which avoids greedily grabbing a fast
device that dooms a child.
"""

from __future__ import annotations

import heapq
from typing import Dict

import numpy as np

from repro.schedulers import _reference
from repro.schedulers.base import Scheduler, SchedulingContext, eft_scan
from repro.schedulers.schedule import Schedule


def optimistic_cost_table(context: SchedulingContext) -> Dict[str, Dict[str, float]]:
    """OCT[t][d] over eligible devices, computed bottom-up.

    ``OCT[t][d]`` is the optimistic remaining path length below ``t`` if it
    runs on ``d`` and every descendant gets its best device.  Exit tasks
    have an all-zero row.  Shared by PEFT and by HDWS's lookahead term.
    Computed by the vectorized kernel unless reference mode is active.
    """
    if _reference.reference_active():
        return _reference.optimistic_cost_table(context)
    return _vec_optimistic_cost_table(context)


def _vec_optimistic_cost_table(
    context: SchedulingContext,
) -> Dict[str, Dict[str, float]]:
    """Vectorized OCT via the min / excluded-min trick.

    For a child placed anywhere, ``best_for_child(p) = min(A_p,
    excl_min(p) + comm)`` where ``A_d = OCT[child][d] + exec(child, d)``
    and ``excl_min(p)`` is the minimum of ``A`` over devices other than
    ``p`` — the overall minimum ``m1``, unless ``p`` is its *unique*
    argmin, in which case the second minimum ``m2``.  Both branches use
    the exact values the scalar reference accumulates (float min/max are
    order-independent and ``min(A + c) == min(A) + c`` exactly because
    float addition is monotone), so the table is bit-identical.
    """
    wf = context.workflow
    uids, _index = context._device_table()
    n_dev = len(uids)
    rows: Dict[str, np.ndarray] = {}
    for name in reversed(wf.topological_order()):
        gidx, _exec_arr, _uids = context._oct_task_arrays(name)
        worst = np.zeros(len(gidx))
        for child in wf.successors(name):
            cgidx, cexec, _cuids = context._oct_task_arrays(child)
            a = rows[child] + cexec
            k = int(np.argmin(a))
            m1 = float(a[k])
            mc = context.mean_comm(name, child)
            a_full = np.full(n_dev, np.inf)
            a_full[cgidx] = a
            excl_full = np.full(n_dev, m1)
            if np.count_nonzero(a == m1) == 1:
                m2 = float(np.min(np.delete(a, k))) if len(a) > 1 else np.inf
                excl_full[cgidx[k]] = m2
            best_full = np.minimum(a_full, excl_full + mc)
            np.maximum(worst, best_full[gidx], out=worst)
        rows[name] = worst
    out: Dict[str, Dict[str, float]] = {}
    for name, worst in rows.items():
        _g, _e, task_uids = context._oct_task_arrays(name)
        out[name] = dict(zip(task_uids, worst.tolist()))
    return out


class PeftScheduler(Scheduler):
    """Lookahead list scheduler based on the Optimistic Cost Table."""

    name = "peft"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Build the OCT, rank by its row means, place by EFT + OCT."""
        wf = context.workflow
        oct_table = optimistic_cost_table(context)
        rank = {
            name: sum(row.values()) / len(row)
            for name, row in oct_table.items()
        }

        schedule = Schedule()
        indeg: Dict[str, int] = {n: len(wf.predecessors(n)) for n in wf.tasks}
        heap = [(-rank[n], n) for n, d in indeg.items() if d == 0]
        heapq.heapify(heap)
        while heap:
            _r, name = heapq.heappop(heap)
            best = None
            oct_row = oct_table[name]
            devices, starts, finishes = eft_scan(context, schedule, name)
            for device, start, finish in zip(devices, starts, finishes):
                score = finish + oct_row[device.uid]
                if best is None or score < best[3] - 1e-15:
                    best = (device, start, finish, score)
            device, start, finish, _score = best
            schedule.add(name, device.uid, start, finish)
            for child in wf.successors(name):
                indeg[child] -= 1
                if indeg[child] == 0:
                    heapq.heappush(heap, (-rank[child], child))
        return schedule

    def _optimistic_cost_table(self, context: SchedulingContext):
        """Back-compat alias for :func:`optimistic_cost_table`."""
        return optimistic_cost_table(context)
