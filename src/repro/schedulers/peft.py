"""PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa, 2014).

Extends HEFT with one level of lookahead via the Optimistic Cost Table:
``OCT[t][d]`` is the optimistic remaining path length if ``t`` runs on
``d``, assuming every descendant also gets its best device.  Tasks are
ranked by their mean OCT row and placed on the device minimizing
``EFT + OCT`` rather than bare EFT, which avoids greedily grabbing a fast
device that dooms a child.
"""

from __future__ import annotations

import heapq
from typing import Dict

from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.schedule import Schedule


def optimistic_cost_table(context: SchedulingContext) -> Dict[str, Dict[str, float]]:
    """OCT[t][d] over eligible devices, computed bottom-up.

    ``OCT[t][d]`` is the optimistic remaining path length below ``t`` if it
    runs on ``d`` and every descendant gets its best device.  Exit tasks
    have an all-zero row.  Shared by PEFT and by HDWS's lookahead term.
    """
    wf = context.workflow
    table: Dict[str, Dict[str, float]] = {}
    for name in reversed(wf.topological_order()):
        row: Dict[str, float] = {}
        children = wf.successors(name)
        for device in context.eligible_devices(name):
            worst_child = 0.0
            for child in children:
                best_for_child = float("inf")
                for cdev in context.eligible_devices(child):
                    cost = table[child][cdev.uid] + context.exec_time(
                        child, cdev.uid
                    )
                    if cdev.uid != device.uid:
                        cost += context.mean_comm(name, child)
                    if cost < best_for_child:
                        best_for_child = cost
                if best_for_child > worst_child:
                    worst_child = best_for_child
            row[device.uid] = worst_child
        table[name] = row
    return table


class PeftScheduler(Scheduler):
    """Lookahead list scheduler based on the Optimistic Cost Table."""

    name = "peft"

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Build the OCT, rank by its row means, place by EFT + OCT."""
        wf = context.workflow
        oct_table = optimistic_cost_table(context)
        rank = {
            name: sum(row.values()) / len(row)
            for name, row in oct_table.items()
        }

        schedule = Schedule()
        indeg: Dict[str, int] = {n: len(wf.predecessors(n)) for n in wf.tasks}
        heap = [(-rank[n], n) for n, d in indeg.items() if d == 0]
        heapq.heapify(heap)
        while heap:
            _r, name = heapq.heappop(heap)
            best = None
            for device in context.eligible_devices(name):
                start, finish = eft_placement(context, schedule, name, device)
                score = finish + oct_table[name][device.uid]
                if best is None or score < best[3] - 1e-15:
                    best = (device, start, finish, score)
            device, start, finish, _score = best
            schedule.add(name, device.uid, start, finish)
            for child in wf.successors(name):
                indeg[child] -= 1
                if indeg[child] == 0:
                    heapq.heappush(heap, (-rank[child], child))
        return schedule

    def _optimistic_cost_table(self, context: SchedulingContext):
        """Back-compat alias for :func:`optimistic_cost_table`."""
        return optimistic_cost_table(context)
