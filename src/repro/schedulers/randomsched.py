"""Uniform-random device assignment — the statistical floor.

Each task gets a uniformly random eligible device.  Reported alongside the
heuristics to show how much structure-awareness (rather than mere
legality) buys.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.schedule import Schedule


class RandomScheduler(Scheduler):
    """Random eligible placement, seeded for reproducibility."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Place each task on a uniformly random eligible device."""
        rng = np.random.default_rng(self.seed)
        schedule = Schedule()
        for name in context.workflow.topological_order():
            devices = context.eligible_devices(name)
            device = devices[int(rng.integers(0, len(devices)))]
            start, finish = eft_placement(
                context, schedule, name, device, allow_insertion=False
            )
            schedule.add(name, device.uid, start, finish)
        return schedule
