"""On-disk content-addressed cache of simulation records.

Entries are sharded two-level (``ab/abcdef....json``) so a campaign of
thousands of cells never piles one directory high.  Writes are atomic
(temp file + ``os.replace``) so a crashed or parallel writer can never
leave a half-written entry; corrupt or unreadable entries read as misses
and are overwritten on the next put.

Invalidation is automatic and content-based: the key hashes the full
workflow document, cluster spec, scheduler params and run configuration,
so editing any of them simply addresses a different entry.  ``clear()``
exists for reclaiming disk, not for correctness.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class CacheStats:
    """Hit/miss/put counters for one runner lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
        }


@dataclass
class ResultCache:
    """Content-addressed JSON store rooted at ``root``."""

    root: str
    stats: CacheStats = field(default_factory=CacheStats)

    def path_for(self, key: str) -> str:
        """Entry path for a hex key (two-level sharding)."""
        if len(key) < 3:
            raise ValueError(f"cache key too short: {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record dict, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            record = entry["record"]
            if entry.get("key") != key or not isinstance(record, dict):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            # Corrupt entry: treat as a miss; the re-run will overwrite it.
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically store ``record`` under ``key``."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = json.dumps({"key": key, "record": record}, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir):
                count += sum(
                    1 for f in os.listdir(shard_dir)
                    if f.endswith(".json") and not f.startswith(".tmp-")
                )
        return count

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for fname in os.listdir(shard_dir):
                if fname.endswith(".json"):
                    try:
                        os.unlink(os.path.join(shard_dir, fname))
                        removed += 1
                    except OSError:
                        pass
        return removed
