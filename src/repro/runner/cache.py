"""On-disk content-addressed cache of simulation records.

Records are appended to *packed shard files* (JSON lines under
``packs/``) and addressed through a single append-only manifest,
``index.jsonl``: one header line carrying the schema version, then one
line per entry mapping ``key -> (pack file, byte offset, byte length)``.
Warm-starting a campaign therefore costs one index read plus one
sequential read per pack — not one ``open()`` per cell — and the entry
count is a dict length, not a directory walk.

Durability model: a pack line is written (and flushed) before its
manifest line, and manifest lines are batched (``sync_every``) and
force-flushed by :meth:`sync` / :meth:`close` — the campaign runner
syncs after every batch and on the error path.  A crash can therefore
lose at most the entries since the last sync; a truncated pack or
manifest line is skipped on load and the affected cells simply
re-simulate.  This is also the checkpoint/resume story: completed-cell
keys live in the manifest, so a killed campaign warm-starts from exactly
the cells it finished.

Entries written by pre-pack versions of this cache (one
``ab/<key>.json`` file per record) remain readable: keys absent from the
manifest fall back to the per-file path.

Invalidation is automatic and content-based: the key hashes the full
workflow document, cluster spec, scheduler params and run configuration,
so editing any of them simply addresses a different entry.  ``clear()``
and :meth:`evict_to` exist for reclaiming disk, not for correctness.

Concurrent writers (two campaign processes sharing a cache root) are
safe but not coordinated: each process appends to its own pack file, and
manifest appends are single ``write()`` calls on an ``O_APPEND`` handle.
A process with a stale in-memory index may re-simulate a cell another
process already stored; the duplicate manifest entry is harmless (last
line wins on load).
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.runner.record import is_failure_record

#: Manifest header schema; bump on incompatible index-layout changes.
INDEX_SCHEMA = "repro.cache-index/v1"

#: Manifest and pack file names.
INDEX_NAME = "index.jsonl"
PACKS_DIR = "packs"


@dataclass
class CacheStats:
    """Hit/miss/put counters for one runner lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0
    #: Hits that recalled a persisted :class:`CellFailure` (quarantined
    #: cells carried over from a previous run) rather than a record.
    failure_hits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
            "failure_hits": self.failure_hits,
        }

    def count_hit(self, record: Dict[str, Any]) -> None:
        """Fold one successful lookup in, failure-aware."""
        self.hits += 1
        if is_failure_record(record):
            self.failure_hits += 1


@dataclass
class ResultCache:
    """Shard-indexed, content-addressed JSON store rooted at ``root``."""

    root: str
    stats: CacheStats = field(default_factory=CacheStats)
    #: Pending manifest lines are appended to disk every this many puts
    #: (plus on :meth:`sync` / :meth:`close` / batch boundaries).
    sync_every: int = 256
    #: Rotate the append pack when it grows past this size, bounding the
    #: granularity of :meth:`evict_to`.
    pack_max_bytes: int = 4 << 20

    # -- internal state (not part of the dataclass API) ---------------- #
    _index: Optional[Dict[str, Tuple[str, int, int]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _pending: List[str] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _pack_rel: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )
    _pack_fh: Optional[io.BufferedWriter] = field(
        default=None, init=False, repr=False, compare=False
    )
    _index_fh: Optional[io.BufferedWriter] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # paths                                                              #
    # ------------------------------------------------------------------ #

    def path_for(self, key: str) -> str:
        """Legacy per-file entry path for a hex key (two-level sharding)."""
        if len(key) < 3:
            raise ValueError(f"cache key too short: {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    @property
    def packs_path(self) -> str:
        return os.path.join(self.root, PACKS_DIR)

    # ------------------------------------------------------------------ #
    # manifest                                                           #
    # ------------------------------------------------------------------ #

    def _load_index(self) -> Dict[str, Tuple[str, int, int]]:
        """The key -> (pack, offset, length) map, loaded once per process."""
        if self._index is not None:
            return self._index
        index: Dict[str, Tuple[str, int, int]] = {}
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                for lineno, line in enumerate(fh):
                    try:
                        entry = json.loads(line)
                        if lineno == 0:
                            if entry.get("schema") != INDEX_SCHEMA:
                                raise ValueError("unknown index schema")
                            continue
                        index[entry["k"]] = (
                            entry["p"], int(entry["o"]), int(entry["n"])
                        )
                    except (ValueError, KeyError, TypeError):
                        # Truncated/corrupt line (crashed writer): the
                        # entry is lost, the cell will re-simulate.
                        self.stats.errors += 1
        except FileNotFoundError:
            pass
        except OSError:
            self.stats.errors += 1
        self._index = index
        return index

    def sync(self) -> None:
        """Append pending manifest lines to disk (the checkpoint step)."""
        if not self._pending:
            return
        if self._pack_fh is not None:
            self._pack_fh.flush()
        if self._index_fh is None:
            os.makedirs(self.root, exist_ok=True)
            fresh = (
                not os.path.exists(self.index_path)
                or os.path.getsize(self.index_path) == 0
            )
            self._index_fh = open(self.index_path, "ab")
            if fresh:
                header = json.dumps({"schema": INDEX_SCHEMA}) + "\n"
                self._index_fh.write(header.encode("utf-8"))
        self._index_fh.write("".join(self._pending).encode("utf-8"))
        self._index_fh.flush()
        self._pending.clear()

    def close(self) -> None:
        """Flush the manifest and release file handles (reopenable)."""
        self.sync()
        if self._pack_fh is not None:
            self._pack_fh.close()
            self._pack_fh = None
            self._pack_rel = None
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # reads                                                              #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _parse_entry(data: bytes, key: str) -> Dict[str, Any]:
        entry = json.loads(data)
        record = entry["record"]
        if entry.get("key") != key or not isinstance(record, dict):
            raise ValueError("malformed cache entry")
        return record

    def _read_your_writes(self) -> None:
        """Make this process's buffered pack appends visible to reads."""
        if self._pack_fh is not None:
            self._pack_fh.flush()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record dict, or None on miss/corruption."""
        self._read_your_writes()
        located = self._load_index().get(key)
        if located is None:
            return self._legacy_get(key)
        pack_rel, offset, length = located
        try:
            with open(os.path.join(self.root, pack_rel), "rb") as fh:
                fh.seek(offset)
                record = self._parse_entry(fh.read(length), key)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.count_hit(record)
        return record

    def get_many(self, keys: Iterable[str]) -> Dict[str, Dict[str, Any]]:
        """Batched lookup: records for every hit, grouped by pack file.

        Each pack holding at least one requested entry is opened exactly
        once and its entries read in offset order — the warm-start path
        costs one index load plus one sequential pass per pack.
        """
        self._read_your_writes()
        index = self._load_index()
        out: Dict[str, Dict[str, Any]] = {}
        seen = set()
        by_pack: Dict[str, List[Tuple[int, int, str]]] = {}
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            located = index.get(key)
            if located is None:
                record = self._legacy_get(key)
                if record is not None:
                    out[key] = record
                continue
            pack_rel, offset, length = located
            by_pack.setdefault(pack_rel, []).append((offset, length, key))
        for pack_rel in sorted(by_pack):
            wanted = sorted(by_pack[pack_rel])
            try:
                fh = open(os.path.join(self.root, pack_rel), "rb")
            except OSError:
                self.stats.errors += len(wanted)
                self.stats.misses += len(wanted)
                continue
            with fh:
                for offset, length, key in wanted:
                    try:
                        fh.seek(offset)
                        out[key] = self._parse_entry(fh.read(length), key)
                        self.stats.count_hit(out[key])
                    except (OSError, ValueError, KeyError,
                            json.JSONDecodeError):
                        self.stats.errors += 1
                        self.stats.misses += 1
        return out

    def _legacy_get(self, key: str) -> Optional[Dict[str, Any]]:
        """Read a pre-pack per-file entry; miss when absent/corrupt."""
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as fh:
                record = self._parse_entry(fh.read().encode("utf-8"), key)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.count_hit(record)
        return record

    # ------------------------------------------------------------------ #
    # writes                                                             #
    # ------------------------------------------------------------------ #

    def _ensure_pack(self) -> io.BufferedWriter:
        if self._pack_fh is None:
            os.makedirs(self.packs_path, exist_ok=True)
            fd, path = tempfile.mkstemp(
                dir=self.packs_path, prefix="pack-", suffix=".jsonl"
            )
            self._pack_fh = os.fdopen(fd, "wb")
            self._pack_rel = os.path.join(PACKS_DIR, os.path.basename(path))
        return self._pack_fh

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Append ``record`` under ``key`` to the current pack."""
        index = self._load_index()
        payload = json.dumps(
            {"key": key, "record": record}, sort_keys=True
        ) + "\n"
        data = payload.encode("utf-8")
        fh = self._ensure_pack()
        offset = fh.tell()
        fh.write(data)
        entry = (self._pack_rel, offset, len(data))
        index[key] = entry  # type: ignore[index]
        self._pending.append(json.dumps(
            {"k": key, "p": entry[0], "o": entry[1], "n": entry[2]}
        ) + "\n")
        self.stats.puts += 1
        if len(self._pending) >= max(self.sync_every, 1):
            self.sync()
        if fh.tell() >= self.pack_max_bytes:
            self.sync()
            fh.close()
            self._pack_fh = None
            self._pack_rel = None

    # ------------------------------------------------------------------ #
    # accounting / maintenance                                           #
    # ------------------------------------------------------------------ #

    def _legacy_dirs(self) -> List[str]:
        """Two-hex-char legacy shard directories currently on disk."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if len(name) == 2 and os.path.isdir(os.path.join(self.root, name)):
                out.append(os.path.join(self.root, name))
        return out

    def __len__(self) -> int:
        """Number of entries: the manifest count plus any legacy files.

        With a manifest this is O(index size in memory); the directory
        walk only runs over legacy per-file shard dirs, if any exist.
        """
        count = len(self._load_index())
        for shard_dir in self._legacy_dirs():
            count += sum(
                1 for f in os.listdir(shard_dir)
                if f.endswith(".json") and not f.startswith(".tmp-")
            )
        return count

    def clear(self) -> int:
        """Delete every entry (and stray temp files); returns entries removed."""
        removed = len(self._load_index())
        self.close()
        self._index = {}
        try:
            os.unlink(self.index_path)
        except OSError:
            pass
        if os.path.isdir(self.packs_path):
            for fname in sorted(os.listdir(self.packs_path)):
                try:
                    os.unlink(os.path.join(self.packs_path, fname))
                except OSError:
                    pass
        for shard_dir in self._legacy_dirs():
            for fname in sorted(os.listdir(shard_dir)):
                if fname.endswith(".json"):
                    is_entry = not fname.startswith(".tmp-")
                    try:
                        os.unlink(os.path.join(shard_dir, fname))
                        removed += int(is_entry)
                    except OSError:
                        pass
        self.gc_tmp()
        return removed

    def gc_tmp(self) -> int:
        """Remove orphaned ``.tmp-*`` files left by crashed writers.

        Safe whenever no other process is mid-write in this root (the
        atomic-rename writers that produce these files never reuse them
        after a crash).  Returns the number of files removed.
        """
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        candidates = [self.root, self.packs_path] + self._legacy_dirs()
        for directory in candidates:
            if not os.path.isdir(directory):
                continue
            for fname in sorted(os.listdir(directory)):
                if fname.startswith(".tmp-"):
                    try:
                        os.unlink(os.path.join(directory, fname))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def evict_to(self, max_bytes: int) -> int:
        """Size-bounded eviction: drop oldest packs until under the bound.

        Whole packs are the eviction unit (append-only files cannot be
        holed), so the bound is honoured to within ``pack_max_bytes``.
        The manifest is rewritten atomically.  Returns entries evicted.
        Legacy per-file entries are not considered.
        """
        index = self._load_index()
        self.close()
        if not os.path.isdir(self.packs_path):
            return 0
        packs = []
        for fname in sorted(os.listdir(self.packs_path)):
            path = os.path.join(self.packs_path, fname)
            try:
                st = os.stat(path)
            except OSError:
                continue
            packs.append((st.st_mtime, fname, st.st_size))
        packs.sort()
        total = sum(size for _, _, size in packs)
        dropped = set()
        for mtime, fname, size in packs:
            if total <= max_bytes:
                break
            try:
                os.unlink(os.path.join(self.packs_path, fname))
            except OSError:
                continue
            dropped.add(os.path.join(PACKS_DIR, fname))
            total -= size
        if not dropped:
            return 0
        evicted = 0
        survivors = {}
        for key in sorted(index):
            entry = index[key]
            if entry[0] in dropped:
                evicted += 1
            else:
                survivors[key] = entry
        self._index = survivors
        self._rewrite_index()
        return evicted

    def _rewrite_index(self) -> None:
        """Atomically rewrite the manifest from the in-memory index."""
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps({"schema": INDEX_SCHEMA}) + "\n")
                index = self._index or {}
                for key in sorted(index):
                    pack_rel, offset, length = index[key]
                    fh.write(json.dumps(
                        {"k": key, "p": pack_rel, "o": offset, "n": length}
                    ) + "\n")
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
