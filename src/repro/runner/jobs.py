"""Simulation cells and the worker entry points that execute them.

A :class:`SimJob` is the *data* description of one simulation: the
serialized workflow document, a cluster factory spec, a scheduler name or
factory spec, and the run-config dict (seed, noise, fault model, recovery
policy, governor, mode — object values as factory specs).  Workers
rebuild everything from the description, so executing a cell inline, in a
forked pool worker or from a cache-warmed rerun goes through the *same*
construction path and therefore yields bit-identical numbers.

The module-level ``execute_*`` functions are the ``multiprocessing``
entry points; payloads are plain dicts so both fork and spawn start
methods can ship them.

**Failure is data**: :func:`execute_sim` never lets a cell exception
cross the pool boundary.  It returns a serialized
:class:`~repro.runner.record.CellFailure` instead — error class,
message, the fully formatted chained traceback (exception chains do not
survive pickling; the text does), failure category and attempt count —
so one poison cell cannot tear down a streaming campaign, and the
parent can decide to retry, quarantine or raise with full context.

Payloads may carry three out-of-band keys the cache key never sees
(they are runner policy, not cell content): ``attempt`` (1-based
execution count, stamped by the retry loop), ``cell_key`` (the cell's
content hash, used by deterministic failure injection) and ``inject``
(the parsed ``REPRO_FAIL_INJECT`` spec — threading it through the
payload instead of worker-side environment reads keeps injection
working under every start method).
"""

from __future__ import annotations

import hashlib
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.runner import specs
from repro.runner.health import TransientCellError, classify_exception
from repro.runner.record import CellFailure, SimRecord, TimingRecord


@dataclass(frozen=True)
class SimJob:
    """One ``(workflow, cluster, scheduler, config)`` simulation cell.

    Attributes:
        workflow: Serialized workflow document
            (:func:`repro.workflows.serialize.workflow_to_dict` output).
        cluster: Factory spec for the platform.
        scheduler: Scheduler registry name, or a factory spec for a
            parameterized instance.
        config: Extra :class:`~repro.core.orchestrator.RunConfig` fields;
            object-valued fields (fault_model, recovery, governor) as
            factory specs.
        label: Human-readable tag for diagnostics; not part of the key.
    """

    workflow: Dict[str, Any]
    cluster: Dict[str, Any]
    scheduler: Union[str, Dict[str, Any]]
    config: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    kind = "sim"

    def payload(self) -> Dict[str, Any]:
        """Picklable dict handed to the pool worker.

        Carries a content fingerprint of the workflow document so the
        worker can recognise the same document across payload copies
        (pickling gives every copy a fresh identity) and rebuild the
        Workflow once per document, not once per cell.
        """
        from repro.runner.hashing import workflow_fingerprint

        return {
            "kind": self.kind,
            "workflow": self.workflow,
            "workflow_fp": workflow_fingerprint(self.workflow),
            "cluster": self.cluster,
            "scheduler": self.scheduler,
            "config": self.config,
            "label": self.label,
        }


@dataclass(frozen=True)
class TimingJob:
    """A scheduling-call wall-clock measurement (experiment T5).

    Timing cells are never cached — a stored wall-clock time is not a
    property of the inputs — and their absolute values are only
    comparable within one ``--jobs`` setting.
    """

    workflow: Dict[str, Any]
    cluster: Dict[str, Any]
    scheduler: Union[str, Dict[str, Any]]
    config: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    kind = "timing"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "workflow": self.workflow,
            "cluster": self.cluster,
            "scheduler": self.scheduler,
            "config": self.config,
            "label": self.label,
        }


def _build_scheduler(spec: Union[str, Dict[str, Any]]):
    """Registry name → name (resolved by RunConfig); factory spec → instance."""
    if isinstance(spec, str):
        return spec
    return specs.build(spec)


#: Deserialized workflows keyed by content fingerprint (preferred: the
#: key survives pickling across the process boundary) or by document
#: identity (fallback for payloads without a fingerprint).  Campaign
#: builders share one document across the cells of a grid row (e.g. the
#: 8 golden scheduler cells per suite), so workers rebuild each workflow
#: once per distinct document — keeping its lazily-built graph caches
#: warm — instead of once per cell.  Identity entries hold a strong
#: reference to the document, which keeps its ``id`` valid for the
#: lifetime of the entry; the ``is`` check makes a stale hit impossible
#: either way.
_workflow_memo: Dict[object, tuple] = {}
_WORKFLOW_MEMO_MAX = 16


def _workflow_for(doc: Dict[str, Any], fingerprint: Optional[str] = None):
    """The Workflow for ``doc``, memoized by fingerprint or identity."""
    from repro.workflows.serialize import workflow_from_dict

    memo_key: object = fingerprint if fingerprint is not None else id(doc)
    entry = _workflow_memo.get(memo_key)
    if entry is not None and (fingerprint is not None or entry[0] is doc):
        return entry[1]
    wf = workflow_from_dict(doc)
    if len(_workflow_memo) >= _WORKFLOW_MEMO_MAX:
        _workflow_memo.clear()
    _workflow_memo[memo_key] = (doc, wf)
    return wf


def _maybe_inject_failure(payload: Dict[str, Any]) -> None:
    """Deterministic failure injection, driven by the payload's spec.

    The parent stamps the parsed ``REPRO_FAIL_INJECT`` spec into each
    payload (see :func:`repro.runner.pool.inject_spec_from_env`).  Two
    fault shapes, both decided without any ambient entropy:

    * **poison** — cells whose label is listed fail every attempt with a
      permanent error (they must end up quarantined, never retried to
      success);
    * **transient** — a seeded hash draw over ``(cell key, seed)`` fails
      the matching fraction of cells *on their first attempt only*, so a
      retried cell deterministically succeeds and its record is
      byte-identical to an injection-free run.
    """
    spec = payload.get("inject")
    if not spec:
        return
    label = payload.get("label", "")
    if label and label in spec.get("poison", ()):
        raise RuntimeError(f"injected poison cell {label}")
    rate = float(spec.get("rate", 0.0) or 0.0)
    if rate <= 0.0 or int(payload.get("attempt", 1)) != 1:
        return
    token = f"{payload.get('cell_key') or label}:{spec.get('seed', 0)}"
    draw = int(hashlib.sha256(token.encode("utf-8")).hexdigest()[:8], 16)
    if draw / float(0xFFFFFFFF) < rate:
        raise TransientCellError(
            f"injected transient failure ({label or 'unlabeled cell'})"
        )


def _failure_dict(
    exc: Exception, payload: Dict[str, Any], wall_s: float
) -> Dict[str, Any]:
    """Serialize a worker exception as a CellFailure dict (never raises)."""
    return CellFailure(
        error_type=type(exc).__qualname__,
        message=str(exc),
        traceback=traceback_module.format_exc(),
        category=classify_exception(exc),
        attempts=int(payload.get("attempt", 1)),
        wall_s=wall_s,
        label=payload.get("label", ""),
    ).to_dict()


def execute_sim(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker: rebuild the cell's objects, run it, return the record dict.

    A failing cell returns a serialized
    :class:`~repro.runner.record.CellFailure` instead of raising: the
    exception's class, message and *formatted chained traceback* are
    captured here, on the worker side of the pickle boundary, where the
    chain still exists.  The parent decides whether that failure is
    retried, quarantined or re-raised.
    """
    # The import registers HDWS in the scheduler registry inside workers.
    import repro.core  # noqa: F401
    from repro.core.api import run_workflow

    t0 = time.perf_counter()
    try:
        _maybe_inject_failure(payload)
        wf = _workflow_for(payload["workflow"], payload.get("workflow_fp"))
        cluster = specs.build(payload["cluster"])
        scheduler = _build_scheduler(payload["scheduler"])
        config = {k: specs.build(v) for k, v in payload["config"].items()}
        result = run_workflow(wf, cluster, scheduler=scheduler, **config)
        return SimRecord.from_run(result).to_dict()
    except Exception as exc:
        return _failure_dict(exc, payload, time.perf_counter() - t0)


def execute_timing(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker: build the context, time the scheduling call itself."""
    import repro.core  # noqa: F401
    from repro.schedulers.base import SchedulingContext

    try:
        wf = _workflow_for(payload["workflow"])
        cluster = specs.build(payload["cluster"])
        scheduler = _build_scheduler(payload["scheduler"])
        if isinstance(scheduler, str):
            from repro.schedulers import REGISTRY

            scheduler = REGISTRY[scheduler]()
        context = SchedulingContext(wf, cluster)
        t0 = time.perf_counter()
        schedule = scheduler.schedule(context)
        elapsed = time.perf_counter() - t0
        schedule.validate_against(wf)
        return TimingRecord(elapsed_s=elapsed, n_tasks=wf.n_tasks).to_dict()
    except Exception as exc:
        # Chain the original (debuggable in-process) *and* embed the
        # formatted traceback: the chain does not survive the pickle
        # boundary back to the parent, the text does.
        raise RuntimeError(
            f"timing cell {payload.get('label') or '<unlabeled>'} failed: "
            f"{exc}\n--- worker traceback ---\n"
            f"{traceback_module.format_exc()}"
        ) from exc


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch a payload to its executor by kind (the pool map target)."""
    if payload["kind"] == "sim":
        return execute_sim(payload)
    if payload["kind"] == "timing":
        return execute_timing(payload)
    raise ValueError(f"unknown job kind {payload['kind']!r}")
