"""The flat simulation summary experiments consume and the cache stores.

A :class:`SimRecord` is the closure of every ``result.<attr>`` access in
the experiment modules: makespan, success, the energy figures, data moved
and recovery counters.  Keeping it flat and JSON-native means a cached
cell and a freshly simulated cell are indistinguishable by construction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class SimRecord:
    """Summary of one simulated ``(workflow, cluster, scheduler, config)`` cell."""

    makespan: float
    success: bool
    energy_j: float
    edp: float
    network_mb: float
    staging_mb: float
    retries: float
    preemptions: float
    task_faults: float
    device_faults: float
    #: Simulation events fired (deterministic; 0.0 in records cached
    #: before the field existed).
    events: float = 0.0

    @property
    def data_moved_mb(self) -> float:
        """Total bytes moved: inter-node network plus shared-storage staging."""
        return self.network_mb + self.staging_mb

    @classmethod
    def from_run(cls, result) -> "SimRecord":
        """Summarize a :class:`~repro.core.orchestrator.RunResult`."""
        ex = result.execution
        return cls(
            makespan=float(result.makespan),
            success=bool(result.success),
            energy_j=float(result.energy.total_joules),
            edp=float(result.energy.edp),
            network_mb=float(ex.network_mb),
            staging_mb=float(ex.staging_mb),
            retries=float(ex.retries),
            preemptions=float(ex.preemptions),
            task_faults=float(ex.task_faults),
            device_faults=float(ex.device_faults),
            events=float(ex.events),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (what the cache writes)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimRecord":
        """Rebuild from :meth:`to_dict` output.

        Tolerates cache entries written before a field existed (fields
        with defaults fall back to them), so growing the record never
        invalidates existing on-disk caches.
        """
        return cls(**{
            k: payload[k] for k in cls.__dataclass_fields__ if k in payload
        })


@dataclass(frozen=True)
class TimingRecord:
    """Wall-clock measurement of one scheduling call (experiment T5)."""

    elapsed_s: float
    n_tasks: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TimingRecord":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__})
