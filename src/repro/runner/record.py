"""The flat simulation summary experiments consume and the cache stores.

A :class:`SimRecord` is the closure of every ``result.<attr>`` access in
the experiment modules: makespan, success, the energy figures, data moved
and recovery counters.  Keeping it flat and JSON-native means a cached
cell and a freshly simulated cell are indistinguishable by construction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict

#: Discriminator stamped into serialized :class:`CellFailure` dicts so a
#: cache entry (or a streamed worker output) is recognizably a failure.
#: ``SimRecord`` dicts carry no ``kind`` key, so the check is exact.
FAILURE_SCHEMA = "repro.cell-failure/v1"


def is_failure_record(payload: Dict[str, Any]) -> bool:
    """Whether a worker-output / cache-entry dict is a serialized failure."""
    return payload.get("kind") == FAILURE_SCHEMA


@dataclass(frozen=True)
class SimRecord:
    """Summary of one simulated ``(workflow, cluster, scheduler, config)`` cell."""

    makespan: float
    success: bool
    energy_j: float
    edp: float
    network_mb: float
    staging_mb: float
    retries: float
    preemptions: float
    task_faults: float
    device_faults: float
    #: Simulation events fired (deterministic; 0.0 in records cached
    #: before the field existed).
    events: float = 0.0

    #: Worker-level verdict, for symmetric ``outcome.ok`` checks across
    #: :class:`SimRecord` / :class:`CellFailure` streams.  Distinct from
    #: :attr:`success`, the *simulated* verdict (a cell can complete
    #: while its simulated workflow stranded tasks).
    ok = True

    @property
    def data_moved_mb(self) -> float:
        """Total bytes moved: inter-node network plus shared-storage staging."""
        return self.network_mb + self.staging_mb

    @classmethod
    def from_run(cls, result) -> "SimRecord":
        """Summarize a :class:`~repro.core.orchestrator.RunResult`."""
        ex = result.execution
        return cls(
            makespan=float(result.makespan),
            success=bool(result.success),
            energy_j=float(result.energy.total_joules),
            edp=float(result.energy.edp),
            network_mb=float(ex.network_mb),
            staging_mb=float(ex.staging_mb),
            retries=float(ex.retries),
            preemptions=float(ex.preemptions),
            task_faults=float(ex.task_faults),
            device_faults=float(ex.device_faults),
            events=float(ex.events),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (what the cache writes)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimRecord":
        """Rebuild from :meth:`to_dict` output.

        Tolerates cache entries written before a field existed (fields
        with defaults fall back to them), so growing the record never
        invalidates existing on-disk caches.
        """
        return cls(**{
            k: payload[k] for k in cls.__dataclass_fields__ if k in payload
        })


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell that failed in a worker.

    Failure is *data*, not process death: workers return this record
    (serialized) instead of raising, so a streaming campaign keeps
    going, the cache can persist the failure content-addressed like a
    success, and the quarantine report can say exactly what broke where.

    ``traceback`` carries the worker's fully formatted (chained)
    traceback text — exceptions lose their ``__cause__`` and traceback
    objects at the pickle boundary, so the text is the only form that
    survives the trip debuggable.  ``wall_s`` is profiling data only
    (machine-dependent; never compared by deterministic consumers).
    """

    #: Qualified exception class name (``ValueError``, ...).
    error_type: str
    #: ``str(exc)`` of the final attempt.
    message: str
    #: Formatted chained traceback from the worker.
    traceback: str
    #: Failure category (:data:`repro.runner.health.CATEGORIES`).
    category: str
    #: Total executions of the cell, the failing one included.
    attempts: int
    #: Wall seconds of the final attempt (profiling only).
    wall_s: float
    #: The cell's human-readable label.
    label: str = ""

    #: Worker-level verdict, for symmetric ``outcome.ok`` checks across
    #: :class:`SimRecord` / :class:`CellFailure` streams.
    ok = False

    def summary(self) -> str:
        """One diagnostic line: label, category, error, attempts."""
        where = self.label or "<unlabeled>"
        return (
            f"{where}: {self.error_type}: {self.message} "
            f"[{self.category}, {self.attempts} attempt(s)]"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form, discriminated by :data:`FAILURE_SCHEMA`."""
        payload = asdict(self)
        payload["kind"] = FAILURE_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellFailure":
        """Rebuild from :meth:`to_dict` output (tolerant like SimRecord)."""
        return cls(**{
            k: payload[k] for k in cls.__dataclass_fields__ if k in payload
        })


@dataclass(frozen=True)
class TimingRecord:
    """Wall-clock measurement of one scheduling call (experiment T5)."""

    elapsed_s: float
    n_tasks: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TimingRecord":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__})
