"""The process-pool campaign runner with memoization.

:class:`CampaignRunner` takes batches of simulation cells and returns
records in input order.  Three properties the test layer pins down:

* **Determinism** — every cell is executed from its data description via
  the same construction path (see :mod:`repro.runner.jobs`), so
  ``jobs=1`` and ``jobs=N`` produce identical records.
* **Memoization** — with a cache attached, completed cells are stored
  under their content hash; a warm rerun only simulates new cells.
  Duplicate cells *within* one batch are simulated once and fanned back
  to every requesting index.
* **Order independence** — results are returned in submission order
  regardless of worker completion order (``Pool.map`` semantics).
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.hashing import cache_key
from repro.runner.jobs import SimJob, TimingJob, execute_payload
from repro.runner.record import SimRecord, TimingRecord


def _pool_context():
    """Fork where available (cheap, inherits imports), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class CampaignRunner:
    """Runs simulation cells over a process pool with an optional cache."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Cells actually simulated (cache misses) over this runner's life.
        self.simulated = 0

    # ---------------------------------------------------------------- #
    # simulation cells                                                 #
    # ---------------------------------------------------------------- #

    def run_sims(self, sim_jobs: Sequence[SimJob]) -> List[SimRecord]:
        """Execute (or recall) every cell; records in submission order."""
        n = len(sim_jobs)
        records: List[Optional[SimRecord]] = [None] * n
        keys = [cache_key(j) for j in sim_jobs]

        # Resolve cache hits and dedupe identical cells within the batch.
        first_index: Dict[str, int] = {}
        to_run: List[int] = []
        for i, key in enumerate(keys):
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    records[i] = SimRecord.from_dict(hit)
                    continue
            if key in first_index:
                continue  # duplicate of a pending cell
            first_index[key] = i
            to_run.append(i)

        outputs = self._map([sim_jobs[i].payload() for i in to_run])
        self.simulated += len(outputs)
        by_key: Dict[str, SimRecord] = {}
        for i, out in zip(to_run, outputs):
            record = SimRecord.from_dict(out)
            by_key[keys[i]] = record
            if self.cache is not None:
                self.cache.put(keys[i], out)
        for i in range(n):
            if records[i] is None:
                records[i] = by_key[keys[i]]
        return records  # type: ignore[return-value]

    # ---------------------------------------------------------------- #
    # timing cells (never cached)                                      #
    # ---------------------------------------------------------------- #

    def run_timings(self, timing_jobs: Sequence[TimingJob]) -> List[TimingRecord]:
        """Execute scheduling-overhead measurements; never cached."""
        outputs = self._map([j.payload() for j in timing_jobs])
        return [TimingRecord.from_dict(out) for out in outputs]

    # ---------------------------------------------------------------- #
    # execution backends                                               #
    # ---------------------------------------------------------------- #

    def _map(self, payloads: List[dict]) -> List[dict]:
        if not payloads:
            return []
        workers = min(self.jobs, len(payloads))
        if workers <= 1:
            return [execute_payload(p) for p in payloads]
        chunksize = max(1, len(payloads) // (workers * 4))
        ctx = _pool_context()
        with ctx.Pool(processes=workers) as pool:
            return pool.map(execute_payload, payloads, chunksize=chunksize)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.cache.root if self.cache else "off"
        return f"<CampaignRunner jobs={self.jobs} cache={where}>"
