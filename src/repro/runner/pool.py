"""The streaming process-pool campaign runner with memoization.

:class:`CampaignRunner` takes batches of simulation cells and returns
records in input order.  Five properties the test layer pins down:

* **Determinism** — every cell is executed from its data description via
  the same construction path (see :mod:`repro.runner.jobs`), so
  ``jobs=1`` and ``jobs=N`` produce identical records.
* **Memoization** — with a cache attached, completed cells are stored
  under their content hash; a warm rerun only simulates new cells.
  Duplicate cells *within* one batch are simulated once and fanned back
  to every requesting index.  Hit resolution is batched
  (:meth:`~repro.runner.cache.ResultCache.get_many`): one index load
  plus one sequential read per pack, not one ``open()`` per cell.
* **Order independence** — :meth:`run_sims` returns results in
  submission order regardless of worker completion order (index-tagged
  payloads, reassembled on arrival).
* **Streaming** — :meth:`run_sims_iter` yields ``(index, record)`` as
  cells complete (``imap_unordered`` pipelined dispatch): cache puts and
  downstream aggregation happen while later cells are still simulating,
  and nothing forces the whole batch to be held in memory at once.
* **Fault tolerance** — workers return structured
  :class:`~repro.runner.record.CellFailure` records instead of raising
  (see :mod:`repro.runner.jobs`).  Transient failures are retried in
  bounded, deterministic rounds; cells that exhaust their retries land
  in the :attr:`quarantine` (and, in ``record`` mode, in the cache,
  content-addressed like successes).  A :class:`HealthTracker` folds
  every outcome into the campaign health model
  (:mod:`repro.runner.health`), and :meth:`run_batches` gates batch
  admission on it with a feed-ahead runway.

Failure modes: ``failure_mode="raise"`` (the default) re-raises the
first quarantined failure as :class:`CampaignCellError` — the historic
contract experiment code relies on — while still leaving the pool and
both streaming generators reusable afterward.  ``failure_mode="record"``
streams :class:`CellFailure` outcomes to the caller like records, the
shape unattended campaigns need.

Retry scheduling is **bit-deterministic**: whether a failure retries
depends only on its category and attempt count, and attempt ``k+1`` of
a cell dispatches in retry round ``k`` — after the current round's
remaining work, behind anything already queued — so backoff is measured
in queued work, never in wall-clock reads.

The worker pool is **persistent**: lazily spawned on the first parallel
batch and reused across batches for the runner's lifetime, so a campaign
of many small batches pays the worker start-up cost once, not per batch.
``CampaignRunner`` is a context manager; call :meth:`close` (or leave
the ``with`` block) to release the workers.  A leaked runner's pool is
terminated by a GC finalizer.

Start method: ``forkserver`` where available (avoids the
fork-in-threaded-process ``DeprecationWarning`` on Python 3.12+ while
keeping warm-import workers via preload), falling back to ``fork`` then
``spawn``; ``REPRO_START_METHOD`` forces a specific method and
``REPRO_CHUNKSIZE`` overrides the dispatch chunk size.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import weakref
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.runner.cache import ResultCache
from repro.runner.hashing import cache_key
from repro.runner.health import (
    GateDecision,
    HALT,
    HealthPolicy,
    HealthTracker,
    OutcomeView,
    TRANSIENT,
    runway_admissions,
)
from repro.runner.jobs import SimJob, TimingJob, execute_payload
from repro.runner.record import (
    CellFailure,
    SimRecord,
    TimingRecord,
    is_failure_record,
)

#: What a fault-tolerant stream yields per cell.
Outcome = Union[SimRecord, CellFailure]


class CampaignCellError(RuntimeError):
    """A quarantined cell failure re-raised in ``failure_mode="raise"``.

    Carries the structured :attr:`failure`; the message embeds the
    worker's formatted chained traceback, which — unlike exception
    chains — survives the pickle boundary.
    """

    def __init__(self, failure: CellFailure) -> None:
        self.failure = failure
        super().__init__(
            f"simulation cell {failure.label or '<unlabeled>'} failed after "
            f"{failure.attempts} attempt(s): {failure.error_type}: "
            f"{failure.message}\n--- worker traceback ---\n"
            f"{failure.traceback}"
        )


class CampaignHaltedError(RuntimeError):
    """The health gate halted the campaign (see the carried decision)."""

    def __init__(self, decision: GateDecision) -> None:
        self.decision = decision
        super().__init__(
            f"campaign halted by health gate: state={decision.state} "
            f"({decision.reason})"
        )


def inject_spec_from_env() -> Optional[Dict[str, Any]]:
    """The parsed ``REPRO_FAIL_INJECT`` failure-injection spec, if any.

    A JSON object like ``{"rate": 0.05, "seed": 1, "poison": ["label"]}``.
    Parsed in the *parent* and stamped into each dispatched payload, so
    injection reaches workers under every start method (a forkserver
    started before the variable was set never sees parent env changes).
    """
    raw = os.environ.get("REPRO_FAIL_INJECT", "").strip()
    if not raw:
        return None
    try:
        spec = json.loads(raw)
        if not isinstance(spec, dict):
            raise ValueError("not a JSON object")
    except ValueError as exc:
        raise ValueError(
            "REPRO_FAIL_INJECT must be a JSON object like "
            '{"rate": 0.05, "seed": 1, "poison": ["label"]}: ' + str(exc)
        ) from exc
    return {
        "rate": float(spec.get("rate", 0.0) or 0.0),
        "seed": int(spec.get("seed", 0) or 0),
        "poison": [str(label) for label in spec.get("poison", [])],
    }


def _pool_context():
    """forkserver where available, else fork, else spawn.

    ``forkserver`` workers fork from a clean single-threaded server
    process (no stale parent threads/locks, no py3.12 fork deprecation)
    that pre-imports the simulator, so spawning stays cheap.
    ``REPRO_START_METHOD`` forces one method (e.g. for debugging spawn
    path portability).
    """
    methods = multiprocessing.get_all_start_methods()
    forced = os.environ.get("REPRO_START_METHOD", "").strip()
    order = [forced] if forced else ["forkserver", "fork", "spawn"]
    for method in order:
        if method in methods:
            ctx = multiprocessing.get_context(method)
            if method == "forkserver":
                ctx.set_forkserver_preload(["repro.core"])
            return ctx
    raise ValueError(
        f"no usable start method in {order}; platform offers {methods}"
    )


def _execute_indexed(item: Tuple[int, dict]) -> Tuple[int, dict]:
    """Pool target: run one index-tagged payload, return the tag with it."""
    index, payload = item
    return index, execute_payload(payload)


def _shutdown_pool(pool) -> None:
    """Finalizer: stop a pool's workers immediately (results are in)."""
    pool.terminate()
    pool.join()


class CampaignRunner:
    """Runs simulation cells over a persistent pool with an optional cache."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        *,
        max_retries: int = 0,
        failure_mode: str = "raise",
        retry_failed: bool = False,
        health_policy: Optional[HealthPolicy] = None,
        on_unhealthy: str = "throttle",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if failure_mode not in ("raise", "record"):
            raise ValueError(
                f"failure_mode must be 'raise' or 'record', got {failure_mode!r}"
            )
        self.jobs = jobs
        self.cache = cache
        #: Transient failures are retried up to this many times per cell.
        self.max_retries = max_retries
        #: ``"raise"`` re-raises quarantined failures; ``"record"``
        #: streams them to the caller (and persists them in the cache).
        self.failure_mode = failure_mode
        #: Re-run cells whose *failure* is cached instead of recalling it.
        self.retry_failed = retry_failed
        #: Cells simulated to a record (cache misses) this runner's life.
        self.simulated = 0
        #: Cells quarantined after exhausting their retries.
        self.failed = 0
        #: Retry dispatches (attempts beyond each cell's first).
        self.retried = 0
        #: Quarantined failures by cell key (poison-cell report).
        self.quarantine: Dict[str, CellFailure] = {}
        #: Campaign health over this runner's outcome stream.
        self.health = HealthTracker(health_policy, on_unhealthy=on_unhealthy)
        self._pool = None
        self._pool_finalizer = None

    # ---------------------------------------------------------------- #
    # pool lifecycle                                                   #
    # ---------------------------------------------------------------- #

    def _ensure_pool(self):
        """The persistent worker pool, spawned on first parallel batch."""
        if self._pool is None:
            ctx = _pool_context()
            self._pool = ctx.Pool(processes=self.jobs)
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def close(self) -> None:
        """Release the worker pool and flush the cache manifest."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()  # terminate + join; idempotent
            self._pool_finalizer = None
        self._pool = None
        if self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- #
    # simulation cells                                                 #
    # ---------------------------------------------------------------- #

    def run_sims(self, sim_jobs: Sequence[SimJob]) -> List[SimRecord]:
        """Execute (or recall) every cell; records in submission order.

        In ``record`` mode the list may contain
        :class:`~repro.runner.record.CellFailure` entries for
        quarantined cells.
        """
        jobs = list(sim_jobs)
        records: List[Optional[Outcome]] = [None] * len(jobs)
        for i, record in self.run_sims_ordered(jobs):
            records[i] = record
        return records  # type: ignore[return-value]

    def run_sims_iter(
        self, sim_jobs: Sequence[SimJob], *, failure_mode: Optional[str] = None
    ) -> Iterator[Tuple[int, Outcome]]:
        """Yield ``(index, outcome)`` as cells complete.

        Cache hits come first (in submission order); misses follow in
        *completion* order as the pool finishes them — each one is
        written to the cache and handed to the caller immediately, so
        aggregation and checkpointing overlap simulation.  Use
        :meth:`run_sims_ordered` when the consumer needs submission
        order with streaming memory behaviour.

        Pool dispatch is **eager**: misses are submitted when this is
        called, not when the returned iterator is first advanced —
        that's what gives :meth:`run_batches` real feed-ahead lead time.

        Transient worker failures retry in deterministic rounds (at most
        :attr:`max_retries` extra attempts per cell); exhausted cells
        are quarantined and either re-raised (``raise`` mode, the
        default) or streamed as :class:`CellFailure` (``record`` mode,
        also persisted content-addressed in the cache so a resumed
        campaign recalls instead of re-failing them).

        The cache manifest is synced when the batch completes *and* on
        the error path, so every finished cell survives a mid-batch
        crash (the checkpoint/resume contract).  On error or early
        ``close()`` the in-flight pool iterator is drained/closed, so
        the pool stays reusable for the next batch.
        """
        mode = failure_mode or self.failure_mode
        jobs = list(sim_jobs)
        keys = [cache_key(job) for job in jobs]

        hits: Dict[str, dict] = {}
        if self.cache is not None:
            hits = self.cache.get_many(keys)
            if mode == "raise" or self.retry_failed:
                # Cached failures are recalled only in record mode
                # (raise-mode callers never wrote them; retry_failed
                # asks for another shot): the cells simply re-run.
                hits = {
                    k: v for k, v in hits.items() if not is_failure_record(v)
                }

        #: every submission index waiting on each still-missing key
        waiters: Dict[str, List[int]] = {}
        to_run: List[int] = []
        for i, key in enumerate(keys):
            if key in hits:
                continue
            if key not in waiters:
                to_run.append(i)
            waiters.setdefault(key, []).append(i)

        inject = inject_spec_from_env()
        stream: Optional[Iterator[Tuple[int, dict]]] = None
        pooled = False
        if to_run:
            items = [
                (i, self._payload_for(jobs[i], keys[i], 1, inject))
                for i in to_run
            ]
            stream, pooled = self._submit(items)
        return self._consume_batch(
            jobs, keys, waiters, hits, stream, pooled, mode, inject
        )

    def _consume_batch(
        self,
        jobs: List[SimJob],
        keys: List[str],
        waiters: Dict[str, List[int]],
        hits: Dict[str, dict],
        stream: Optional[Iterator[Tuple[int, dict]]],
        pooled: bool,
        mode: str,
        inject: Optional[Dict[str, Any]],
    ) -> Iterator[Tuple[int, Outcome]]:
        """Hits first, then live execution with retry rounds."""
        try:
            for i, key in enumerate(keys):
                if key not in hits:
                    continue
                entry = hits[key]
                if is_failure_record(entry):
                    failure = CellFailure.from_dict(entry)
                    # A previous run quarantined this cell; recall the
                    # verdict without re-simulating (and without feeding
                    # historical failures into this run's health).
                    self.quarantine.setdefault(key, failure)
                    yield i, failure
                else:
                    yield i, SimRecord.from_dict(entry)
            if stream is not None:
                yield from self._stream_execute(
                    jobs, keys, waiters, stream, pooled, mode, inject
                )
        finally:
            if self.cache is not None:
                self.cache.sync()

    def _stream_execute(
        self,
        jobs: List[SimJob],
        keys: List[str],
        waiters: Dict[str, List[int]],
        stream: Iterator[Tuple[int, dict]],
        pooled: bool,
        mode: str,
        inject: Optional[Dict[str, Any]],
    ) -> Iterator[Tuple[int, Outcome]]:
        """Consume worker outputs; retry transients in rounds; quarantine.

        The ``finally`` disposes whatever stream is current — draining a
        pool iterator (so the persistent pool is reusable after an error
        or an abandoned generator) or closing the serial generator (so
        an aborted serial batch does not keep executing cells).
        """
        attempts: Dict[int, int] = {}
        try:
            while True:
                retry_next: List[int] = []
                for first_index, output in stream:
                    key = keys[first_index]
                    att = attempts.get(first_index, 1)
                    if is_failure_record(output):
                        failure = CellFailure.from_dict(output)
                        if failure.category == TRANSIENT and att <= self.max_retries:
                            retry_next.append(first_index)
                            self.health.observe(OutcomeView(
                                ok=False, category=failure.category,
                                error_type=failure.error_type, retried=True,
                            ))
                            self._gate_check()
                            continue
                        self.failed += 1
                        self.quarantine[key] = failure
                        self.health.observe(OutcomeView(
                            ok=False, category=failure.category,
                            error_type=failure.error_type, retried=att > 1,
                        ))
                        if mode == "raise":
                            raise CampaignCellError(failure)
                        if self.cache is not None:
                            self.cache.put(key, failure.to_dict())
                        for waiter in waiters[key]:
                            yield waiter, failure
                    else:
                        self.simulated += 1
                        if self.cache is not None:
                            self.cache.put(key, output)
                        record = SimRecord.from_dict(output)
                        self.health.observe(OutcomeView(
                            ok=True, retried=att > 1,
                            sim_success=record.success,
                        ))
                        for waiter in waiters[key]:
                            yield waiter, record
                    self._gate_check()
                if not retry_next:
                    return
                # Deterministic backoff: attempt k+1 dispatches in retry
                # round k, after this round's remaining work and behind
                # anything already queued — spacing measured in queued
                # work, never in wall-clock reads.
                round_items = []
                for i in retry_next:
                    att = attempts.get(i, 1) + 1
                    attempts[i] = att
                    round_items.append(
                        (i, self._payload_for(jobs[i], keys[i], att, inject))
                    )
                self.retried += len(round_items)
                self._dispose(stream, pooled)
                stream, pooled = self._submit(round_items)
        finally:
            self._dispose(stream, pooled)

    def _payload_for(
        self,
        job: SimJob,
        key: str,
        attempt: int,
        inject: Optional[Dict[str, Any]],
    ) -> dict:
        """A dispatch payload with the out-of-band runner-policy keys.

        ``attempt``/``cell_key``/``inject`` ride outside the hashed job
        fields: they are retry/injection policy, not cell content, so
        they can never move a cell to a different cache entry.
        """
        payload = job.payload()
        payload["cell_key"] = key
        payload["attempt"] = attempt
        if inject:
            payload["inject"] = inject
        return payload

    def _gate_check(self) -> None:
        """Periodic mid-stream health check; raises when the gate halts."""
        decision = self.health.maybe_decide(context="stream")
        if decision is not None and decision.action == HALT:
            raise CampaignHaltedError(decision)

    def run_sims_ordered(
        self, sim_jobs: Sequence[SimJob], *, failure_mode: Optional[str] = None
    ) -> Iterator[Tuple[int, Outcome]]:
        """Stream outcomes in submission order.

        A reorder buffer holds results that complete ahead of the next
        unyielded index; its size is bounded by the pool's pipelining
        skew (roughly ``jobs x chunksize``) plus any retry rounds in
        flight, not by the campaign size.  The inner iterator is closed
        on every exit path — error, ``GeneratorExit``, completion — so
        an abandoned ordered stream never strands the reorder buffer or
        the pool's in-flight iterator.
        """
        inner = self.run_sims_iter(sim_jobs, failure_mode=failure_mode)
        reorder: Dict[int, Outcome] = {}
        next_index = 0
        try:
            for i, record in inner:
                reorder[i] = record
                while next_index in reorder:
                    yield next_index, reorder.pop(next_index)
                    next_index += 1
        finally:
            reorder.clear()
            inner.close()

    # ---------------------------------------------------------------- #
    # health-gated batch admission (the feed-ahead runway)             #
    # ---------------------------------------------------------------- #

    def run_batches(
        self,
        batches: Iterable[Sequence[SimJob]],
        *,
        runway: int = 2,
        failure_mode: str = "record",
    ) -> Iterator[Tuple[int, int, Outcome]]:
        """Run a stream of batches under health-gated, feed-ahead admission.

        Yields ``(batch_index, index_in_batch, outcome)``; outcomes of
        batch *b* stream while batches *b+1..b+runway-1* are already
        dispatched (the §3 runway controller: keep ``runway`` batches of
        lead time instead of reacting on batch completion).  Before
        every admission the single policy gate decides from campaign
        health: ``admit`` keeps the runway full, ``throttle`` shrinks it
        to one batch, ``halt`` stops admissions and raises
        :class:`CampaignHaltedError` — every decision is emitted as a
        ``campaign.gate`` observe event.

        Defaults to ``record`` failure mode: unattended campaigns treat
        per-cell failure as data.  On halt, batches already admitted are
        not awaited (their workers finish in the background and their
        results are discarded); cells completed before the halt are
        already in the cache.

        Cells duplicated *across* in-flight batches may simulate twice
        (a batch is admitted before the previous one has written its
        results); within a batch they still dedupe.
        """
        pending: Deque[Tuple[int, Iterator[Tuple[int, Outcome]]]] = deque()
        batches_iter = iter(batches)
        batch_no = 0
        exhausted = False
        halted: Optional[GateDecision] = None
        try:
            while True:
                while not exhausted and halted is None:
                    decision = self.health.decide(
                        context="admission", batch=batch_no,
                        in_flight=len(pending),
                    )
                    if decision.action == HALT:
                        halted = decision
                        break
                    if runway_admissions(len(pending), decision, runway) <= 0:
                        break
                    try:
                        batch = next(batches_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append((batch_no, self.run_sims_iter(
                        list(batch), failure_mode=failure_mode,
                    )))
                    batch_no += 1
                if not pending:
                    break
                bno, gen = pending.popleft()
                try:
                    for i, outcome in gen:
                        yield bno, i, outcome
                finally:
                    gen.close()
        finally:
            while pending:
                _bno, gen = pending.popleft()
                gen.close()
        if halted is not None:
            raise CampaignHaltedError(halted)

    def quarantine_report(self) -> List[str]:
        """Diagnostic lines for every quarantined cell, label-sorted."""
        return [
            failure.summary()
            for failure in sorted(
                self.quarantine.values(), key=lambda f: (f.label, f.error_type)
            )
        ]

    # ---------------------------------------------------------------- #
    # timing cells (never cached)                                      #
    # ---------------------------------------------------------------- #

    def run_timings(self, timing_jobs: Sequence[TimingJob]) -> List[TimingRecord]:
        """Execute scheduling-overhead measurements; never cached."""
        outputs = self._map([j.payload() for j in timing_jobs])
        return [TimingRecord.from_dict(out) for out in outputs]

    # ---------------------------------------------------------------- #
    # execution backends                                               #
    # ---------------------------------------------------------------- #

    def _chunksize(self, n: int) -> int:
        """Two chunks per worker, capped so huge batches still pipeline."""
        override = os.environ.get("REPRO_CHUNKSIZE", "").strip()
        if override:
            return max(int(override), 1)
        return max(1, min(32, n // (self.jobs * 2)))

    def _submit(
        self, items: List[Tuple[int, dict]]
    ) -> Tuple[Iterator[Tuple[int, dict]], bool]:
        """Dispatch index-tagged payloads; ``(iterator, pooled)``.

        The pooled path enqueues the whole item list into the pool
        *now* (``imap_unordered`` submission is eager) and returns its
        completion-order iterator; the serial path returns a lazy
        generator so an aborted batch stops executing cells.
        """
        if self.jobs <= 1 or len(items) <= 1:
            return (_execute_indexed(item) for item in items), False
        pool = self._ensure_pool()
        return pool.imap_unordered(
            _execute_indexed, items, chunksize=self._chunksize(len(items))
        ), True

    @staticmethod
    def _dispose(
        stream: Optional[Iterator[Tuple[int, dict]]], pooled: bool
    ) -> None:
        """Leave no stream half-consumed.

        Pool iterators are *drained* — abandoning ``imap_unordered``
        mid-batch would leave its result collector filling from a
        detached thread; consuming the remainder (discarding outputs)
        returns the pool to a clean, reusable state.  Serial generators
        are closed so no further cells execute.
        """
        if stream is None:
            return
        if not pooled:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
            return
        while True:
            try:
                next(stream)
            except StopIteration:
                return
            except Exception:
                continue

    def _map(self, payloads: List[dict]) -> List[dict]:
        if not payloads:
            return []
        if self.jobs <= 1 or len(payloads) <= 1:
            return [execute_payload(p) for p in payloads]
        pool = self._ensure_pool()
        return pool.map(
            execute_payload, payloads, chunksize=self._chunksize(len(payloads))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.cache.root if self.cache else "off"
        alive = "up" if self._pool is not None else "idle"
        return f"<CampaignRunner jobs={self.jobs} pool={alive} cache={where}>"
