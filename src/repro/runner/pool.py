"""The streaming process-pool campaign runner with memoization.

:class:`CampaignRunner` takes batches of simulation cells and returns
records in input order.  Four properties the test layer pins down:

* **Determinism** — every cell is executed from its data description via
  the same construction path (see :mod:`repro.runner.jobs`), so
  ``jobs=1`` and ``jobs=N`` produce identical records.
* **Memoization** — with a cache attached, completed cells are stored
  under their content hash; a warm rerun only simulates new cells.
  Duplicate cells *within* one batch are simulated once and fanned back
  to every requesting index.  Hit resolution is batched
  (:meth:`~repro.runner.cache.ResultCache.get_many`): one index load
  plus one sequential read per pack, not one ``open()`` per cell.
* **Order independence** — :meth:`run_sims` returns results in
  submission order regardless of worker completion order (index-tagged
  payloads, reassembled on arrival).
* **Streaming** — :meth:`run_sims_iter` yields ``(index, record)`` as
  cells complete (``imap_unordered`` pipelined dispatch): cache puts and
  downstream aggregation happen while later cells are still simulating,
  and nothing forces the whole batch to be held in memory at once.

The worker pool is **persistent**: lazily spawned on the first parallel
batch and reused across batches for the runner's lifetime, so a campaign
of many small batches pays the worker start-up cost once, not per batch.
``CampaignRunner`` is a context manager; call :meth:`close` (or leave
the ``with`` block) to release the workers.  A leaked runner's pool is
terminated by a GC finalizer.

Start method: ``forkserver`` where available (avoids the
fork-in-threaded-process ``DeprecationWarning`` on Python 3.12+ while
keeping warm-import workers via preload), falling back to ``fork`` then
``spawn``; ``REPRO_START_METHOD`` forces a specific method and
``REPRO_CHUNKSIZE`` overrides the dispatch chunk size.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache
from repro.runner.hashing import cache_key
from repro.runner.jobs import SimJob, TimingJob, execute_payload
from repro.runner.record import SimRecord, TimingRecord


def _pool_context():
    """forkserver where available, else fork, else spawn.

    ``forkserver`` workers fork from a clean single-threaded server
    process (no stale parent threads/locks, no py3.12 fork deprecation)
    that pre-imports the simulator, so spawning stays cheap.
    ``REPRO_START_METHOD`` forces one method (e.g. for debugging spawn
    path portability).
    """
    methods = multiprocessing.get_all_start_methods()
    forced = os.environ.get("REPRO_START_METHOD", "").strip()
    order = [forced] if forced else ["forkserver", "fork", "spawn"]
    for method in order:
        if method in methods:
            ctx = multiprocessing.get_context(method)
            if method == "forkserver":
                ctx.set_forkserver_preload(["repro.core"])
            return ctx
    raise ValueError(
        f"no usable start method in {order}; platform offers {methods}"
    )


def _execute_indexed(item: Tuple[int, dict]) -> Tuple[int, dict]:
    """Pool target: run one index-tagged payload, return the tag with it."""
    index, payload = item
    return index, execute_payload(payload)


def _shutdown_pool(pool) -> None:
    """Finalizer: stop a pool's workers immediately (results are in)."""
    pool.terminate()
    pool.join()


class CampaignRunner:
    """Runs simulation cells over a persistent pool with an optional cache."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Cells actually simulated (cache misses) over this runner's life.
        self.simulated = 0
        self._pool = None
        self._pool_finalizer = None

    # ---------------------------------------------------------------- #
    # pool lifecycle                                                   #
    # ---------------------------------------------------------------- #

    def _ensure_pool(self):
        """The persistent worker pool, spawned on first parallel batch."""
        if self._pool is None:
            ctx = _pool_context()
            self._pool = ctx.Pool(processes=self.jobs)
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def close(self) -> None:
        """Release the worker pool and flush the cache manifest."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()  # terminate + join; idempotent
            self._pool_finalizer = None
        self._pool = None
        if self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- #
    # simulation cells                                                 #
    # ---------------------------------------------------------------- #

    def run_sims(self, sim_jobs: Sequence[SimJob]) -> List[SimRecord]:
        """Execute (or recall) every cell; records in submission order."""
        jobs = list(sim_jobs)
        records: List[Optional[SimRecord]] = [None] * len(jobs)
        for i, record in self.run_sims_iter(jobs):
            records[i] = record
        return records  # type: ignore[return-value]

    def run_sims_iter(
        self, sim_jobs: Sequence[SimJob]
    ) -> Iterator[Tuple[int, SimRecord]]:
        """Yield ``(index, record)`` as cells complete.

        Cache hits come first (in submission order); misses follow in
        *completion* order as the pool finishes them — each one is
        written to the cache and handed to the caller immediately, so
        aggregation and checkpointing overlap simulation.  Use
        :meth:`run_sims_ordered` when the consumer needs submission
        order with streaming memory behaviour.

        The cache manifest is synced when the batch completes *and* on
        the error path, so every finished cell survives a mid-batch
        crash (the checkpoint/resume contract).
        """
        jobs = list(sim_jobs)
        keys = [cache_key(job) for job in jobs]

        hits: Dict[str, dict] = {}
        if self.cache is not None:
            hits = self.cache.get_many(keys)

        #: every submission index waiting on each still-missing key
        waiters: Dict[str, List[int]] = {}
        to_run: List[int] = []
        for i, key in enumerate(keys):
            if key in hits:
                continue
            if key not in waiters:
                to_run.append(i)
            waiters.setdefault(key, []).append(i)

        for i, key in enumerate(keys):
            if key in hits:
                yield i, SimRecord.from_dict(hits[key])

        if not to_run:
            return
        try:
            items = [(i, jobs[i].payload()) for i in to_run]
            for first_index, output in self._imap_unordered(items):
                self.simulated += 1
                key = keys[first_index]
                if self.cache is not None:
                    self.cache.put(key, output)
                record = SimRecord.from_dict(output)
                for waiter in waiters[key]:
                    yield waiter, record
        finally:
            if self.cache is not None:
                self.cache.sync()

    def run_sims_ordered(
        self, sim_jobs: Sequence[SimJob]
    ) -> Iterator[Tuple[int, SimRecord]]:
        """Stream records in submission order.

        A reorder buffer holds results that complete ahead of the next
        unyielded index; its size is bounded by the pool's pipelining
        skew (roughly ``jobs x chunksize``) in cold or fully-warm runs,
        not by the campaign size.
        """
        reorder: Dict[int, SimRecord] = {}
        next_index = 0
        for i, record in self.run_sims_iter(sim_jobs):
            reorder[i] = record
            while next_index in reorder:
                yield next_index, reorder.pop(next_index)
                next_index += 1

    # ---------------------------------------------------------------- #
    # timing cells (never cached)                                      #
    # ---------------------------------------------------------------- #

    def run_timings(self, timing_jobs: Sequence[TimingJob]) -> List[TimingRecord]:
        """Execute scheduling-overhead measurements; never cached."""
        outputs = self._map([j.payload() for j in timing_jobs])
        return [TimingRecord.from_dict(out) for out in outputs]

    # ---------------------------------------------------------------- #
    # execution backends                                               #
    # ---------------------------------------------------------------- #

    def _chunksize(self, n: int) -> int:
        """Two chunks per worker, capped so huge batches still pipeline."""
        override = os.environ.get("REPRO_CHUNKSIZE", "").strip()
        if override:
            return max(int(override), 1)
        return max(1, min(32, n // (self.jobs * 2)))

    def _imap_unordered(
        self, items: List[Tuple[int, dict]]
    ) -> Iterator[Tuple[int, dict]]:
        """Index-tagged payloads -> (index, output), completion order."""
        if self.jobs <= 1 or len(items) <= 1:
            for item in items:
                yield _execute_indexed(item)
            return
        pool = self._ensure_pool()
        yield from pool.imap_unordered(
            _execute_indexed, items, chunksize=self._chunksize(len(items))
        )

    def _map(self, payloads: List[dict]) -> List[dict]:
        if not payloads:
            return []
        if self.jobs <= 1 or len(payloads) <= 1:
            return [execute_payload(p) for p in payloads]
        pool = self._ensure_pool()
        return pool.map(
            execute_payload, payloads, chunksize=self._chunksize(len(payloads))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.cache.root if self.cache else "off"
        alive = "up" if self._pool is not None else "idle"
        return f"<CampaignRunner jobs={self.jobs} pool={alive} cache={where}>"
