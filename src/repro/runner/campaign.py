"""Campaign driver: run many experiments through one shared runner.

A *campaign* is an ordered set of experiment ids executed with a single
:class:`~repro.runner.pool.CampaignRunner`, so all their simulation cells
share the process pool and the memoization cache.  The driver reports
per-experiment wall-clock plus the cache economics of the whole sweep —
the numbers the ``repro-flow campaign`` CLI prints.

Also home to the *golden cell* enumeration: the small, pinned
suite×scheduler grid whose makespans are checked into
``tests/golden/`` as the regression fixture for scheduler drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.runner.context import get_runner, use_runner
from repro.runner.pool import CampaignRunner

#: The pinned golden grid: every mainstream scheduler family at a small,
#: fast size.  Changing this list invalidates the golden fixtures.
GOLDEN_SCHEDULERS = ("hdws", "heft", "peft", "cpop", "minmin", "maxmin", "mct", "olb")
GOLDEN_SIZE = 30
GOLDEN_SEED = 7
GOLDEN_NOISE_CV = 0.1


@dataclass
class CampaignReport:
    """Outcome of one campaign run."""

    results: Dict[str, object] = field(default_factory=dict)
    seconds: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    simulated: int = 0
    cache_stats: Optional[Dict[str, int]] = None
    #: Fault-tolerance accounting (see :class:`CampaignRunner`).
    failed: int = 0
    retried: int = 0
    #: One diagnostic line per quarantined cell.
    quarantined: List[str] = field(default_factory=list)
    #: Health state and gate decisions at campaign end.
    health: str = "healthy"
    gate_events: List[Dict[str, object]] = field(default_factory=list)

    def render_summary(self) -> str:
        """The timing/cache footer the CLI prints after a campaign."""
        lines = ["=== campaign summary ==="]
        for exp_id, secs in self.seconds.items():
            lines.append(f"{exp_id:6s} {secs:8.2f}s")
        lines.append(f"total  {self.total_seconds:8.2f}s")
        lines.append(f"cells simulated: {self.simulated}")
        if self.failed or self.retried:
            lines.append(
                f"cells quarantined: {self.failed} "
                f"(retry dispatches: {self.retried})"
            )
            for entry in self.quarantined:
                lines.append(f"  quarantine: {entry}")
        if self.health != "healthy":
            lines.append(f"campaign health: {self.health}")
        if self.cache_stats is not None:
            s = dict(self.cache_stats)
            line = "cache: {hits} hits, {misses} misses, {puts} puts".format(**s)
            if s.get("failure_hits"):
                line += f" ({s['failure_hits']} recalled failures)"
            lines.append(line)
        return "\n".join(lines)


def run_campaign(
    experiment_ids: Sequence[str],
    runner: Optional[CampaignRunner] = None,
    quick: bool = True,
    seed: int = 0,
) -> CampaignReport:
    """Run the listed experiments through one shared runner.

    Experiments execute sequentially (their cells fan out in parallel),
    preserving each experiment's internal determinism while the pool
    keeps all cores busy within each batch of cells.
    """
    from repro.experiments import REGISTRY

    unknown = [e for e in experiment_ids if e not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; available: {sorted(REGISTRY)}")

    runner = runner or get_runner()
    report = CampaignReport()
    t_campaign = time.perf_counter()
    with use_runner(runner):
        for exp_id in experiment_ids:
            t0 = time.perf_counter()
            report.results[exp_id] = REGISTRY[exp_id](quick=quick, seed=seed)
            report.seconds[exp_id] = time.perf_counter() - t0
    report.total_seconds = time.perf_counter() - t_campaign
    report.simulated = runner.simulated
    report.failed = runner.failed
    report.retried = runner.retried
    report.quarantined = runner.quarantine_report()
    report.health = runner.health.health()[0]
    report.gate_events = list(runner.health.events)
    if runner.cache is not None:
        report.cache_stats = runner.cache.stats.as_dict()
    return report


def golden_jobs() -> List[object]:
    """The pinned golden-regression cells (see tests/golden/)."""
    from repro.experiments.common import make_job, preset_spec, suite_workflows

    from repro.workflows.serialize import workflow_to_dict

    workflows = suite_workflows(size=GOLDEN_SIZE, seed=GOLDEN_SEED)
    cluster = preset_spec(
        "hybrid", nodes=4, cores_per_node=4, gpus_per_node=1
    )
    jobs = []
    for wname, wf in workflows.items():
        # One shared document per workflow: the in-process worker memoizes
        # deserialization by document identity, so the 8 scheduler cells
        # of a suite reuse one Workflow instance (and its graph caches).
        doc = workflow_to_dict(wf)
        for sched in GOLDEN_SCHEDULERS:
            jobs.append(
                make_job(
                    doc,
                    cluster,
                    scheduler=sched,
                    seed=GOLDEN_SEED,
                    noise_cv=GOLDEN_NOISE_CV,
                    label=f"golden:{wname}:{sched}",
                )
            )
    return jobs


def golden_makespans() -> Dict[str, Dict[str, float]]:
    """suite -> scheduler -> makespan for the pinned golden grid."""
    from repro.experiments.common import run_sims, suite_workflows

    suites = list(suite_workflows(size=GOLDEN_SIZE, seed=GOLDEN_SEED))
    records = run_sims(golden_jobs())
    out: Dict[str, Dict[str, float]] = {}
    i = 0
    for wname in suites:
        out[wname] = {}
        for sched in GOLDEN_SCHEDULERS:
            out[wname][sched] = records[i].makespan
            i += 1
    return out
