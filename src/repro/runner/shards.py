"""Append-only JSONL shard sink for streaming campaign records.

Large campaigns cannot hold every :class:`~repro.runner.record.SimRecord`
in memory, and a single giant output file is hostile to both resume and
post-hoc analysis.  :class:`ShardWriter` appends ``(index, record)``
pairs to a sequence of JSONL *shards* that rotate at a configurable
record count, so the peak memory of the sink is one line and readers can
process a campaign shard-by-shard.

Format (one JSON document per line):

* line 1 of every shard — the header
  ``{"schema": "repro.shards/v1", "shard": <ordinal>}``;
* every following line — ``{"i": <submission index>, "r": <record>}``.

Records arrive in completion order (the runner's
:meth:`~repro.runner.pool.CampaignRunner.run_sims_iter` contract), so
line order within a shard is *not* submission order; the embedded ``i``
is authoritative.  :func:`iter_shard_records` replays every shard in
ordinal order and tolerates a torn final line (a writer killed
mid-append), which makes the sink safe to re-read after a crash.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Bump when the line format changes incompatibly.
SHARD_SCHEMA = "repro.shards/v1"

_SHARD_DIGITS = 5


def _shard_name(prefix: str, ordinal: int) -> str:
    return f"{prefix}-{ordinal:0{_SHARD_DIGITS}d}.jsonl"


class ShardWriter:
    """Rotating append-only JSONL sink for ``(index, record)`` pairs."""

    def __init__(
        self,
        root: str,
        prefix: str = "records",
        records_per_shard: int = 50_000,
        flush_every: int = 256,
    ) -> None:
        if records_per_shard < 1:
            raise ValueError("records_per_shard must be >= 1")
        self.root = root
        self.prefix = prefix
        self.records_per_shard = records_per_shard
        self.flush_every = max(1, flush_every)
        #: Records appended over this writer's lifetime.
        self.written = 0
        self._shard_ordinal = self._next_ordinal()
        self._in_shard = 0
        self._since_flush = 0
        self._fh = None

    def _next_ordinal(self) -> int:
        """First unused shard ordinal (appends never rewrite a shard)."""
        if not os.path.isdir(self.root):
            return 0
        taken = [
            name
            for name in sorted(os.listdir(self.root))
            if name.startswith(self.prefix + "-") and name.endswith(".jsonl")
        ]
        ordinals = []
        for name in taken:
            stem = name[len(self.prefix) + 1 : -len(".jsonl")]
            if stem.isdigit():
                ordinals.append(int(stem))
        return max(ordinals) + 1 if ordinals else 0

    def _ensure_shard(self):
        if self._fh is None:
            os.makedirs(self.root, exist_ok=True)
            path = os.path.join(self.root, _shard_name(self.prefix, self._shard_ordinal))
            self._fh = open(path, "a", encoding="utf-8")
            if self._fh.tell() == 0:
                header = {"schema": SHARD_SCHEMA, "shard": self._shard_ordinal}
                self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        return self._fh

    def append(self, index: int, record: Dict[str, Any]) -> None:
        """Append one record; rotates to a fresh shard when the current fills."""
        fh = self._ensure_shard()
        fh.write(
            json.dumps({"i": index, "r": record}, sort_keys=True) + "\n"
        )
        self.written += 1
        self._in_shard += 1
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            fh.flush()
            self._since_flush = 0
        if self._in_shard >= self.records_per_shard:
            self._rotate()

    def _rotate(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None
        self._shard_ordinal += 1
        self._in_shard = 0
        self._since_flush = 0

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def shard_paths(root: str, prefix: str = "records") -> List[str]:
    """Every shard under ``root``, in ordinal (write) order."""
    if not os.path.isdir(root):
        return []
    names = sorted(
        name
        for name in os.listdir(root)
        if name.startswith(prefix + "-") and name.endswith(".jsonl")
    )
    return [os.path.join(root, name) for name in names]


def iter_shard_records(
    root: str, prefix: str = "records"
) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Replay ``(index, record)`` pairs from every shard, in write order.

    Skips shards whose header announces an unknown schema and tolerates
    one torn trailing line per shard (a writer killed mid-append) —
    everything before the tear replays normally.
    """
    for path in shard_paths(root, prefix):
        with open(path, encoding="utf-8") as fh:
            header: Optional[Dict[str, Any]] = None
            for lineno, line in enumerate(fh):
                try:
                    doc = json.loads(line)
                except ValueError:
                    break  # torn tail: a crashed writer's final append
                if lineno == 0:
                    header = doc if isinstance(doc, dict) else None
                    if header is None or header.get("schema") != SHARD_SCHEMA:
                        break  # foreign file; never guess at its layout
                    continue
                if not isinstance(doc, dict) or "i" not in doc or "r" not in doc:
                    break
                yield int(doc["i"]), doc["r"]
