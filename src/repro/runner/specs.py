"""Factory specs — objects as picklable, hashable data.

A simulation cell must cross a process boundary and feed a stable cache
key, so everything that parameterizes it (cluster, scheduler, recovery
policy, governor, ...) is described as a *spec* instead of a live object:

* any JSON value (numbers, strings, bools, None, lists, dicts), or
* a factory call ``{"$factory": "module:Qual.name", "args": [...],
  "kwargs": {...}}`` whose args/kwargs may themselves be specs.

:func:`build` resolves a spec into the live object by importing the
module and calling the attribute; :func:`factory_spec` goes the other
way from a callable.  Because specs are plain data, the canonical JSON of
a spec doubles as its cache-key contribution — two cells collide exactly
when they would construct equal inputs.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Union

#: Marker key identifying a factory-call node inside a spec tree.
FACTORY_KEY = "$factory"


def factory_spec(factory: Union[Callable, str], *args: Any, **kwargs: Any) -> Dict[str, Any]:
    """Spec for ``factory(*args, **kwargs)``.

    ``factory`` may be a callable (its ``module:qualname`` path is
    recorded) or an explicit ``"module:qualname"`` string.  Lambdas and
    locally-defined callables are rejected: they cannot be re-imported in
    a worker process, and their identity would not survive a restart.
    """
    if callable(factory):
        qualname = getattr(factory, "__qualname__", "")
        module = getattr(factory, "__module__", None)
        if not module or "<" in qualname:
            raise ValueError(
                f"factory {factory!r} is not importable by path; "
                "use a module-level callable"
            )
        path = f"{module}:{qualname}"
    else:
        path = str(factory)
        if ":" not in path:
            raise ValueError(f"factory path {path!r} must look like 'module:qualname'")
    spec: Dict[str, Any] = {FACTORY_KEY: path}
    if args:
        spec["args"] = [_check_data(a) for a in args]
    if kwargs:
        spec["kwargs"] = {k: _check_data(v) for k, v in sorted(kwargs.items())}
    return spec


def is_spec(value: Any) -> bool:
    """Whether ``value`` is a factory-call spec node."""
    return isinstance(value, dict) and FACTORY_KEY in value


def resolve_path(path: str) -> Any:
    """Import ``module:Qual.name`` and return the attribute."""
    module_name, _sep, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"bad factory path {path!r}; expected 'module:qualname'")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def build(spec: Any) -> Any:
    """Materialize a spec: factory nodes are called, containers recursed.

    Plain values pass through unchanged, so configuration dicts may mix
    scalars with factory specs freely.
    """
    if is_spec(spec):
        factory = resolve_path(spec[FACTORY_KEY])
        args = [build(a) for a in spec.get("args", ())]
        kwargs = {k: build(v) for k, v in spec.get("kwargs", {}).items()}
        return factory(*args, **kwargs)
    if isinstance(spec, dict):
        return {k: build(v) for k, v in spec.items()}
    if isinstance(spec, (list, tuple)):
        return [build(v) for v in spec]
    return spec


def _check_data(value: Any) -> Any:
    """Validate a spec argument is data (or a nested spec), not an object.

    Tuples are normalized to lists so the spec equals its JSON round-trip.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_data(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _check_data(v) for k, v in value.items()}
    raise TypeError(
        f"spec arguments must be JSON data or nested specs, got {type(value).__name__}; "
        "wrap objects in factory_spec(...)"
    )
