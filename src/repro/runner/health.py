"""Campaign health model, policy gate and runway admission control.

A million-cell campaign runs unattended; nobody watches a terminal for a
poison cell or a disk filling up.  This module is the *decision layer*
that replaces the human: it folds the stream of per-cell outcomes into a
small, explainable **health state**, and a single **policy gate** turns
that state into the only admission decision the runner acts on.

Design rules (after the run-policy blueprint in ``SNIPPETS.md`` §2):

* :func:`compute_health` is a **pure function** of recent outcome
  history — no I/O, no wall clock, no side effects — so the same
  campaign replays to the same decisions (the determinism lint enforces
  the no-clock part mechanically).
* :func:`gate` is the **only place** that decides admission.  The
  runner, the CLI and the smoke harness all go through it; nothing else
  in the system makes this call.
* ``blocked`` **cannot be overridden** — not by ``--on-unhealthy
  ignore``, not by a manual flag.  An infrastructure failure (memory,
  disk, permissions) means more work makes things worse.

Health states, most to least healthy:

* ``healthy`` — no issues in the recent window; admit at full runway.
* ``degraded`` — the same error class failed in consecutive cells, or
  the simulated dead-task rate crossed the policy threshold: a likely
  systemic issue with one cell family.
* ``unstable`` — several failures inside a short window: general
  instability, not one bad cell.
* ``blocked`` — the latest failure was an infrastructure error (or a
  sanitizer invariant violation): stop, a human must look.

The **runway controller** (``SNIPPETS.md`` §3) turns gate decisions into
feed-ahead: instead of reacting batch-by-batch (admit the next batch
only when the previous one drains), the runner keeps ``K`` batches of
lead time in flight while healthy, shrinks the runway to one batch under
``throttle``, and stops admitting under ``halt``.

Every gate decision is emitted as a :mod:`repro.observe` event
(:func:`repro.observe.emit_event`), so a tripped gate is diagnosable
from the trace after the fact: which batch, which state, which rule
fired.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple

# --------------------------------------------------------------------- #
# vocabulary                                                            #
# --------------------------------------------------------------------- #

#: Health states, ordered most to least healthy.
HEALTHY = "healthy"
DEGRADED = "degraded"
UNSTABLE = "unstable"
BLOCKED = "blocked"
STATES = (HEALTHY, DEGRADED, UNSTABLE, BLOCKED)

#: Gate actions.
ADMIT = "admit"
THROTTLE = "throttle"
HALT = "halt"
ACTIONS = (ADMIT, THROTTLE, HALT)

#: Failure categories (stamped into :class:`~repro.runner.record.CellFailure`).
TRANSIENT = "transient"
PERMANENT = "permanent"
INFRASTRUCTURE = "infrastructure"
SANITIZER = "sanitizer"
CATEGORIES = (TRANSIENT, PERMANENT, INFRASTRUCTURE, SANITIZER)

#: Responses to a degraded/unstable state (``blocked`` always halts).
ON_UNHEALTHY = ("throttle", "halt", "ignore")


class TransientCellError(RuntimeError):
    """Marker for worker failures that are worth retrying.

    Raise (or subclass) this inside a worker for conditions that a
    bounded retry can plausibly clear; the failure-injection harness
    uses it for its seeded transient faults.
    """


def classify_exception(exc: BaseException) -> str:
    """Failure category of a worker exception, by class.

    Pure and conservative: anything unrecognized is ``permanent`` (a
    deterministic simulation error retries to the same failure, so
    retrying unknowns only burns cycles).
    """
    if isinstance(exc, TransientCellError):
        return TRANSIENT
    # Sanitizer invariant violations are matched by name so this module
    # (importable from workers) never drags the sanitizer in.
    for klass in type(exc).__mro__:
        if klass.__name__ == "SanitizerError":
            return SANITIZER
    if isinstance(exc, (MemoryError, PermissionError)):
        return INFRASTRUCTURE
    if isinstance(exc, (TimeoutError, ConnectionError, InterruptedError)):
        return TRANSIENT
    if isinstance(exc, OSError):
        # Disk-full, too-many-open-files, broken pipes to dead workers:
        # the host, not the cell, is the problem.
        return INFRASTRUCTURE
    return PERMANENT


# --------------------------------------------------------------------- #
# outcome view                                                          #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class OutcomeView:
    """The minimal, pure view of one finished cell the health model reads.

    ``ok`` is worker-level success (the cell produced a record);
    ``sim_success`` is the *simulated* verdict inside that record — a
    cell can complete while its simulated workflow stranded tasks, and a
    rising dead-task rate is a health signal of its own.
    """

    ok: bool
    category: str = ""
    error_type: str = ""
    retried: bool = False
    sim_success: bool = True


# --------------------------------------------------------------------- #
# policy + pure health function                                         #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds of the pure health computation (all windows in cells)."""

    #: Outcomes retained for health computation.
    window: int = 64
    #: ``unstable`` when >= this many failures land in the last
    #: ``unstable_window`` outcomes (3-in-5 after SNIPPETS §2).
    unstable_failures: int = 3
    unstable_window: int = 5
    #: ``degraded`` when the same error class fails this many times in a
    #: row (consecutive outcomes, successes break the streak).
    degraded_streak: int = 2
    #: ``degraded`` when this fraction of recent *completed* cells report
    #: a failed simulation (dead tasks), given a minimum sample.
    dead_task_rate: float = 0.25
    dead_task_min_sample: int = 8
    #: Cells between mid-stream gate checks inside one batch.
    check_every: int = 32


def compute_health(
    outcomes: Sequence[OutcomeView], policy: HealthPolicy = HealthPolicy()
) -> Tuple[str, str]:
    """``(state, reason)`` from recent outcome history.  Pure.

    Rules fire most-severe first; the reason names the rule that fired
    so a gate trip is explainable from the event alone.
    """
    recent = list(outcomes[-policy.window:])
    if not recent:
        return HEALTHY, "no history"

    # Rule 1 — BLOCKED: the latest failure is an infrastructure error or
    # a sanitizer invariant violation.  More work cannot help.
    last_failure: Optional[OutcomeView] = None
    for view in reversed(recent):
        if not view.ok:
            last_failure = view
            break
    if last_failure is not None and last_failure.category in (
        INFRASTRUCTURE, SANITIZER,
    ):
        return BLOCKED, (
            f"last failure is {last_failure.category} "
            f"({last_failure.error_type or 'unknown error'})"
        )

    # Rule 2 — UNSTABLE: several failures in a short window.
    tail = recent[-policy.unstable_window:]
    tail_failures = sum(1 for view in tail if not view.ok)
    if tail_failures >= policy.unstable_failures:
        return UNSTABLE, (
            f"{tail_failures} failures in last {len(tail)} cells"
        )

    # Rule 3 — DEGRADED: the same error class failed in consecutive
    # cells (a systemic issue with one cell family), or the simulated
    # dead-task rate crossed the threshold.
    streak = 0
    streak_type = ""
    for view in reversed(recent):
        if view.ok:
            break
        if streak and view.error_type != streak_type:
            break
        streak_type = view.error_type
        streak += 1
    if streak >= policy.degraded_streak:
        return DEGRADED, (
            f"{streak} consecutive {streak_type or 'unknown'} failures"
        )
    completed = [view for view in recent if view.ok]
    if len(completed) >= policy.dead_task_min_sample:
        dead = sum(1 for view in completed if not view.sim_success)
        rate = dead / len(completed)
        if rate >= policy.dead_task_rate:
            return DEGRADED, (
                f"dead-task rate {rate:.0%} over last "
                f"{len(completed)} completed cells"
            )

    return HEALTHY, "no health issues in window"


# --------------------------------------------------------------------- #
# the gate                                                              #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class GateDecision:
    """One admission decision: what to do, why, from which state."""

    action: str
    state: str
    reason: str

    def as_event(self, **extra: object) -> Dict[str, object]:
        """JSON-native event payload for the observe stream."""
        payload: Dict[str, object] = {
            "action": self.action,
            "state": self.state,
            "reason": self.reason,
        }
        payload.update(extra)
        return payload


def gate(
    state: str, *, on_unhealthy: str = "throttle", reason: str = ""
) -> GateDecision:
    """The single policy gate: health state → admission decision.

    * ``healthy``  → ``admit`` (full runway).
    * ``degraded`` / ``unstable`` → per ``on_unhealthy``: ``throttle``
      (runway shrinks to one batch), ``halt``, or ``ignore`` (admit, but
      the decision is still emitted so the trace shows the state).
    * ``blocked``  → ``halt``, **always**.  ``on_unhealthy`` cannot
      override it; nothing can.
    """
    if on_unhealthy not in ON_UNHEALTHY:
        raise ValueError(
            f"on_unhealthy must be one of {ON_UNHEALTHY}, got {on_unhealthy!r}"
        )
    if state == BLOCKED:
        return GateDecision(HALT, state, reason or "blocked is not overridable")
    if state in (DEGRADED, UNSTABLE):
        if on_unhealthy == "halt":
            return GateDecision(HALT, state, reason)
        if on_unhealthy == "ignore":
            return GateDecision(ADMIT, state, reason)
        return GateDecision(THROTTLE, state, reason)
    return GateDecision(ADMIT, state, reason)


def runway_admissions(in_flight: int, decision: GateDecision, runway: int) -> int:
    """How many batches to admit now, keeping ``runway`` batches of lead.

    Feed-ahead instead of react-on-complete: while healthy the
    controller keeps ``runway`` batches in flight so workers never idle
    at a batch boundary; ``throttle`` shrinks the lead to one batch;
    ``halt`` admits nothing.
    """
    if runway < 1:
        raise ValueError(f"runway must be >= 1, got {runway}")
    if decision.action == HALT:
        return 0
    target = 1 if decision.action == THROTTLE else runway
    return max(0, target - in_flight)


# --------------------------------------------------------------------- #
# the tracker (bounded history + event emission)                        #
# --------------------------------------------------------------------- #

class HealthTracker:
    """Accumulates outcomes and turns them into emitted gate decisions.

    The only stateful piece of the layer, and its state is a bounded
    deque of :class:`OutcomeView` plus counters — no clock, no I/O
    beyond the observe event emission.  One tracker serves one
    :class:`~repro.runner.pool.CampaignRunner` lifetime.
    """

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        on_unhealthy: str = "throttle",
        emit: Optional[Callable[[str, Dict[str, object]], None]] = None,
    ) -> None:
        if on_unhealthy not in ON_UNHEALTHY:
            raise ValueError(
                f"on_unhealthy must be one of {ON_UNHEALTHY}, "
                f"got {on_unhealthy!r}"
            )
        self.policy = policy or HealthPolicy()
        self.on_unhealthy = on_unhealthy
        self._emit = emit
        self._history: Deque[OutcomeView] = deque(maxlen=self.policy.window)
        #: Every emitted decision event, oldest first (bounded).
        self.events: Deque[Dict[str, object]] = deque(maxlen=1024)
        self.seen = 0
        self.failures = 0
        self._since_check = 0

    def observe(self, outcome: OutcomeView) -> None:
        """Fold one finished cell into the health history."""
        self._history.append(outcome)
        self.seen += 1
        self._since_check += 1
        if not outcome.ok:
            self.failures += 1

    def health(self) -> Tuple[str, str]:
        """Current ``(state, reason)`` — pure function of the history."""
        return compute_health(tuple(self._history), self.policy)

    def decide(self, context: str = "admission", **extra: object) -> GateDecision:
        """Gate the current health; emit the decision as an observe event."""
        state, reason = self.health()
        decision = gate(state, on_unhealthy=self.on_unhealthy, reason=reason)
        event = decision.as_event(
            context=context,
            cells_seen=self.seen,
            failures=self.failures,
            **extra,
        )
        self.events.append(event)
        if self._emit is not None:
            self._emit("campaign.gate", event)
        else:
            from repro.observe import emit_event

            emit_event("campaign.gate", **event)
        self._since_check = 0
        return decision

    def maybe_decide(
        self, context: str = "stream", **extra: object
    ) -> Optional[GateDecision]:
        """A mid-stream gate check every ``policy.check_every`` outcomes."""
        if self._since_check < self.policy.check_every:
            return None
        return self.decide(context=context, **extra)
