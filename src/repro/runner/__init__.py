"""Parallel campaign runner with content-addressed memoization.

The experiment grid of the evaluation (T1..T5, F1..F7, X1..X3) is a set
of independent ``(workflow, cluster, scheduler, seed)`` simulation cells.
This package turns that observation into infrastructure, the way
RADICAL-Pilot/Parsl treat concurrent cached task execution as the core
scaling primitive:

* :mod:`repro.runner.specs` — a picklable/hashable *factory spec*
  mini-language describing clusters, schedulers and policies as data.
* :mod:`repro.runner.hashing` — canonical JSON + SHA-256 cache keys.
* :mod:`repro.runner.record` — :class:`SimRecord`, the flat summary of a
  run that experiments consume (and the cache stores).
* :mod:`repro.runner.cache` — the on-disk content-addressed result cache.
* :mod:`repro.runner.jobs` — :class:`SimJob`/:class:`TimingJob` cell
  descriptions plus the process-pool worker entry points.
* :mod:`repro.runner.pool` — :class:`CampaignRunner`, fanning cells over
  ``multiprocessing`` with memoization.
* :mod:`repro.runner.context` — the ambient runner experiments submit to.
* :mod:`repro.runner.campaign` — multi-experiment campaign driver.

The contract the test layer pins down: for any jobs setting and any cache
state, a campaign produces bit-identical results — "parallel" can never
silently mean "different numbers".
"""

from repro.runner.cache import CacheStats, ResultCache
from repro.runner.campaign import CampaignReport, run_campaign
from repro.runner.context import (
    get_runner,
    runner_from_env,
    set_runner,
    use_runner,
)
from repro.runner.hashing import cache_key, canonical_json
from repro.runner.jobs import SimJob, TimingJob
from repro.runner.pool import CampaignRunner
from repro.runner.record import SimRecord
from repro.runner.specs import build, factory_spec, is_spec

__all__ = [
    "CacheStats",
    "CampaignReport",
    "CampaignRunner",
    "ResultCache",
    "SimJob",
    "SimRecord",
    "TimingJob",
    "build",
    "cache_key",
    "canonical_json",
    "factory_spec",
    "get_runner",
    "is_spec",
    "run_campaign",
    "runner_from_env",
    "set_runner",
    "use_runner",
]
