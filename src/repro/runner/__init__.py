"""Parallel campaign runner with content-addressed memoization.

The experiment grid of the evaluation (T1..T5, F1..F7, X1..X3) is a set
of independent ``(workflow, cluster, scheduler, seed)`` simulation cells.
This package turns that observation into infrastructure, the way
RADICAL-Pilot/Parsl treat concurrent cached task execution as the core
scaling primitive:

* :mod:`repro.runner.specs` — a picklable/hashable *factory spec*
  mini-language describing clusters, schedulers and policies as data.
* :mod:`repro.runner.hashing` — canonical JSON + SHA-256 cache keys.
* :mod:`repro.runner.record` — :class:`SimRecord`, the flat summary of a
  run that experiments consume (and the cache stores), plus
  :class:`CellFailure`, the structured record of a cell that failed.
* :mod:`repro.runner.health` — the campaign health model and the single
  policy gate that admits, throttles or halts batch admission.
* :mod:`repro.runner.cache` — the on-disk content-addressed result cache.
* :mod:`repro.runner.jobs` — :class:`SimJob`/:class:`TimingJob` cell
  descriptions plus the process-pool worker entry points.
* :mod:`repro.runner.pool` — :class:`CampaignRunner`, fanning cells over
  ``multiprocessing`` with memoization.
* :mod:`repro.runner.context` — the ambient runner experiments submit to.
* :mod:`repro.runner.campaign` — multi-experiment campaign driver.

The contract the test layer pins down: for any jobs setting and any cache
state, a campaign produces bit-identical results — "parallel" can never
silently mean "different numbers".
"""

from repro.runner.cache import CacheStats, ResultCache
from repro.runner.campaign import CampaignReport, run_campaign
from repro.runner.context import (
    get_runner,
    runner_from_env,
    set_runner,
    use_runner,
)
from repro.runner.hashing import cache_key, canonical_json
from repro.runner.health import (
    GateDecision,
    HealthPolicy,
    HealthTracker,
    OutcomeView,
    TransientCellError,
    classify_exception,
    compute_health,
    gate,
    runway_admissions,
)
from repro.runner.jobs import SimJob, TimingJob
from repro.runner.pool import (
    CampaignCellError,
    CampaignHaltedError,
    CampaignRunner,
    inject_spec_from_env,
)
from repro.runner.record import CellFailure, SimRecord, is_failure_record
from repro.runner.specs import build, factory_spec, is_spec

__all__ = [
    "CacheStats",
    "CampaignCellError",
    "CampaignHaltedError",
    "CampaignReport",
    "CampaignRunner",
    "CellFailure",
    "GateDecision",
    "HealthPolicy",
    "HealthTracker",
    "OutcomeView",
    "ResultCache",
    "SimJob",
    "SimRecord",
    "TimingJob",
    "TransientCellError",
    "build",
    "cache_key",
    "canonical_json",
    "classify_exception",
    "compute_health",
    "factory_spec",
    "gate",
    "get_runner",
    "inject_spec_from_env",
    "is_failure_record",
    "is_spec",
    "run_campaign",
    "runner_from_env",
    "runway_admissions",
    "set_runner",
    "use_runner",
]
