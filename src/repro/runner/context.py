"""The ambient campaign runner experiments submit cells to.

Experiment modules stay pure functions of ``(quick, seed)``: they do not
take a runner parameter.  Instead they fetch the process-wide active
runner, which the CLI / campaign driver / tests configure::

    with use_runner(CampaignRunner(jobs=4, cache=ResultCache(".repro-cache"))):
        result = run_t1(quick=True)

When nothing is configured, the default runner is serial and its cache is
controlled by the ``REPRO_CACHE_DIR`` environment variable (unset = no
caching), so importing the runner layer never surprises a test with disk
writes or extra processes.  ``REPRO_JOBS`` likewise seeds the default
parallelism for ad-hoc runs.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

from repro.runner.cache import ResultCache
from repro.runner.pool import CampaignRunner

_active: Optional[CampaignRunner] = None


def runner_from_env() -> CampaignRunner:
    """A runner configured from REPRO_JOBS / REPRO_CACHE_DIR."""
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "")
    cache = ResultCache(cache_dir) if cache_dir else None
    return CampaignRunner(jobs=max(jobs, 1), cache=cache)


def get_runner() -> CampaignRunner:
    """The active runner (lazily built from the environment)."""
    global _active
    if _active is None:
        _active = runner_from_env()
    return _active


def set_runner(runner: Optional[CampaignRunner]) -> None:
    """Install (or with None, reset to env-default) the active runner."""
    global _active
    _active = runner


@contextlib.contextmanager
def use_runner(runner: CampaignRunner) -> Iterator[CampaignRunner]:
    """Scoped install of ``runner`` as the active campaign runner."""
    global _active
    previous = _active
    _active = runner
    try:
        yield runner
    finally:
        _active = previous
