"""Canonical hashing of simulation cells.

The cache key of a cell must be *stable* (same inputs → same key across
process restarts, dict insertion orders and platforms running the same
Python) and *discriminating* (any change to the workflow spec, cluster
preset, scheduler parameters or seed → a different key).  Both properties
come from hashing a canonical JSON form: keys sorted, minimal separators,
floats via ``repr`` round-trip (exact for IEEE doubles), containers
normalized.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: Bump when the semantics of cached records change incompatibly (e.g. a
#: SimRecord field changes meaning); invalidates every existing entry.
CACHE_SCHEMA_VERSION = 1


def _normalize(obj: Any) -> Any:
    """Coerce to JSON-native types with deterministic container order."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # Keep integral floats distinct from ints: json renders 1.0 as 1.0.
        return obj
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _normalize(v) for k, v in obj.items()}
    raise TypeError(
        f"cannot canonically hash {type(obj).__name__}; "
        "describe it as a factory spec first"
    )


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace, exact floats."""
    try:
        # Fast path: job payloads are str-keyed JSON-native trees, which
        # the C encoder serializes directly to the same canonical text
        # the normalizing walk would produce (tuples render as arrays).
        return json.dumps(
            obj,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError):
        # Exotic containers or key types: normalize first (this is also
        # where unsupported types get the descriptive TypeError).
        return json.dumps(
            _normalize(obj),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )


def digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()


#: Canonical JSON of shared cell parts, keyed by object identity.  A
#: campaign row shares one serialized workflow document (and usually one
#: cluster spec) across hundreds or thousands of cells — only
#: seed/noise/scheduler vary — and the document dominates the payload,
#: so re-serializing it per cell would make key computation
#: O(cells x document): the warm-start bottleneck at 10^5-cell scale.
#: Entries hold a strong reference to the object, keeping its ``id``
#: valid for the entry's lifetime; the ``is`` check makes a stale hit
#: impossible either way.
_part_json_memo: dict = {}
_PART_JSON_MEMO_MAX = 32


def _canonical_part_json(part: Any) -> str:
    """Memoized :func:`canonical_json` of a shared cell part (dict)."""
    entry = _part_json_memo.get(id(part))
    if entry is not None and entry[0] is part:
        return entry[1]
    text = canonical_json(part)
    if len(_part_json_memo) >= _PART_JSON_MEMO_MAX:
        _part_json_memo.clear()
    _part_json_memo[id(part)] = (part, text)
    return text


#: JSON encodings of small strings (job kinds, scheduler registry
#: names), memoized by value.  A campaign re-encodes the same handful of
#: names once per cell; a dict probe is ~50x cheaper than json.dumps.
_str_json_memo: dict = {}


def _canonical_str_json(s: str) -> str:
    text = _str_json_memo.get(s)
    if text is None:
        if len(_str_json_memo) >= 64:
            _str_json_memo.clear()
        text = canonical_json(s)
        _str_json_memo[s] = text
    return text


#: Content fingerprints of workflow documents, memoized the same way.
_doc_fp_memo: dict = {}


def workflow_fingerprint(doc: Any) -> str:
    """Content hash of a workflow document (memoized by identity).

    Pool workers use this to recognise the same document arriving in
    many cell payloads (each unpickled copy has a fresh ``id``) and
    rebuild the :class:`~repro.workflows.graph.Workflow` once per
    distinct document instead of once per cell.
    """
    entry = _doc_fp_memo.get(id(doc))
    if entry is not None and entry[0] is doc:
        return entry[1]
    fp = hashlib.sha256(
        _canonical_part_json(doc).encode("ascii")
    ).hexdigest()
    if len(_doc_fp_memo) >= _PART_JSON_MEMO_MAX:
        _doc_fp_memo.clear()
    _doc_fp_memo[id(doc)] = (doc, fp)
    return fp


def cache_key(job) -> str:
    """Content-addressed key of a :class:`~repro.runner.jobs.SimJob`.

    Covers everything that can change the simulation's output: the full
    serialized workflow document, the cluster factory spec, the scheduler
    name/params, the run configuration (seed, noise, faults, recovery,
    governor, mode, ...) and the cache schema version.

    The canonical text is composed from independently-serialized parts
    (fields emitted in sorted-key order, exactly as ``json.dumps`` with
    ``sort_keys=True`` would) so the workflow document — shared across
    the cells of a campaign row — is serialized once, not once per cell.
    ``tests/test_runner_hashing.py`` pins the composed key equal to the
    whole-dict digest.
    """
    # Field order matches sorted(["v", "kind", "workflow", "cluster",
    # "scheduler", "config"]): cluster, config, kind, scheduler, v,
    # workflow — byte-compatible with digest() over the full dict.
    scheduler = job.scheduler
    text = (
        '{"cluster":' + _canonical_part_json(job.cluster)
        + ',"config":' + canonical_json(job.config)
        + ',"kind":' + _canonical_str_json(job.kind)
        + ',"scheduler":' + (
            _canonical_str_json(scheduler)
            if isinstance(scheduler, str) else _canonical_part_json(scheduler)
        )
        + ',"v":' + str(CACHE_SCHEMA_VERSION)
        + ',"workflow":' + _canonical_part_json(job.workflow)
        + "}"
    )
    return hashlib.sha256(text.encode("ascii")).hexdigest()
