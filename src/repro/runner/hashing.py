"""Canonical hashing of simulation cells.

The cache key of a cell must be *stable* (same inputs → same key across
process restarts, dict insertion orders and platforms running the same
Python) and *discriminating* (any change to the workflow spec, cluster
preset, scheduler parameters or seed → a different key).  Both properties
come from hashing a canonical JSON form: keys sorted, minimal separators,
floats via ``repr`` round-trip (exact for IEEE doubles), containers
normalized.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: Bump when the semantics of cached records change incompatibly (e.g. a
#: SimRecord field changes meaning); invalidates every existing entry.
CACHE_SCHEMA_VERSION = 1


def _normalize(obj: Any) -> Any:
    """Coerce to JSON-native types with deterministic container order."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # Keep integral floats distinct from ints: json renders 1.0 as 1.0.
        return obj
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _normalize(v) for k, v in obj.items()}
    raise TypeError(
        f"cannot canonically hash {type(obj).__name__}; "
        "describe it as a factory spec first"
    )


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace, exact floats."""
    try:
        # Fast path: job payloads are str-keyed JSON-native trees, which
        # the C encoder serializes directly to the same canonical text
        # the normalizing walk would produce (tuples render as arrays).
        return json.dumps(
            obj,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError):
        # Exotic containers or key types: normalize first (this is also
        # where unsupported types get the descriptive TypeError).
        return json.dumps(
            _normalize(obj),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )


def digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()


def cache_key(job) -> str:
    """Content-addressed key of a :class:`~repro.runner.jobs.SimJob`.

    Covers everything that can change the simulation's output: the full
    serialized workflow document, the cluster factory spec, the scheduler
    name/params, the run configuration (seed, noise, faults, recovery,
    governor, mode, ...) and the cache schema version.
    """
    return digest(
        {
            "v": CACHE_SCHEMA_VERSION,
            "kind": job.kind,
            "workflow": job.workflow,
            "cluster": job.cluster,
            "scheduler": job.scheduler,
            "config": job.config,
        }
    )
