"""repro — heterogeneous computing systems for complex scientific discovery workflows.

A full reproduction library: a discrete-event heterogeneous platform
simulator, structure-faithful scientific workflow generators, a zoo of
classical heterogeneous schedulers, and the HDWS orchestrator (the paper's
contribution) with data-locality, accelerator-affinity, lookahead and
runtime-adaptive mechanisms — plus energy, fault and data-management
substrates and a benchmark harness regenerating every evaluation table and
figure.

Quickstart::

    from repro import run_workflow
    from repro.workflows.generators import montage
    from repro.platform import presets

    result = run_workflow(montage(size=100), presets.hybrid_cluster())
    print(result.summary())
"""

from repro.core.api import compare_schedulers, run_workflow
from repro.core.orchestrator import Orchestrator, RunConfig, RunResult

__version__ = "1.0.0"

__all__ = [
    "run_workflow",
    "compare_schedulers",
    "Orchestrator",
    "RunConfig",
    "RunResult",
    "__version__",
]
