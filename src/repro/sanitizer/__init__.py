"""Cross-layer invariant checking for simulated executions.

The executor, data layer, platform layer and fault machinery interact in
ways that are easy to get subtly wrong: a replica registered before its
transfer arrived, a busy interval double-booked on one device, energy
attributed to a clone that never burnt it.  End-to-end regression numbers
do not catch these — a run can produce a plausible makespan while its
internal accounting is broken.

:class:`Sanitizer` audits a live :class:`~repro.core.executor.WorkflowExecutor`
through trace hooks (plus two tiny observer hooks on the replica catalog
and the task records) and checks conservation laws *as the run unfolds*:

* ``input-before-arrival`` / ``input-missing`` / ``input-not-local`` —
  every clone's inputs are resident (or deliberately streamed past an
  overflowing store) on its node at its true execution start;
* ``catalog-time-travel`` — a replica is never catalog-registered at a
  node before its transfer's arrival time;
* ``pinned-evicted`` — pinned files never leave a node store, neither by
  LRU eviction nor by node-loss cleanup;
* ``clone-energy`` — every traced clone energy figure equals the clone's
  busy power (in its DVFS state) times its busy seconds;
* ``illegal-transition`` — task records only take legal lifecycle
  transitions (no resurrection of DEAD tasks, no READY→DONE shortcuts);

and conservation laws at the end of the run (:meth:`Sanitizer.finalize`):

* ``busy-overlap`` — per device, busy intervals never overlap beyond the
  device's slot count;
* ``catalog-coherence`` — node stores and the replica catalog agree
  exactly on which files are resident where;
* ``pin-leak`` — once the run has drained, no pin references remain;
* the pure-result audits of :func:`audit_result` (record sanity, makespan
  consistency, ``dead_tasks``/``success`` agreement, trace cross-counts).

Violations are collected; in ``strict`` mode (the default) the executor's
``run()`` raises :class:`SanitizerError` listing them.  Enable per run
with ``sanitize=True`` (executor/``RunConfig``), the ``--sanitize`` CLI
flag, or globally with ``REPRO_SANITIZE=1`` — the test suite runs with
the latter always on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.data.catalog import ReplicaCatalog

#: Time/energy comparison tolerance (floating-point slack, not semantics).
TOL = 1e-9

#: Legal task-record lifecycle transitions (see core.executor states).
LEGAL_TRANSITIONS: Set[Tuple[str, str]] = {
    ("pending", "ready"),    # dependencies met / release time reached
    ("ready", "running"),    # dispatched
    ("ready", "pending"),    # inputs lost, waiting on regeneration
    ("running", "done"),     # a clone finished
    ("running", "ready"),    # attempt crashed, retry budget remains
    ("running", "dead"),     # retry budget exhausted
    ("ready", "dead"),       # stranded: no alive eligible device left
    ("pending", "dead"),     # stranded at the moment it would become ready
    ("done", "pending"),     # output lost, producer regenerates
}


class SanitizerError(RuntimeError):
    """Raised in strict mode when a run violated at least one invariant."""


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    check: str
    time: float
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] t={self.time:.6g}: {self.message}"

    def as_finding(self):
        """This violation in the static-analysis finding vocabulary.

        Runtime violations are always blocking, so they map to ERROR
        severity in the ``runtime`` layer, with the virtual time as the
        location.  Lets mixed plan-time/run-time reports render uniformly.
        """
        from repro.staticcheck.findings import error

        return error(
            self.check, "runtime", f"t={self.time:.6g}", self.message,
            "see repro.sanitizer for the violated invariant",
        )


class Sanitizer:
    """Live invariant checker for one :class:`WorkflowExecutor` run."""

    def __init__(self, executor, strict: bool = True) -> None:
        self.executor = executor
        self.strict = strict
        self.violations: List[Violation] = []
        #: (node, file) -> arrival time of the transfer currently on the wire.
        self._inflight: Dict[Tuple[str, str], float] = {}
        #: (node, file) pairs streamed past an overflowing store.
        self._overflowed: Set[Tuple[str, str]] = set()
        self._attached = False

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def attach(self) -> None:
        """Install trace/catalog/record hooks on the executor."""
        if self._attached:
            return
        ex = self.executor
        ex.trace.subscribe(self._on_trace)
        ex.catalog.observer = self._on_catalog
        for rec in ex.records.values():
            rec._observer = self._on_state_change
        self._attached = True

    def detach(self) -> None:
        """Remove every hook (the executor keeps running unaudited)."""
        if not self._attached:
            return
        ex = self.executor
        ex.trace.unsubscribe(self._on_trace)
        if ex.catalog.observer == self._on_catalog:
            ex.catalog.observer = None
        for rec in ex.records.values():
            if rec._observer == self._on_state_change:
                rec._observer = None
        self._attached = False

    def flag(self, check: str, message: str) -> None:
        """Record one violation at the executor's current virtual time."""
        self.violations.append(
            Violation(check, float(self.executor.now), message)
        )

    def report(self) -> str:
        """Human-readable summary of all violations (empty string if none)."""
        return "\n".join(str(v) for v in self.violations)

    # ------------------------------------------------------------------ #
    # live hooks                                                         #
    # ------------------------------------------------------------------ #

    def _on_trace(self, rec) -> None:
        kind = rec.kind
        if kind == "transfer.start":
            key = (rec.get("dst"), rec.get("file"))
            self._inflight[key] = float(rec.get("arrives", rec.time))
        elif kind == "store.overflow":
            self._overflowed.add((rec.get("node"), rec.get("file")))
        elif kind == "task.start":
            self._check_inputs_at_start(rec)
        elif kind == "task.finish":
            self._check_clone_energy(rec, rec.get("duration"))
        elif kind == "task.preempt":
            self._check_clone_energy(rec, rec.get("duration"))
        elif kind == "fault.task":
            self._check_clone_energy(rec, rec.get("at_offset"))
        elif kind in ("store.evict", "data.lost"):
            self._check_eviction_unpinned(rec)

    def _on_catalog(self, op: str, fname: str, location: str) -> None:
        if op != "register" or location == ReplicaCatalog.STORAGE:
            return
        if location not in self.executor.stores:
            return
        arrives = self._inflight.pop((location, fname), None)
        if arrives is not None and self.executor.now < arrives - TOL:
            self.flag(
                "catalog-time-travel",
                f"file {fname!r} registered at {location} at "
                f"t={self.executor.now:.6g} but its transfer only arrives "
                f"at t={arrives:.6g}",
            )

    def _on_state_change(self, record, old: Optional[str], new: str) -> None:
        if old is None or old == new:
            return  # dataclass construction / idempotent set
        if (old, new) not in LEGAL_TRANSITIONS:
            self.flag(
                "illegal-transition",
                f"task {record.name!r} took illegal transition "
                f"{old!r} -> {new!r}",
            )

    # ------------------------------------------------------------------ #
    # individual checks                                                  #
    # ------------------------------------------------------------------ #

    def _check_inputs_at_start(self, rec) -> None:
        """A clone's inputs must be resident on its node when it starts."""
        ex = self.executor
        task_name, uid = rec.get("task"), rec.get("device")
        clone = ex._clones.get(task_name, {}).get(uid)
        if clone is None:
            return
        node = clone.node
        task = ex.workflow.tasks.get(task_name)
        if task is None:
            return
        for fname in task.inputs:
            arrives = self._inflight.get((node, fname))
            if arrives is not None and rec.time < arrives - TOL:
                self.flag(
                    "input-before-arrival",
                    f"task {task_name!r} started on {uid} at "
                    f"t={rec.time:.6g} before input {fname!r} arrives at "
                    f"t={arrives:.6g}",
                )
            elif (
                not ex.stores[node].has(fname)
                and (node, fname) not in self._overflowed
            ):
                if not ex.catalog.exists(fname):
                    self.flag(
                        "input-missing",
                        f"task {task_name!r} started with no replica of "
                        f"input {fname!r} anywhere",
                    )
                else:
                    self.flag(
                        "input-not-local",
                        f"task {task_name!r} started on {uid} but input "
                        f"{fname!r} is neither resident on {node} nor "
                        f"streamed past an overflow",
                    )

    def _check_clone_energy(self, rec, busy_seconds) -> None:
        """Traced clone energy must equal busy power x busy seconds."""
        energy = rec.get("energy_j")
        if energy is None or busy_seconds is None:
            return
        ex = self.executor
        clone = ex._clones.get(rec.get("task"), {}).get(rec.get("device"))
        if clone is None:
            return
        power = clone.device.spec.power
        state = power.state(clone.dvfs_name) if clone.dvfs_name else None
        expected = power.busy_power(state) * float(busy_seconds)
        if not math.isclose(float(energy), expected, rel_tol=1e-6, abs_tol=1e-6):
            self.flag(
                "clone-energy",
                f"task {rec.get('task')!r} on {rec.get('device')} attributed "
                f"{float(energy):.6g} J over {float(busy_seconds):.6g}s busy; "
                f"busy-power x busy-time gives {expected:.6g} J",
            )

    def _check_eviction_unpinned(self, rec) -> None:
        """Files leaving a store (evict / node loss) must not be pinned."""
        node, fname = rec.get("node"), rec.get("file")
        store = self.executor.stores.get(node)
        if store is not None and store.is_pinned(fname):
            self.flag(
                "pinned-evicted",
                f"pinned file {fname!r} left the store on {node} "
                f"({rec.kind})",
            )

    # ------------------------------------------------------------------ #
    # end-of-run audit                                                   #
    # ------------------------------------------------------------------ #

    def finalize(self, result) -> None:
        """Run the post-run conservation checks; raise in strict mode."""
        ex = self.executor
        self.violations.extend(audit_result(result, cluster=ex.cluster))

        # Catalog/store coherence: a file is catalog-registered at a node
        # exactly when the node store holds it.
        for node, store in sorted(ex.stores.items()):
            stored = set(store.files())
            registered = set(ex.catalog.files_at(node))
            for fname in sorted(stored - registered):
                self.flag(
                    "catalog-coherence",
                    f"file {fname!r} resident on {node} but not registered",
                )
            for fname in sorted(registered - stored):
                self.flag(
                    "catalog-coherence",
                    f"file {fname!r} registered at {node} but not resident",
                )

        # Pin balance: once nothing is in flight, every pin taken by a
        # clone must have been released.
        if not ex._clones:
            for node, store in sorted(ex.stores.items()):
                leaked = store.pinned_files()
                if leaked:
                    self.flag(
                        "pin-leak",
                        f"store on {node} still pins {leaked} after the "
                        f"run drained",
                    )

        # Liveness: a drained event queue with tasks still READY/PENDING
        # and no dead producer to blame means the run stalled — some
        # dispatchable work was silently never dispatched.
        dead_names = {
            name for name, r in result.records.items() if r.state == "dead"
        }
        if ex.sim.pending == 0 and not dead_names:
            stuck = sorted(
                name
                for name, r in result.records.items()
                if r.state in ("pending", "ready")
            )
            if stuck:
                self.flag(
                    "stalled-run",
                    f"event queue drained with undispatched work: {stuck}",
                )

        # Run-failure surfacing: the internal flag, the dead list and the
        # success verdict must tell one story.
        dead = sorted(
            name for name, r in result.records.items() if r.state == "dead"
        )
        if bool(dead) != ex._run_failed:
            self.flag(
                "dead-accounting",
                f"_run_failed={ex._run_failed} but dead tasks are {dead}",
            )

        if self.strict and self.violations:
            raise SanitizerError(
                "simulation sanitizer found {} violation(s):\n{}".format(
                    len(self.violations), self.report()
                )
            )


def audit_result(result, cluster=None) -> List[Violation]:
    """Post-hoc audit of a finished :class:`ExecutionResult`.

    Checks only what the result itself (plus, optionally, the cluster's
    device accounting) can prove; usable on results loaded far from any
    live executor.  Returns the violations instead of raising.
    """
    violations: List[Violation] = []

    def flag(check: str, message: str, time: float = 0.0) -> None:
        violations.append(Violation(check, time, message))

    done = {n: r for n, r in result.records.items() if r.state == "done"}

    for name, rec in sorted(done.items()):
        t = rec.finish if rec.finish is not None else 0.0
        if rec.start is None or rec.finish is None:
            flag("record-sanity", f"DONE task {name!r} lacks start/finish", t)
            continue
        if rec.start > rec.finish + TOL:
            flag(
                "record-sanity",
                f"DONE task {name!r} starts at {rec.start:.6g} after its "
                f"finish {rec.finish:.6g}",
                t,
            )
        if rec.winner_duration is None or rec.winner_duration < -TOL:
            flag(
                "record-sanity",
                f"DONE task {name!r} has no winner_duration",
                t,
            )
        elif rec.finish - rec.start < rec.winner_duration - TOL:
            flag(
                "record-sanity",
                f"DONE task {name!r} spans {rec.finish - rec.start:.6g}s, "
                f"less than its winning clone's "
                f"{rec.winner_duration:.6g}s execution",
                t,
            )
        if abs(rec.progress_fraction - 1.0) > TOL:
            flag(
                "record-sanity",
                f"DONE task {name!r} has progress {rec.progress_fraction}",
                t,
            )
        if rec.attempts < 1 or rec.clones_launched < rec.attempts:
            flag(
                "record-sanity",
                f"DONE task {name!r} has attempts={rec.attempts}, "
                f"clones_launched={rec.clones_launched}",
                t,
            )
        if rec.finish > result.makespan + TOL:
            flag(
                "makespan",
                f"task {name!r} finishes at {rec.finish:.6g} beyond the "
                f"makespan {result.makespan:.6g}",
                t,
            )

    expected_makespan = max(
        (r.finish for r in done.values() if r.finish is not None), default=0.0
    )
    if not math.isclose(
        result.makespan, expected_makespan, rel_tol=TOL, abs_tol=TOL
    ):
        flag(
            "makespan",
            f"makespan {result.makespan:.6g} != max DONE finish "
            f"{expected_makespan:.6g}",
            result.makespan,
        )

    dead = sorted(
        name for name, r in result.records.items() if r.state == "dead"
    )
    if list(result.dead_tasks) != dead:
        flag(
            "dead-accounting",
            f"dead_tasks={list(result.dead_tasks)} but records show {dead}",
        )
    should_succeed = not dead and len(done) == len(result.records)
    if result.success != should_succeed:
        flag(
            "dead-accounting",
            f"success={result.success} inconsistent with "
            f"{len(done)}/{len(result.records)} done and dead={dead}",
        )

    if cluster is not None:
        for device in cluster.devices:
            peak = device.max_concurrent_intervals()
            if peak > device.spec.slots:
                flag(
                    "busy-overlap",
                    f"device {device.uid} has {peak} overlapping busy "
                    f"intervals but only {device.spec.slots} slot(s)",
                )

    trace = result.trace
    # Record-count audits need the *full* trace: a kind-filtered recorder
    # legitimately stores fewer records than the run emitted.
    if (
        trace is not None
        and trace.enabled
        and getattr(trace, "kinds_filter", None) is None
    ):
        finishes: Dict[str, int] = {}
        for r in trace.of_kind("task.finish"):
            finishes[r.get("task")] = finishes.get(r.get("task"), 0) + 1
        regens: Dict[str, int] = {}
        for r in trace.of_kind("task.regenerate"):
            regens[r.get("task")] = regens.get(r.get("task"), 0) + 1
        # A task may finish once, plus once more per regeneration (its
        # output was lost and it legitimately re-ran).
        dupes = sorted(
            t for t, n in finishes.items() if n > 1 + regens.get(t, 0)
        )
        if dupes:
            flag(
                "duplicate-finish",
                f"tasks finished more often than regenerated: {dupes}",
            )
        n_faults = len(trace.of_kind("fault.task"))
        if n_faults != result.task_faults:
            flag(
                "fault-count",
                f"trace shows {n_faults} task faults, result counts "
                f"{result.task_faults}",
            )
        n_preempts = len(trace.of_kind("task.preempt"))
        if result.preemptions < n_preempts:
            flag(
                "preempt-count",
                f"trace shows {n_preempts} preemptions, result counts only "
                f"{result.preemptions}",
            )

    return violations
