"""F3 — Makespan vs GPU count (accelerator marginal utility).

Fixes CPU capacity (4 nodes x 4 cores) and sweeps the number of GPUs from
0 to 8, running HDWS on each suite.

Expected shape: steep initial gains on accelerable suites, flattening as
the accelerable work saturates (Amdahl) — the first GPU is worth far more
than the eighth.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import (
    ExperimentResult,
    make_job,
    quick_params,
    run_sims,
    suite_workflows,
)
from repro.platform import presets
from repro.runner.specs import factory_spec


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the F3 GPU-count sweep; one makespan series per suite."""
    params = quick_params(quick)
    gpu_counts = (0, 1, 2, 4) if quick else (0, 1, 2, 4, 6, 8)
    workflows = suite_workflows(size=params["size"], seed=seed)

    cells = [
        (gpus, wname,
         make_job(wf,
                  factory_spec(presets.gpu_count_cluster, gpus, nodes=4,
                               cores_per_node=4),
                  scheduler="hdws", seed=seed, noise_cv=noise_cv,
                  label=f"f3:{gpus}g:{wname}"))
        for gpus in gpu_counts
        for wname, wf in workflows.items()
    ]
    records = run_sims([job for _, _, job in cells])

    series: Dict[str, Dict[float, float]] = {w: {} for w in workflows}
    for (gpus, wname, _job), record in zip(cells, records):
        series[wname][float(gpus)] = record.makespan

    marginal = {}
    for wname, vals in series.items():
        xs = sorted(vals)
        first_gain = vals[xs[0]] / vals[xs[1]] if len(xs) > 1 else 1.0
        last_gain = vals[xs[-2]] / vals[xs[-1]] if len(xs) > 1 else 1.0
        marginal[wname] = {"first_gpu": first_gain, "last_gpu": last_gain}

    return ExperimentResult(
        experiment="F3 makespan vs GPU count",
        series={f"makespan[{w}]": series[w] for w in series},
        notes={"marginal_utility": marginal},
    )
