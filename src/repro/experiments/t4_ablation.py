"""T4 — Ablation of the HDWS mechanisms.

Disables each HDWS mechanism in turn (affinity ranking, scarcity guard,
locality tie-break, lookahead), plus an all-off variant (≈ plain
insertion HEFT with best-exec disabled), and reports makespan and network
traffic per suite.

Expected shape: every mechanism contributes somewhere — affinity/scarcity
on accelerator-contended suites, locality on data-heavy ones (traffic
column), lookahead on fan-out-then-join graphs (LIGO); no single ablation
dominates everywhere.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.core.api import run_workflow
from repro.core.hdws import HdwsScheduler
from repro.experiments.common import (
    ExperimentResult,
    default_cluster,
    quick_params,
    suite_workflows,
)


def variants():
    """(label, scheduler) pairs of the T4 rows."""
    return [
        ("full", HdwsScheduler()),
        ("-affinity", HdwsScheduler(use_affinity_rank=False)),
        ("-scarcity", HdwsScheduler(use_scarcity=False)),
        ("-locality", HdwsScheduler(use_locality=False)),
        ("-lookahead", HdwsScheduler(use_lookahead=False)),
        ("none", HdwsScheduler(
            use_affinity_rank=False, use_scarcity=False,
            use_locality=False, use_lookahead=False,
        )),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the T4 ablation; makespan and traffic tables."""
    params = quick_params(quick)
    workflows = suite_workflows(size=params["size"], seed=seed)

    makespan = ComparisonTable("workflow")
    traffic = ComparisonTable("workflow")
    cluster = default_cluster()
    for wname, wf in workflows.items():
        for label, sched in variants():
            result = run_workflow(
                wf, cluster, scheduler=sched, seed=seed, noise_cv=noise_cv
            )
            makespan.set(wname, label, result.makespan)
            traffic.set(
                wname, label,
                result.execution.network_mb + result.execution.staging_mb,
            )

    makespan = makespan.with_geomean_row()
    traffic = traffic.with_geomean_row()
    geo = makespan.row_values("geo-mean")
    return ExperimentResult(
        experiment="T4 HDWS ablation",
        tables={"makespan (s)": makespan, "data moved (MB)": traffic},
        notes={
            "geomean_vs_full": {
                k: v / geo["full"] for k, v in geo.items()
            },
            "traffic_geomean": traffic.row_values("geo-mean"),
        },
    )
