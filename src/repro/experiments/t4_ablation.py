"""T4 — Ablation of the HDWS mechanisms.

Disables each HDWS mechanism in turn (affinity ranking, scarcity guard,
locality tie-break, lookahead), plus an all-off variant (≈ plain
insertion HEFT with best-exec disabled), and reports makespan and network
traffic per suite.

Expected shape: every mechanism contributes somewhere — affinity/scarcity
on accelerator-contended suites, locality on data-heavy ones (traffic
column), lookahead on fan-out-then-join graphs (LIGO); no single ablation
dominates everywhere.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.core.hdws import HdwsScheduler
from repro.experiments.common import (
    DEFAULT_CLUSTER_SPEC,
    ExperimentResult,
    make_job,
    quick_params,
    run_sims,
    suite_workflows,
)
from repro.runner.specs import factory_spec


def variants():
    """(label, scheduler spec) pairs of the T4 rows."""
    return [
        ("full", factory_spec(HdwsScheduler)),
        ("-affinity", factory_spec(HdwsScheduler, use_affinity_rank=False)),
        ("-scarcity", factory_spec(HdwsScheduler, use_scarcity=False)),
        ("-locality", factory_spec(HdwsScheduler, use_locality=False)),
        ("-lookahead", factory_spec(HdwsScheduler, use_lookahead=False)),
        ("none", factory_spec(
            HdwsScheduler, use_affinity_rank=False, use_scarcity=False,
            use_locality=False, use_lookahead=False,
        )),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the T4 ablation; makespan and traffic tables."""
    params = quick_params(quick)
    workflows = suite_workflows(size=params["size"], seed=seed)

    cells = [
        (wname, label,
         make_job(wf, DEFAULT_CLUSTER_SPEC, scheduler=sched, seed=seed,
                  noise_cv=noise_cv, label=f"t4:{wname}:{label}"))
        for wname, wf in workflows.items()
        for label, sched in variants()
    ]
    records = run_sims([job for _, _, job in cells])

    makespan = ComparisonTable("workflow")
    traffic = ComparisonTable("workflow")
    for (wname, label, _job), record in zip(cells, records):
        makespan.set(wname, label, record.makespan)
        traffic.set(wname, label, record.data_moved_mb)

    makespan = makespan.with_geomean_row()
    traffic = traffic.with_geomean_row()
    geo = makespan.row_values("geo-mean")
    return ExperimentResult(
        experiment="T4 HDWS ablation",
        tables={"makespan (s)": makespan, "data moved (MB)": traffic},
        notes={
            "geomean_vs_full": {
                k: v / geo["full"] for k, v in geo.items()
            },
            "traffic_geomean": traffic.row_values("geo-mean"),
        },
    )
