"""F2 — Makespan vs communication-to-computation ratio.

Sweeps the CCR of a 100-task random layered DAG from 0.1 to 10 and runs
the main schedulers.  Reports makespan normalized to HDWS at each point.

Expected shape: at low CCR all EFT-family schedulers are close; as CCR
grows, communication-blind heuristics degrade fastest and HDWS's locality
tie-break pays, widening the gap.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import (
    DEFAULT_CLUSTER_SPEC,
    ExperimentResult,
    make_job,
    run_sims,
)
from repro.workflows.generators import random_dag
from repro.workflows.serialize import workflow_to_dict

SCHEDULERS = ("hdws", "heft", "minmin", "mct", "olb")
CCRS_QUICK = (0.1, 1.0, 5.0)
CCRS_FULL = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0)


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the F2 CCR sweep; one makespan series per scheduler."""
    import repro.core  # noqa: F401  (registry hook)

    ccrs = CCRS_QUICK if quick else CCRS_FULL
    n_tasks = 50 if quick else 100

    cells = []
    for ccr in ccrs:
        doc = workflow_to_dict(random_dag(n_tasks=n_tasks, ccr=ccr, seed=seed))
        for sched in SCHEDULERS:
            cells.append((ccr, sched, make_job(
                doc, DEFAULT_CLUSTER_SPEC, scheduler=sched, seed=seed,
                noise_cv=noise_cv, label=f"f2:ccr{ccr}:{sched}",
            )))
    records = run_sims([job for _, _, job in cells])

    series: Dict[str, Dict[float, float]] = {s: {} for s in SCHEDULERS}
    for (ccr, sched, _job), record in zip(cells, records):
        series[sched][ccr] = record.makespan

    # Normalize each point to HDWS so the figure reads as relative cost.
    normalized: Dict[str, Dict[float, float]] = {s: {} for s in SCHEDULERS}
    for ccr in ccrs:
        ref = series["hdws"][ccr]
        for sched in SCHEDULERS:
            normalized[sched][ccr] = series[sched][ccr] / ref

    return ExperimentResult(
        experiment="F2 CCR sweep",
        series={
            **{f"makespan[{s}]": series[s] for s in SCHEDULERS},
            **{f"vs-hdws[{s}]": normalized[s] for s in SCHEDULERS},
        },
        notes={
            "max_gap_vs_hdws": {
                s: max(normalized[s].values()) for s in SCHEDULERS
            }
        },
    )
