"""Shared infrastructure for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.platform import presets
from repro.platform.cluster import Cluster
from repro.workflows.generators import SCIENTIFIC_SUITES
from repro.workflows.graph import Workflow

#: Canonical suite order used in every table.
SUITES = ("montage", "cybershake", "epigenomics", "ligo", "sipht")

#: Default scheduler line-up of the T1 comparison, best-first by family.
T1_SCHEDULERS = (
    "hdws",
    "heft",
    "peft",
    "cpop",
    "minmin",
    "maxmin",
    "mct",
    "levelwise",
    "met",
    "olb",
    "roundrobin",
    "random",
)


def suite_workflows(
    size: int = 100, seed: int = 0, names: Iterable[str] = SUITES
) -> Dict[str, Workflow]:
    """The scientific workflow suite at a given approximate size."""
    # Import repro.core so the HDWS registry hook runs before any
    # experiment resolves schedulers by name.
    import repro.core  # noqa: F401

    return {
        name: SCIENTIFIC_SUITES[name](size=size, seed=seed + i)
        for i, name in enumerate(names)
    }


def default_cluster(seed_independent: bool = True) -> Cluster:
    """The mixed CPU+GPU evaluation platform (4 nodes, 4 CPU + 1 GPU each)."""
    return presets.hybrid_cluster(nodes=4, cores_per_node=4, gpus_per_node=1)


@dataclass
class ExperimentResult:
    """Uniform return type of every experiment runner.

    ``tables`` maps a table label to a rendered-able object (usually a
    :class:`~repro.analysis.compare.ComparisonTable`); ``series`` maps a
    curve label to an x->y dict; ``notes`` collects shape observations the
    benchmarks assert on.
    """

    experiment: str
    tables: Dict[str, object] = field(default_factory=dict)
    series: Dict[str, Dict[float, float]] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable rendering of all tables and series."""
        chunks: List[str] = [f"=== {self.experiment} ==="]
        for label, table in self.tables.items():
            render = getattr(table, "render", None)
            chunks.append(f"-- {label} --")
            chunks.append(render() if callable(render) else str(table))
        for label, series in self.series.items():
            chunks.append(f"-- {label} --")
            pts = ", ".join(
                f"{x:g}: {y:.3f}" for x, y in sorted(series.items())
            )
            chunks.append(pts)
        if self.notes:
            chunks.append("-- notes --")
            for k, v in self.notes.items():
                chunks.append(f"{k}: {v}")
        return "\n".join(chunks)


def quick_params(quick: bool) -> Dict[str, int]:
    """Workload sizing shared by the runners (quick for CI, full for paper)."""
    if quick:
        return {"size": 40, "reps": 1}
    return {"size": 100, "reps": 3}
