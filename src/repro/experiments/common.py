"""Shared infrastructure for the experiment runners.

Since the campaign-runner port, experiments do not call the simulator
directly: they enumerate their ``(workflow, cluster, scheduler, config)``
cells as :class:`~repro.runner.jobs.SimJob` descriptions upfront and
submit the whole batch via :func:`run_sims`.  The active
:class:`~repro.runner.pool.CampaignRunner` fans the batch over a process
pool and memoizes completed cells in the on-disk cache — and because
every cell is rebuilt from its data description through one construction
path, results are bit-identical for any ``jobs`` setting and cache state.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.platform import presets
from repro.platform.cluster import Cluster
from repro.runner import specs as runner_specs
from repro.runner.context import get_runner
from repro.runner.jobs import SimJob, TimingJob
from repro.runner.record import SimRecord, TimingRecord
from repro.schedulers.base import Scheduler
from repro.workflows.generators import SCIENTIFIC_SUITES
from repro.workflows.graph import Workflow
from repro.workflows.serialize import workflow_to_dict

#: Canonical suite order used in every table.
SUITES = ("montage", "cybershake", "epigenomics", "ligo", "sipht")

#: Stable per-suite seed offsets.  Offsets are a property of the suite
#: *name* (its position in the canonical order), never of its position in
#: whatever subset a caller passes, so requesting ("ligo",) yields the
#: same LIGO workflow as requesting all five suites.  Suites added later
#: get deterministic offsets after the canonical block.
SUITE_SEED_OFFSETS: Dict[str, int] = {name: i for i, name in enumerate(SUITES)}
for _i, _name in enumerate(sorted(set(SCIENTIFIC_SUITES) - set(SUITES))):
    SUITE_SEED_OFFSETS[_name] = len(SUITES) + _i

#: Default scheduler line-up of the T1 comparison, best-first by family.
T1_SCHEDULERS = (
    "hdws",
    "heft",
    "peft",
    "cpop",
    "minmin",
    "maxmin",
    "mct",
    "levelwise",
    "met",
    "olb",
    "roundrobin",
    "random",
)


def suite_workflows(
    size: int = 100, seed: int = 0, names: Iterable[str] = SUITES
) -> Dict[str, Workflow]:
    """The scientific workflow suite at a given approximate size.

    Each suite's generator seed is ``seed`` plus the suite's *canonical*
    offset, so the workflows are independent of which subset (or order)
    of suites is requested.
    """
    # Import repro.core so the HDWS registry hook runs before any
    # experiment resolves schedulers by name.
    import repro.core  # noqa: F401

    return {
        name: SCIENTIFIC_SUITES[name](size=size, seed=seed + SUITE_SEED_OFFSETS[name])
        for name in names
    }


def default_cluster(seed_independent: bool = True) -> Cluster:
    """The mixed CPU+GPU evaluation platform (4 nodes, 4 CPU + 1 GPU each)."""
    return presets.hybrid_cluster(nodes=4, cores_per_node=4, gpus_per_node=1)


# ---------------------------------------------------------------------- #
# cell construction                                                      #
# ---------------------------------------------------------------------- #

def preset_spec(name: str, **kwargs) -> Dict[str, Any]:
    """Factory spec for a named platform preset (picklable/hashable)."""
    return runner_specs.factory_spec(presets.PRESETS[name], **kwargs)


#: The default T1 evaluation platform as a cell spec.
DEFAULT_CLUSTER_SPEC = runner_specs.factory_spec(
    presets.hybrid_cluster, nodes=4, cores_per_node=4, gpus_per_node=1
)


def scheduler_spec(scheduler: Union[str, Scheduler, Dict[str, Any]]):
    """Normalize a scheduler argument into a cell description.

    Registry names pass through; factory specs pass through; live
    instances are rejected (they cannot cross the process boundary with a
    stable hash) — describe them with :func:`repro.runner.specs.factory_spec`.
    """
    if isinstance(scheduler, str) or runner_specs.is_spec(scheduler):
        return scheduler
    raise TypeError(
        f"scheduler {scheduler!r} must be a registry name or a factory spec; "
        "use repro.runner.specs.factory_spec(Class, **params)"
    )


#: Process-wide RunConfig overrides merged into every cell built by
#: :func:`make_job` (overrides win).  Set via :func:`use_run_overrides`.
_RUN_OVERRIDES: Dict[str, Any] = {}


@contextmanager
def use_run_overrides(**overrides: Any) -> Iterator[None]:
    """Force RunConfig fields onto every cell described inside the block.

    The CLI uses this to thread cross-cutting flags (``--sanitize``)
    through experiment runners without changing their signatures.  Note
    the overrides become part of each cell's config and therefore of its
    cache key: sanitized and unsanitized runs never share cache entries.
    """
    previous = dict(_RUN_OVERRIDES)
    _RUN_OVERRIDES.update(overrides)
    try:
        yield
    finally:
        _RUN_OVERRIDES.clear()
        _RUN_OVERRIDES.update(previous)


def make_job(
    workflow: Union[Workflow, Dict[str, Any]],
    cluster: Dict[str, Any],
    scheduler: Union[str, Dict[str, Any]] = "hdws",
    label: str = "",
    **config: Any,
) -> SimJob:
    """Describe one simulation cell.

    ``workflow`` may be a live :class:`Workflow` (serialized here) or an
    already-serialized document; ``cluster`` must be a factory spec;
    ``config`` takes any :class:`~repro.core.orchestrator.RunConfig`
    field, with object values (fault_model, recovery, governor) given as
    factory specs.
    """
    doc = workflow if isinstance(workflow, dict) else workflow_to_dict(workflow)
    if _RUN_OVERRIDES:
        config = {**config, **_RUN_OVERRIDES}
    return SimJob(
        workflow=doc,
        cluster=cluster,
        scheduler=scheduler_spec(scheduler),
        config=config,
        label=label,
    )


def make_timing_job(
    workflow: Union[Workflow, Dict[str, Any]],
    cluster: Dict[str, Any],
    scheduler: Union[str, Dict[str, Any]],
    label: str = "",
) -> TimingJob:
    """Describe one scheduling-overhead measurement cell (T5)."""
    doc = workflow if isinstance(workflow, dict) else workflow_to_dict(workflow)
    return TimingJob(
        workflow=doc, cluster=cluster, scheduler=scheduler_spec(scheduler),
        label=label,
    )


def run_sims(jobs: List[SimJob]) -> List[SimRecord]:
    """Fan a batch of cells through the active campaign runner."""
    return get_runner().run_sims(jobs)


def stream_sims(jobs: List[SimJob]) -> Iterator["tuple[int, SimRecord]"]:
    """Stream ``(index, record)`` pairs in submission order.

    The O(1)-memory path for campaigns too large to hold as record
    lists: records are yielded as the pool completes them (reordered to
    submission order), so callers can fold them into streaming
    aggregates (:mod:`repro.analysis.stats`) or an on-disk shard sink
    (:mod:`repro.runner.shards`) while later cells still simulate.
    """
    return get_runner().run_sims_ordered(jobs)


def run_timings(jobs: List[TimingJob]) -> List[TimingRecord]:
    """Fan a batch of timing cells through the active campaign runner."""
    return get_runner().run_timings(jobs)


@dataclass
class ExperimentResult:
    """Uniform return type of every experiment runner.

    ``tables`` maps a table label to a rendered-able object (usually a
    :class:`~repro.analysis.compare.ComparisonTable`); ``series`` maps a
    curve label to an x->y dict; ``notes`` collects shape observations the
    benchmarks assert on.
    """

    experiment: str
    tables: Dict[str, object] = field(default_factory=dict)
    series: Dict[str, Dict[float, float]] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable rendering of all tables and series."""
        chunks: List[str] = [f"=== {self.experiment} ==="]
        for label, table in self.tables.items():
            render = getattr(table, "render", None)
            chunks.append(f"-- {label} --")
            chunks.append(render() if callable(render) else str(table))
        for label, series in self.series.items():
            chunks.append(f"-- {label} --")
            pts = ", ".join(
                f"{x:g}: {y:.3f}" for x, y in sorted(series.items())
            )
            chunks.append(pts)
        if self.notes:
            chunks.append("-- notes --")
            for k, v in self.notes.items():
                chunks.append(f"{k}: {v}")
        return "\n".join(chunks)


def quick_params(quick: bool) -> Dict[str, int]:
    """Workload sizing shared by the runners (quick for CI, full for paper)."""
    if quick:
        return {"size": 40, "reps": 1}
    return {"size": 100, "reps": 3}
