"""T2 — Heterogeneity benefit: CPU-only vs +GPU vs +GPU+FPGA.

Runs HDWS on the five suites across three platforms with identical node
counts and CPU capacity, adding accelerators stepwise.  Reports makespan
per platform and the speedup each heterogeneity step buys.

Expected shape: accelerator-dominated suites (CyberShake, LIGO) gain
several-fold from GPUs; FPGA adds most where BLAST-family kernels exist
(SIPHT); Amdahl-bound suites (Montage's sequential tail) gain least.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.experiments.common import (
    ExperimentResult,
    make_job,
    preset_spec,
    quick_params,
    run_sims,
    suite_workflows,
)

PLATFORMS = ("cpu", "cpu+gpu", "cpu+gpu+fpga")


def platform_spec(kind: str):
    """The three T2 platforms with matched CPU capacity, as cell specs.

    The accelerator steps are incremental — one GPU per node, then one
    FPGA per node on top — so the FPGA column shows what a *second
    accelerator class* buys when the first is contended (and where
    FPGA-preferring kernels exist).
    """
    if kind == "cpu":
        return preset_spec("cpu", nodes=4, cores_per_node=4)
    if kind == "cpu+gpu":
        return preset_spec("hybrid", nodes=4, cores_per_node=4, gpus_per_node=1)
    if kind == "cpu+gpu+fpga":
        return preset_spec(
            "accel", nodes=4, cores_per_node=4, gpus_per_node=1, fpgas_per_node=1
        )
    raise KeyError(f"unknown platform kind {kind!r}")


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the T2 platform ladder; returns makespan + speedup tables."""
    params = quick_params(quick)
    workflows = suite_workflows(size=params["size"], seed=seed)

    cells = [
        (wname, kind,
         make_job(wf, platform_spec(kind), scheduler="hdws", seed=seed,
                  noise_cv=noise_cv, label=f"t2:{wname}:{kind}"))
        for kind in PLATFORMS
        for wname, wf in workflows.items()
    ]
    records = run_sims([job for _, _, job in cells])

    makespans = ComparisonTable("workflow")
    for (wname, kind, _job), record in zip(cells, records):
        makespans.set(wname, kind, record.makespan)

    speedups = makespans.normalized("cpu")
    # normalized() divides by the cpu column; invert to read as speedup.
    inverted = ComparisonTable("workflow")
    for r in speedups.rows:
        for c, v in speedups.row_values(r).items():
            inverted.set(r, c, 1.0 / v if v > 0 else float("inf"))

    return ExperimentResult(
        experiment="T2 heterogeneity benefit",
        tables={
            "makespan (s)": makespans.with_geomean_row(),
            "speedup vs cpu-only": inverted.with_geomean_row(),
        },
        notes={
            "gpu_speedup_geomean": inverted.with_geomean_row().get(
                "geo-mean", "cpu+gpu"
            ),
        },
    )
