"""T1 — Scheduler comparison across the five scientific suites.

Regenerates the paper family's headline table: makespan and SLR of every
scheduler on Montage, CyberShake, Epigenomics, LIGO and SIPHT, on the
mixed CPU+GPU cluster, plus a geometric-mean summary row.

Expected shape: HDWS <= HEFT/PEFT <= batch heuristics << naive mappers,
with HDWS's margin largest on accelerator-heavy suites (CyberShake, LIGO).
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.analysis.metrics import schedule_length_ratio
from repro.experiments.common import (
    DEFAULT_CLUSTER_SPEC,
    ExperimentResult,
    T1_SCHEDULERS,
    default_cluster,
    make_job,
    quick_params,
    run_sims,
    suite_workflows,
)
from repro.schedulers.base import SchedulingContext


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the T1 comparison; returns makespan and SLR tables."""
    params = quick_params(quick)
    workflows = suite_workflows(size=params["size"], seed=seed)
    # Quick mode keeps the full quality spread (best heuristics AND the
    # naive floor) and only drops two redundant mid-field mappers; full
    # mode additionally includes the expensive lookahead/metaheuristic
    # columns.
    if quick:
        schedulers = tuple(
            s for s in T1_SCHEDULERS if s not in ("met", "roundrobin")
        )
    else:
        schedulers = T1_SCHEDULERS + ("lookahead-heft", "annealing")

    cells = [
        (wname, sched,
         make_job(wf, DEFAULT_CLUSTER_SPEC, scheduler=sched, seed=seed,
                  noise_cv=noise_cv, label=f"t1:{wname}:{sched}"))
        for wname, wf in workflows.items()
        for sched in schedulers
    ]
    records = run_sims([job for _, _, job in cells])

    makespans = ComparisonTable("workflow")
    slrs = ComparisonTable("workflow")
    cluster = default_cluster()
    contexts = {
        wname: SchedulingContext(wf, cluster)
        for wname, wf in workflows.items()
    }
    for (wname, sched, _job), record in zip(cells, records):
        if not record.success:  # pragma: no cover - should not happen
            raise RuntimeError(f"{sched} failed on {wname}")
        makespans.set(wname, sched, record.makespan)
        slrs.set(
            wname, sched, schedule_length_ratio(record.makespan, contexts[wname])
        )

    makespans = makespans.with_geomean_row()
    slrs = slrs.with_geomean_row()
    winners = makespans.best_column_per_row()
    return ExperimentResult(
        experiment="T1 scheduler comparison",
        tables={"makespan (s)": makespans, "SLR": slrs},
        notes={
            "winners": winners,
            "geomean_makespan": makespans.row_values("geo-mean"),
        },
    )
