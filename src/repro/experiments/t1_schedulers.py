"""T1 — Scheduler comparison across the five scientific suites.

Regenerates the paper family's headline table: makespan and SLR of every
scheduler on Montage, CyberShake, Epigenomics, LIGO and SIPHT, on the
mixed CPU+GPU cluster, plus a geometric-mean summary row.

Expected shape: HDWS <= HEFT/PEFT <= batch heuristics << naive mappers,
with HDWS's margin largest on accelerator-heavy suites (CyberShake, LIGO).
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.analysis.metrics import schedule_length_ratio
from repro.core.api import run_workflow
from repro.experiments.common import (
    ExperimentResult,
    T1_SCHEDULERS,
    default_cluster,
    quick_params,
    suite_workflows,
)
from repro.schedulers.base import SchedulingContext


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the T1 comparison; returns makespan and SLR tables."""
    params = quick_params(quick)
    workflows = suite_workflows(size=params["size"], seed=seed)
    # Quick mode keeps the full quality spread (best heuristics AND the
    # naive floor) and only drops two redundant mid-field mappers; full
    # mode additionally includes the expensive lookahead/metaheuristic
    # columns.
    if quick:
        schedulers = tuple(
            s for s in T1_SCHEDULERS if s not in ("met", "roundrobin")
        )
    else:
        schedulers = T1_SCHEDULERS + ("lookahead-heft", "annealing")

    makespans = ComparisonTable("workflow")
    slrs = ComparisonTable("workflow")
    cluster = default_cluster()
    for wname, wf in workflows.items():
        context = SchedulingContext(wf, cluster)
        for sched in schedulers:
            result = run_workflow(
                wf, cluster, scheduler=sched, seed=seed, noise_cv=noise_cv
            )
            if not result.success:  # pragma: no cover - should not happen
                raise RuntimeError(f"{sched} failed on {wname}")
            makespans.set(wname, sched, result.makespan)
            slrs.set(wname, sched, schedule_length_ratio(result.makespan, context))

    makespans = makespans.with_geomean_row()
    slrs = slrs.with_geomean_row()
    winners = makespans.best_column_per_row()
    return ExperimentResult(
        experiment="T1 scheduler comparison",
        tables={"makespan (s)": makespans, "SLR": slrs},
        notes={
            "winners": winners,
            "geomean_makespan": makespans.row_values("geo-mean"),
        },
    )
