"""X3 (extension) — hot replication vs retry vs checkpoint.

Compares the three active recovery mechanisms under one hostile fault
rate on a scaled CyberShake: makespan, retries actually paid, replica
preemptions, and the energy bill.  The trade the table exposes: replication
buys retry-avoidance with capacity and energy; checkpointing buys it with
per-second overhead; plain retry is cheapest until crashes get expensive.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.experiments.common import (
    DEFAULT_CLUSTER_SPEC,
    ExperimentResult,
    make_job,
    run_sims,
)
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.runner.specs import factory_spec
from repro.workflows.generators import cybershake
from repro.workflows.serialize import workflow_to_dict


def policies():
    """(label, policy spec) rows of the X3 table."""
    return [
        ("retry", factory_spec(RecoveryPolicy.retry, 40)),
        ("ckpt-fine",
         factory_spec(RecoveryPolicy.checkpoint, 0.5, overhead=0.05, retries=40)),
        ("replicate-2x", factory_spec(RecoveryPolicy.replicated, 2, retries=40)),
        ("replicate-3x", factory_spec(RecoveryPolicy.replicated, 3, retries=40)),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the X3 recovery-mechanism comparison."""
    doc = workflow_to_dict(cybershake(size=30 if quick else 60, seed=seed).scaled(4.0))
    rate = 0.2
    reps = 2 if quick else 5

    cells = [
        (label, rep,
         make_job(doc, DEFAULT_CLUSTER_SPEC, scheduler="hdws",
                  seed=seed + rep, noise_cv=noise_cv,
                  fault_model=factory_spec(FaultModel, task_fault_rate=rate),
                  recovery=policy,
                  label=f"x3:{label}:rep{rep}"))
        for label, policy in policies()
        for rep in range(reps)
    ]
    records = run_sims([job for _, _, job in cells])

    table = ComparisonTable("policy")
    by_label = {}
    for (label, _rep, _job), record in zip(cells, records):
        agg = by_label.setdefault(
            label,
            {"makespan": 0.0, "retries": 0.0, "preempt": 0.0, "energy": 0.0,
             "ok": True},
        )
        agg["ok"] = agg["ok"] and record.success
        agg["makespan"] += record.makespan / reps
        agg["retries"] += record.retries / reps
        agg["preempt"] += record.preemptions / reps
        agg["energy"] += record.energy_j / reps
    for label, _policy in policies():
        agg = by_label[label]
        table.set(label, "makespan (s)", agg["makespan"])
        table.set(label, "retries", agg["retries"])
        table.set(label, "preemptions", agg["preempt"])
        table.set(label, "energy (J)", agg["energy"])
        table.set(label, "success", 1.0 if agg["ok"] else 0.0)

    retries_col = table.column_values("retries")
    return ExperimentResult(
        experiment="X3 replication vs retry vs checkpoint",
        tables={"recovery mechanisms @ rate 0.2": table},
        notes={
            "retry_reduction_2x": (
                retries_col["retry"] / max(retries_col["replicate-2x"], 0.5)
            ),
        },
    )
