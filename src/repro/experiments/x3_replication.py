"""X3 (extension) — hot replication vs retry vs checkpoint.

Compares the three active recovery mechanisms under one hostile fault
rate on a scaled CyberShake: makespan, retries actually paid, replica
preemptions, and the energy bill.  The trade the table exposes: replication
buys retry-avoidance with capacity and energy; checkpointing buys it with
per-second overhead; plain retry is cheapest until crashes get expensive.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.core.api import run_workflow
from repro.experiments.common import ExperimentResult, default_cluster
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.workflows.generators import cybershake


def policies():
    """(label, policy) rows of the X3 table."""
    return [
        ("retry", RecoveryPolicy.retry(40)),
        ("ckpt-fine", RecoveryPolicy.checkpoint(0.5, overhead=0.05, retries=40)),
        ("replicate-2x", RecoveryPolicy.replicated(2, retries=40)),
        ("replicate-3x", RecoveryPolicy.replicated(3, retries=40)),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the X3 recovery-mechanism comparison."""
    wf = cybershake(size=30 if quick else 60, seed=seed).scaled(4.0)
    rate = 0.2
    reps = 2 if quick else 5

    table = ComparisonTable("policy")
    for label, policy in policies():
        makespan = retries = preempt = energy = 0.0
        ok = True
        for rep in range(reps):
            cluster = default_cluster()
            result = run_workflow(
                wf, cluster, scheduler="hdws", seed=seed + rep,
                noise_cv=noise_cv,
                fault_model=FaultModel(task_fault_rate=rate),
                recovery=policy,
            )
            ok = ok and result.success
            makespan += result.makespan / reps
            retries += result.execution.retries / reps
            preempt += result.execution.preemptions / reps
            energy += result.energy.total_joules / reps
        table.set(label, "makespan (s)", makespan)
        table.set(label, "retries", retries)
        table.set(label, "preemptions", preempt)
        table.set(label, "energy (J)", energy)
        table.set(label, "success", 1.0 if ok else 0.0)

    retries_col = table.column_values("retries")
    return ExperimentResult(
        experiment="X3 replication vs retry vs checkpoint",
        tables={"recovery mechanisms @ rate 0.2": table},
        notes={
            "retry_reduction_2x": (
                retries_col["retry"] / max(retries_col["replicate-2x"], 0.5)
            ),
        },
    )
