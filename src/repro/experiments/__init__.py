"""Experiment runners — one module per evaluation table/figure.

Each runner exposes ``run(quick=..., seed=...)`` returning a structured
result (comparison tables / series dicts) plus a ``render`` of the same
rows/series the paper reports.  The ``benchmarks/`` tree wraps these in
pytest-benchmark targets; the CLI exposes them via ``repro-flow exp``.

Index (see DESIGN.md for the full mapping):

======  ===========================================================
T1      Scheduler comparison (makespan + SLR, 11 schedulers x 5 suites)
T2      Heterogeneity benefit (CPU vs +GPU vs +GPU+FPGA)
T3      Energy comparison (energy-aware vs HEFT vs HDWS)
T4      HDWS mechanism ablation
T5      Scheduling overhead vs DAG size
F1      Speedup vs cluster size
F2      Makespan vs CCR
F3      Makespan vs GPU count
F4      Robustness to runtime-estimate error
F5      Fault tolerance vs fault rate
F6      Data-staging traffic by scheduler
F7      Energy/makespan Pareto front
======  ===========================================================
"""

from repro.experiments import common
from repro.experiments.t1_schedulers import run as run_t1
from repro.experiments.t2_heterogeneity import run as run_t2
from repro.experiments.t3_energy import run as run_t3
from repro.experiments.t4_ablation import run as run_t4
from repro.experiments.t5_overhead import run as run_t5
from repro.experiments.f1_scalability import run as run_f1
from repro.experiments.f2_ccr import run as run_f2
from repro.experiments.f3_gpu_sweep import run as run_f3
from repro.experiments.f4_estimate_error import run as run_f4
from repro.experiments.f5_faults import run as run_f5
from repro.experiments.f6_traffic import run as run_f6
from repro.experiments.f7_pareto import run as run_f7
from repro.experiments.x2_topology import run as run_x2
from repro.experiments.x3_replication import run as run_x3
from repro.experiments.x4_scale import run as run_x4

#: Experiment id -> runner.
REGISTRY = {
    "t1": run_t1,
    "t2": run_t2,
    "t3": run_t3,
    "t4": run_t4,
    "t5": run_t5,
    "f1": run_f1,
    "f2": run_f2,
    "f3": run_f3,
    "f4": run_f4,
    "f5": run_f5,
    "f6": run_f6,
    "f7": run_f7,
    "x2": run_x2,
    "x3": run_x3,
    "x4": run_x4,
}

__all__ = ["common", "REGISTRY"] + [f"run_{k}" for k in REGISTRY]
