"""F5 — Fault tolerance: makespan vs transient fault rate.

Sweeps the transient task-fault rate and compares recovery policies on
CyberShake (long GPU syntheses = much to lose per crash): plain retry,
fine-grained checkpointing, coarse checkpointing, and no protection
(success probability only).

Expected shape: retry degrades linearly in rate x mean task length;
checkpointing flattens the curve at the cost of its overhead at rate 0;
no-protection success collapses once ~1 fault per run is expected.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import (
    DEFAULT_CLUSTER_SPEC,
    ExperimentResult,
    make_job,
    run_sims,
)
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.runner.specs import factory_spec
from repro.workflows.generators import cybershake
from repro.workflows.serialize import workflow_to_dict


def policies():
    """(label, policy spec) pairs of the F5 curves."""
    return [
        ("retry", factory_spec(RecoveryPolicy.retry, 25)),
        ("ckpt-fine",
         factory_spec(RecoveryPolicy.checkpoint, 0.5, overhead=0.05, retries=25)),
        ("ckpt-coarse",
         factory_spec(RecoveryPolicy.checkpoint, 2.0, overhead=0.02, retries=25)),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the F5 fault sweep; makespan series per policy + success curve."""
    import repro.core  # noqa: F401  (registry hook)

    rates = (0.0, 0.05, 0.2) if quick else (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)
    reps = 2 if quick else 5
    # Scale work 4x so individual syntheses run for seconds: a mid-task
    # crash then costs real progress and checkpoints have work to save.
    doc = workflow_to_dict(cybershake(size=30 if quick else 60, seed=seed).scaled(4.0))

    policy_cells = [
        (rate, label,
         make_job(doc, DEFAULT_CLUSTER_SPEC, scheduler="hdws",
                  seed=seed + rep, noise_cv=noise_cv,
                  fault_model=factory_spec(FaultModel, task_fault_rate=rate),
                  recovery=policy,
                  label=f"f5:rate{rate}:{label}:rep{rep}"))
        for rate in rates
        for label, policy in policies()
        for rep in range(reps)
    ]
    none_cells = [
        (rate,
         make_job(doc, DEFAULT_CLUSTER_SPEC, scheduler="hdws",
                  seed=seed + 100 + rep, noise_cv=noise_cv,
                  fault_model=factory_spec(FaultModel, task_fault_rate=rate),
                  recovery=factory_spec(RecoveryPolicy.none),
                  label=f"f5:rate{rate}:none:rep{rep}"))
        for rate in rates
        for rep in range(reps * 2)
    ]
    records = run_sims(
        [job for _, _, job in policy_cells] + [job for _, job in none_cells]
    )
    policy_records = records[: len(policy_cells)]
    none_records = records[len(policy_cells):]

    totals: Dict[str, Dict[float, float]] = {label: {} for label, _ in policies()}
    for (rate, label, _job), record in zip(policy_cells, policy_records):
        # A blown retry budget still counts the partial run's span (it is
        # rare at the swept rates), matching the historical accounting.
        totals[label][rate] = totals[label].get(rate, 0.0) + record.makespan
    series = {
        label: {rate: total / reps for rate, total in vals.items()}
        for label, vals in totals.items()
    }

    ok_counts: Dict[float, int] = {rate: 0 for rate in rates}
    for (rate, _job), record in zip(none_cells, none_records):
        ok_counts[rate] += 1 if record.success else 0
    success_none = {rate: ok / (reps * 2) for rate, ok in ok_counts.items()}

    base = {label: vals[0.0] for label, vals in series.items()}
    worst = {label: max(vals.values()) / base[label] for label, vals in series.items()}
    return ExperimentResult(
        experiment="F5 fault tolerance",
        series={
            **{f"makespan[{label}]": vals for label, vals in series.items()},
            "success-rate[none]": success_none,
        },
        notes={"max_degradation": worst},
    )
