"""F5 — Fault tolerance: makespan vs transient fault rate.

Sweeps the transient task-fault rate and compares recovery policies on
CyberShake (long GPU syntheses = much to lose per crash): plain retry,
fine-grained checkpointing, coarse checkpointing, and no protection
(success probability only).

Expected shape: retry degrades linearly in rate x mean task length;
checkpointing flattens the curve at the cost of its overhead at rate 0;
no-protection success collapses once ~1 fault per run is expected.
"""

from __future__ import annotations

from typing import Dict

from repro.core.api import run_workflow
from repro.experiments.common import ExperimentResult, default_cluster
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.workflows.generators import cybershake


def policies():
    """(label, policy) pairs of the F5 curves."""
    return [
        ("retry", RecoveryPolicy.retry(25)),
        ("ckpt-fine", RecoveryPolicy.checkpoint(0.5, overhead=0.05, retries=25)),
        ("ckpt-coarse", RecoveryPolicy.checkpoint(2.0, overhead=0.02, retries=25)),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the F5 fault sweep; makespan series per policy + success curve."""
    import repro.core  # noqa: F401  (registry hook)

    rates = (0.0, 0.05, 0.2) if quick else (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)
    reps = 2 if quick else 5
    # Scale work 4x so individual syntheses run for seconds: a mid-task
    # crash then costs real progress and checkpoints have work to save.
    wf = cybershake(size=30 if quick else 60, seed=seed).scaled(4.0)
    cluster = default_cluster()

    series: Dict[str, Dict[float, float]] = {label: {} for label, _ in policies()}
    success_none: Dict[float, float] = {}
    for rate in rates:
        fm = FaultModel(task_fault_rate=rate)
        for label, policy in policies():
            total = 0.0
            for rep in range(reps):
                result = run_workflow(
                    wf, cluster, scheduler="hdws", seed=seed + rep,
                    noise_cv=noise_cv, fault_model=fm, recovery=policy,
                )
                if not result.success:
                    # Retry budget blown: count the partial run's span but
                    # flag it; at the swept rates this should be rare.
                    pass
                total += result.makespan
            series[label][rate] = total / reps

        ok = 0
        for rep in range(reps * 2):
            result = run_workflow(
                wf, cluster, scheduler="hdws", seed=seed + 100 + rep,
                noise_cv=noise_cv, fault_model=fm,
                recovery=RecoveryPolicy.none(),
            )
            ok += 1 if result.success else 0
        success_none[rate] = ok / (reps * 2)

    base = {label: vals[0.0] for label, vals in series.items()}
    worst = {label: max(vals.values()) / base[label] for label, vals in series.items()}
    return ExperimentResult(
        experiment="F5 fault tolerance",
        series={
            **{f"makespan[{label}]": vals for label, vals in series.items()},
            "success-rate[none]": success_none,
        },
        notes={"max_degradation": worst},
    )
