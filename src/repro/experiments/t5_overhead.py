"""T5 — Scheduling overhead: algorithm wall-clock vs DAG size.

Times the *scheduling call itself* (not the simulated execution) for the
main algorithms on random DAGs of growing size.  This is the classic
quality/overhead table: HEFT-family algorithms are near-quadratic in
(tasks x devices), PEFT pays extra for its OCT, the GA pays per
generation, and the immediate-mode mappers are near-linear.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.analysis.compare import ComparisonTable
from repro.experiments.common import ExperimentResult, default_cluster
from repro.schedulers import REGISTRY
from repro.schedulers.base import SchedulingContext
from repro.schedulers.genetic import GeneticScheduler
from repro.workflows.generators import random_dag


#: Above this DAG size the expensive columns are skipped (their cells stay
#: empty): lookahead-HEFT copies the partial schedule per candidate and the
#: GA re-decodes per individual, both impractical at thousands of tasks —
#: which is itself a finding the table reports.
EXPENSIVE_CUTOFF = 500


def lineup(quick: bool):
    """(label, scheduler factory, max size) triples of the T5 columns."""
    import repro.core  # noqa: F401  (registry hook)

    pairs = [
        ("hdws", REGISTRY["hdws"], None),
        ("heft", REGISTRY["heft"], None),
        ("peft", REGISTRY["peft"], None),
        ("minmin", REGISTRY["minmin"], None),
        ("mct", REGISTRY["mct"], None),
    ]
    if not quick:
        pairs.append(
            ("lookahead", REGISTRY["lookahead-heft"], EXPENSIVE_CUTOFF)
        )
        pairs.append((
            "genetic-10g",
            lambda: GeneticScheduler(population=16, generations=10),
            EXPENSIVE_CUTOFF,
        ))
    return pairs


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Run the T5 overhead study; scheduling seconds per (size, algorithm)."""
    sizes = (50, 100, 200) if quick else (50, 100, 200, 500, 1000, 2000)
    cluster = default_cluster()

    table = ComparisonTable("n_tasks")
    for n in sizes:
        wf = random_dag(n_tasks=n, ccr=0.5, seed=seed)
        context = SchedulingContext(wf, cluster)
        for label, factory, max_size in lineup(quick):
            if max_size is not None and n > max_size:
                continue  # impractical at this size: reported as a gap
            sched = factory()
            t0 = time.perf_counter()
            schedule = sched.schedule(context)
            elapsed = time.perf_counter() - t0
            schedule.validate_against(wf)
            table.set(str(n), label, elapsed)

    growth: Dict[str, float] = {}
    for label, _f, _m in lineup(quick):
        col = table.column_values(label)
        keys = sorted(col, key=int)
        growth[label] = col[keys[-1]] / max(col[keys[0]], 1e-9)
    return ExperimentResult(
        experiment="T5 scheduling overhead",
        tables={"scheduling time (s)": table},
        notes={"growth_first_to_last": growth},
    )
