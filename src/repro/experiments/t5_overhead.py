"""T5 — Scheduling overhead: algorithm wall-clock vs DAG size.

Times the *scheduling call itself* (not the simulated execution) for the
main algorithms on random DAGs of growing size.  This is the classic
quality/overhead table: HEFT-family algorithms are near-quadratic in
(tasks x devices), PEFT pays extra for its OCT, the GA pays per
generation, and the immediate-mode mappers are near-linear.

Timing cells run through the campaign runner but are never cached (a
stored wall-clock time is not a property of the inputs); with ``--jobs``
above 1 absolute values include pool contention, so compare columns
within one jobs setting.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.compare import ComparisonTable
from repro.experiments.common import (
    DEFAULT_CLUSTER_SPEC,
    ExperimentResult,
    make_timing_job,
    run_timings,
)
from repro.runner.specs import factory_spec
from repro.schedulers.genetic import GeneticScheduler
from repro.workflows.generators import random_dag


#: Above this DAG size the expensive columns are skipped (their cells stay
#: empty): lookahead-HEFT copies the partial schedule per candidate and the
#: GA re-decodes per individual, both impractical at thousands of tasks —
#: which is itself a finding the table reports.
EXPENSIVE_CUTOFF = 500


def lineup(quick: bool):
    """(label, scheduler spec, max size) triples of the T5 columns."""
    import repro.core  # noqa: F401  (registry hook)

    pairs = [
        ("hdws", "hdws", None),
        ("heft", "heft", None),
        ("peft", "peft", None),
        ("minmin", "minmin", None),
        ("mct", "mct", None),
    ]
    if not quick:
        pairs.append(("lookahead", "lookahead-heft", EXPENSIVE_CUTOFF))
        pairs.append((
            "genetic-10g",
            factory_spec(GeneticScheduler, population=16, generations=10),
            EXPENSIVE_CUTOFF,
        ))
    return pairs


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Run the T5 overhead study; scheduling seconds per (size, algorithm)."""
    sizes = (50, 100, 200) if quick else (50, 100, 200, 500, 1000, 2000)

    cells = []
    for n in sizes:
        wf = random_dag(n_tasks=n, ccr=0.5, seed=seed)
        for label, sched, max_size in lineup(quick):
            if max_size is not None and n > max_size:
                continue  # impractical at this size: reported as a gap
            cells.append((n, label, make_timing_job(
                wf, DEFAULT_CLUSTER_SPEC, scheduler=sched,
                label=f"t5:{n}:{label}",
            )))
    timings = run_timings([job for _, _, job in cells])

    table = ComparisonTable("n_tasks")
    for (n, label, _job), timing in zip(cells, timings):
        table.set(str(n), label, timing.elapsed_s)

    growth: Dict[str, float] = {}
    for label, _s, _m in lineup(quick):
        col = table.column_values(label)
        keys = sorted(col, key=int)
        growth[label] = col[keys[-1]] / max(col[keys[0]], 1e-9)
    return ExperimentResult(
        experiment="T5 scheduling overhead",
        tables={"scheduling time (s)": table},
        notes={"growth_first_to_last": growth},
    )
