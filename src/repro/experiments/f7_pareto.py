"""F7 — Energy/makespan Pareto front.

Sweeps the energy-aware scheduler's alpha from 0 (pure energy) to 1
(pure makespan) on LIGO with DVFS-capable devices, recording the
(makespan, energy) point of each setting.

Expected shape: a convex-ish trade-off curve — moving from alpha=1 to
alpha=0 cuts energy monotonically-ish while makespan rises; the knee is
where DVFS slack absorbs slowdowns for free.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.energy.governor import DeepSleepGovernor
from repro.experiments.common import (
    ExperimentResult,
    make_job,
    preset_spec,
    run_sims,
)
from repro.runner.specs import factory_spec
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler
from repro.workflows.generators import ligo_inspiral


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the F7 alpha sweep; makespan and energy series over alpha."""
    alphas = (0.0, 0.5, 1.0) if quick else (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    wf = ligo_inspiral(size=40 if quick else 100, seed=seed)
    governor = factory_spec(DeepSleepGovernor, threshold_s=1.0)
    cluster = preset_spec(
        "hybrid", nodes=4, cores_per_node=4, gpus_per_node=1, dvfs=True
    )

    cells = [
        (alpha,
         make_job(wf, cluster,
                  scheduler=factory_spec(EnergyAwareHeftScheduler, alpha=alpha),
                  seed=seed, noise_cv=noise_cv, governor=governor,
                  label=f"f7:alpha{alpha}"))
        for alpha in alphas
    ]
    records = run_sims([job for _, job in cells])

    makespan: Dict[float, float] = {}
    energy: Dict[float, float] = {}
    for (alpha, _job), record in zip(cells, records):
        makespan[alpha] = record.makespan
        energy[alpha] = record.energy_j

    front: List[Tuple[float, float, float]] = sorted(
        (makespan[a], energy[a], a) for a in alphas
    )
    return ExperimentResult(
        experiment="F7 energy/makespan Pareto",
        series={"makespan": makespan, "energy_j": energy},
        notes={
            "fastest_alpha": max(alphas, key=lambda a: -makespan[a]),
            "greenest_alpha": min(alphas, key=lambda a: energy[a]),
            "front": front,
        },
    )
