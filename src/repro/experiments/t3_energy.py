"""T3 — Energy comparison.

Runs HEFT, HDWS and the energy-aware scheduler (two alpha settings) on
the five suites on a DVFS-capable hybrid cluster with a deep-sleep idle
governor, reporting energy, makespan and EDP.

Expected shape: energy-aware placement + DVFS cuts energy versus HEFT at
a modest makespan cost; alpha trades between the two; HDWS (makespan-only)
sits between HEFT and the energy-aware points on energy because better
packing shortens idle tails.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.energy.governor import DeepSleepGovernor
from repro.experiments.common import (
    ExperimentResult,
    make_job,
    preset_spec,
    quick_params,
    run_sims,
    suite_workflows,
)
from repro.runner.specs import factory_spec
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler


def scheduler_lineup():
    """(label, scheduler spec) pairs of the T3 columns."""
    return [
        ("heft", "heft"),
        ("hdws", "hdws"),
        ("ea-0.7", factory_spec(EnergyAwareHeftScheduler, alpha=0.7)),
        ("ea-0.3", factory_spec(EnergyAwareHeftScheduler, alpha=0.3)),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the T3 energy comparison; energy/makespan/EDP tables."""
    params = quick_params(quick)
    workflows = suite_workflows(size=params["size"], seed=seed)
    governor = factory_spec(DeepSleepGovernor, threshold_s=1.0)
    cluster = preset_spec(
        "hybrid", nodes=4, cores_per_node=4, gpus_per_node=1, dvfs=True
    )

    cells = [
        (wname, label,
         make_job(wf, cluster, scheduler=sched, seed=seed, noise_cv=noise_cv,
                  governor=governor, label=f"t3:{wname}:{label}"))
        for wname, wf in workflows.items()
        for label, sched in scheduler_lineup()
    ]
    records = run_sims([job for _, _, job in cells])

    energy = ComparisonTable("workflow")
    makespan = ComparisonTable("workflow")
    edp = ComparisonTable("workflow")
    for (wname, label, _job), record in zip(cells, records):
        energy.set(wname, label, record.energy_j)
        makespan.set(wname, label, record.makespan)
        edp.set(wname, label, record.edp)

    energy = energy.with_geomean_row()
    makespan = makespan.with_geomean_row()
    edp = edp.with_geomean_row()
    return ExperimentResult(
        experiment="T3 energy comparison",
        tables={
            "energy (J)": energy,
            "makespan (s)": makespan,
            "EDP (J*s)": edp,
        },
        notes={
            "geomean_energy": energy.row_values("geo-mean"),
            "geomean_makespan": makespan.row_values("geo-mean"),
        },
    )
