"""T3 — Energy comparison.

Runs HEFT, HDWS and the energy-aware scheduler (two alpha settings) on
the five suites on a DVFS-capable hybrid cluster with a deep-sleep idle
governor, reporting energy, makespan and EDP.

Expected shape: energy-aware placement + DVFS cuts energy versus HEFT at
a modest makespan cost; alpha trades between the two; HDWS (makespan-only)
sits between HEFT and the energy-aware points on energy because better
packing shortens idle tails.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.core.api import run_workflow
from repro.energy.governor import DeepSleepGovernor
from repro.experiments.common import ExperimentResult, quick_params, suite_workflows
from repro.platform import presets
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler


def scheduler_lineup():
    """(label, scheduler) pairs of the T3 columns."""
    return [
        ("heft", "heft"),
        ("hdws", "hdws"),
        ("ea-0.7", EnergyAwareHeftScheduler(alpha=0.7)),
        ("ea-0.3", EnergyAwareHeftScheduler(alpha=0.3)),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the T3 energy comparison; energy/makespan/EDP tables."""
    params = quick_params(quick)
    workflows = suite_workflows(size=params["size"], seed=seed)
    governor = DeepSleepGovernor(threshold_s=1.0)

    energy = ComparisonTable("workflow")
    makespan = ComparisonTable("workflow")
    edp = ComparisonTable("workflow")
    for wname, wf in workflows.items():
        for label, sched in scheduler_lineup():
            cluster = presets.hybrid_cluster(
                nodes=4, cores_per_node=4, gpus_per_node=1, dvfs=True
            )
            result = run_workflow(
                wf, cluster, scheduler=sched, seed=seed,
                noise_cv=noise_cv, governor=governor,
            )
            energy.set(wname, label, result.energy.total_joules)
            makespan.set(wname, label, result.makespan)
            edp.set(wname, label, result.energy.edp)

    energy = energy.with_geomean_row()
    makespan = makespan.with_geomean_row()
    edp = edp.with_geomean_row()
    return ExperimentResult(
        experiment="T3 energy comparison",
        tables={
            "energy (J)": energy,
            "makespan (s)": makespan,
            "EDP (J*s)": edp,
        },
        notes={
            "geomean_energy": energy.row_values("geo-mean"),
            "geomean_makespan": makespan.row_values("geo-mean"),
        },
    )
