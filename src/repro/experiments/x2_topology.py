"""X2 (extension) — interconnect-topology sensitivity.

Runs the data-heaviest suites on the same device inventory behind four
fabrics (uniform mesh, tapered fat-tree, 2-D torus, dragonfly) and
reports makespan and bytes-moved per fabric — the ablation for the
"distance matters" interconnect design choice.

Expected shape: locality-aware HDWS loses little when the fabric gets
structured (it already co-locates consumers with bytes); the tapered
fat-tree hurts most because inter-pod bandwidth shrinks.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.experiments.common import ExperimentResult, make_job, run_sims
from repro.platform.cluster import Cluster
from repro.platform.devices import catalogue
from repro.platform.nodes import NodeSpec
from repro.platform.topologies import dragonfly, fat_tree, torus_2d
from repro.platform.interconnect import Interconnect
from repro.runner.specs import factory_spec
from repro.workflows.generators import cybershake, epigenomics

FABRICS = ("uniform", "fat-tree", "torus", "dragonfly")


def make_cluster(fabric: str, nodes: int = 8) -> Cluster:
    """Eight 2-CPU+1-GPU nodes behind the requested fabric.

    Module-level (not a preset) so campaign cells can address it by
    factory path.
    """
    cat = catalogue()
    names = [f"n{i}" for i in range(nodes)]
    specs = [
        NodeSpec.of(n, [cat["cpu-std"], cat["cpu-std"], cat["gpu-std"]])
        for n in names
    ]
    if fabric == "uniform":
        net = Interconnect.uniform(names)
    elif fabric == "fat-tree":
        net = fat_tree(names, pod_size=4, oversubscription=4.0)
    elif fabric == "torus":
        net = torus_2d(names, width=4)
    elif fabric == "dragonfly":
        net = dragonfly(names, group_size=4)
    else:
        raise KeyError(f"unknown fabric {fabric!r}")
    return Cluster(f"x2-{fabric}", specs, interconnect=net)


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the X2 fabric sweep; makespan and traffic tables."""
    size = 40 if quick else 100
    workflows = {
        "cybershake": cybershake(size=size, seed=seed),
        "epigenomics": epigenomics(size=size, seed=seed + 1),
    }

    cells = [
        (wname, fabric,
         make_job(wf, factory_spec(make_cluster, fabric),
                  scheduler="hdws", seed=seed, noise_cv=noise_cv,
                  label=f"x2:{fabric}:{wname}"))
        for fabric in FABRICS
        for wname, wf in workflows.items()
    ]
    records = run_sims([job for _, _, job in cells])

    makespan = ComparisonTable("workflow")
    traffic = ComparisonTable("workflow")
    for (wname, fabric, _job), record in zip(cells, records):
        makespan.set(wname, fabric, record.makespan)
        traffic.set(wname, fabric, record.data_moved_mb)

    spread = {}
    for wname in workflows:
        row = makespan.row_values(wname)
        spread[wname] = max(row.values()) / min(row.values())
    return ExperimentResult(
        experiment="X2 interconnect-topology sensitivity",
        tables={"makespan (s)": makespan, "data moved (MB)": traffic},
        notes={"makespan_spread": spread},
    )
