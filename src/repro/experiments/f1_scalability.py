"""F1 — Speedup vs cluster size.

Runs Montage (200 tasks full / 80 quick) on hybrid clusters of 1..32
nodes with HDWS, HEFT and Min-Min; reports speedup over the single-best-
CPU serial time.

Expected shape: near-linear speedup while width lasts, then a plateau set
by the critical path; HDWS saturates highest because it wastes the least
accelerator time.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.metrics import speedup
from repro.experiments.common import (
    ExperimentResult,
    make_job,
    preset_spec,
    run_sims,
)
from repro.platform import presets
from repro.workflows.generators import montage

SCHEDULERS = ("hdws", "heft", "minmin")


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the F1 scaling sweep; returns one speedup series per scheduler."""
    import repro.core  # noqa: F401  (registry hook)

    sizes = (1, 2, 4, 8) if quick else (1, 2, 4, 8, 16, 32)
    wf = montage(size=80 if quick else 200, seed=seed)

    cells = [
        (nodes, sched,
         make_job(wf,
                  preset_spec("hybrid", nodes=nodes, cores_per_node=4,
                              gpus_per_node=1),
                  scheduler=sched, seed=seed, noise_cv=noise_cv,
                  label=f"f1:{nodes}n:{sched}"))
        for nodes in sizes
        for sched in SCHEDULERS
    ]
    records = run_sims([job for _, _, job in cells])

    # The speedup baseline (fastest-CPU serial time) needs the concrete
    # platform; rebuild each size once locally — construction is cheap.
    clusters = {
        nodes: presets.hybrid_cluster(nodes=nodes, cores_per_node=4,
                                      gpus_per_node=1)
        for nodes in sizes
    }
    series: Dict[str, Dict[float, float]] = {s: {} for s in SCHEDULERS}
    for (nodes, sched, _job), record in zip(cells, records):
        series[sched][float(nodes)] = speedup(
            record.makespan, wf, clusters[nodes], cpu_only=True
        )

    notes = {
        "saturation": {
            s: max(vals.values()) for s, vals in series.items()
        }
    }
    return ExperimentResult(
        experiment="F1 speedup vs cluster size",
        series={f"speedup[{s}]": series[s] for s in SCHEDULERS},
        notes=notes,
    )
