"""F6 — Data-staging traffic by scheduler.

Measures bytes actually moved (inter-node network + shared-storage
staging) for Montage and Epigenomics under HDWS, HDWS without the
locality tie-break, HEFT and Min-Min.

Expected shape: the locality tie-break cuts traffic markedly at a
makespan cost inside its tolerance; Min-Min, blind to placement history,
moves the most.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.core.api import run_workflow
from repro.core.hdws import HdwsScheduler
from repro.experiments.common import ExperimentResult, default_cluster
from repro.workflows.generators import epigenomics, montage


def lineup():
    """(label, scheduler) pairs of the F6 bars."""
    return [
        ("hdws", HdwsScheduler()),
        ("hdws-noloc", HdwsScheduler(use_locality=False)),
        ("heft", "heft"),
        ("minmin", "minmin"),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the F6 traffic measurement; traffic and makespan tables."""
    size = 40 if quick else 100
    workflows = {
        "montage": montage(size=size, seed=seed),
        "epigenomics": epigenomics(size=size, seed=seed + 1),
    }
    cluster = default_cluster()

    traffic = ComparisonTable("workflow")
    makespan = ComparisonTable("workflow")
    for wname, wf in workflows.items():
        for label, sched in lineup():
            result = run_workflow(
                wf, cluster, scheduler=sched, seed=seed, noise_cv=noise_cv
            )
            traffic.set(
                wname, label,
                result.execution.network_mb + result.execution.staging_mb,
            )
            makespan.set(wname, label, result.makespan)

    savings = {}
    for wname in workflows:
        row = traffic.row_values(wname)
        savings[wname] = row["hdws-noloc"] / max(row["hdws"], 1e-9)
    return ExperimentResult(
        experiment="F6 data-staging traffic",
        tables={"data moved (MB)": traffic, "makespan (s)": makespan},
        notes={"traffic_ratio_noloc_vs_loc": savings},
    )
