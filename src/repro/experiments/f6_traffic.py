"""F6 — Data-staging traffic by scheduler.

Measures bytes actually moved (inter-node network + shared-storage
staging) for Montage and Epigenomics under HDWS, HDWS without the
locality tie-break, HEFT and Min-Min.

Expected shape: the locality tie-break cuts traffic markedly at a
makespan cost inside its tolerance; Min-Min, blind to placement history,
moves the most.
"""

from __future__ import annotations

from repro.analysis.compare import ComparisonTable
from repro.core.hdws import HdwsScheduler
from repro.experiments.common import (
    DEFAULT_CLUSTER_SPEC,
    ExperimentResult,
    make_job,
    run_sims,
)
from repro.runner.specs import factory_spec
from repro.workflows.generators import epigenomics, montage


def lineup():
    """(label, scheduler spec) pairs of the F6 bars."""
    return [
        ("hdws", factory_spec(HdwsScheduler)),
        ("hdws-noloc", factory_spec(HdwsScheduler, use_locality=False)),
        ("heft", "heft"),
        ("minmin", "minmin"),
    ]


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.1) -> ExperimentResult:
    """Run the F6 traffic measurement; traffic and makespan tables."""
    size = 40 if quick else 100
    workflows = {
        "montage": montage(size=size, seed=seed),
        "epigenomics": epigenomics(size=size, seed=seed + 1),
    }

    cells = [
        (wname, label,
         make_job(wf, DEFAULT_CLUSTER_SPEC, scheduler=sched, seed=seed,
                  noise_cv=noise_cv, label=f"f6:{wname}:{label}"))
        for wname, wf in workflows.items()
        for label, sched in lineup()
    ]
    records = run_sims([job for _, _, job in cells])

    traffic = ComparisonTable("workflow")
    makespan = ComparisonTable("workflow")
    for (wname, label, _job), record in zip(cells, records):
        traffic.set(wname, label, record.data_moved_mb)
        makespan.set(wname, label, record.makespan)

    savings = {}
    for wname in workflows:
        row = traffic.row_values(wname)
        savings[wname] = row["hdws-noloc"] / max(row["hdws"], 1e-9)
    return ExperimentResult(
        experiment="F6 data-staging traffic",
        tables={"data moved (MB)": traffic, "makespan (s)": makespan},
        notes={"traffic_ratio_noloc_vs_loc": savings},
    )
