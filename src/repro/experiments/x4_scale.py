"""X4 (extension) — streaming campaign scale and endurance.

Drives the streaming million-cell path end to end: cells are described
batch by batch, dispatched through the persistent worker pool, and the
records stream back in submission order into O(1)-memory Welford
aggregates (:class:`~repro.analysis.stats.StreamingSummary`) and an
optional on-disk JSONL shard sink — the campaign never exists as an
in-memory list of records, so peak memory is flat in the cell count.

Sizing: ``quick`` runs 512 cells (CI-friendly); the full run takes its
cell count from ``REPRO_SCALE_CELLS`` (default 100 000).  Because every
cell goes through the content-addressed cache, a killed run resumes by
simply re-running with the same cache directory: completed cells warm-
start and only the remainder simulates (see ``scripts/scale_smoke.py``).

Expected shape: aggregate makespan statistics are independent of the
``jobs`` setting and of cold/warm cache state (the determinism
contract), and throughput in cells/sec is the headline number the bench
gate tracks.
"""

from __future__ import annotations

import os
import resource
import time
from typing import Dict, Optional

from repro.analysis.stats import StreamingGeomean, StreamingSummary
from repro.experiments.common import ExperimentResult, make_job, stream_sims
from repro.platform import presets
from repro.runner.context import get_runner
from repro.runner.shards import ShardWriter
from repro.runner.specs import factory_spec
from repro.workflows.generators import random_dag
from repro.workflows.serialize import workflow_to_dict

#: Distinct workflow documents cycled across batches — enough variety to
#: exercise the worker-side document memo, few enough that building them
#: is not the bottleneck at scale.
N_DOCS = 4

#: Default cell count of the full (non-quick) run.
FULL_CELLS_DEFAULT = 100_000


def _target_cells(quick: bool, cells: Optional[int]) -> int:
    if cells is not None:
        return max(1, int(cells))
    if quick:
        return 512
    return max(1, int(os.environ.get("REPRO_SCALE_CELLS", "")
                      or FULL_CELLS_DEFAULT))


def run(
    quick: bool = True,
    seed: int = 0,
    noise_cv: float = 0.05,
    cells: Optional[int] = None,
    batch_size: Optional[int] = None,
    shard_dir: Optional[str] = None,
) -> ExperimentResult:
    """Run the X4 streaming scale campaign; throughput + aggregate stats.

    ``shard_dir`` (optional) streams every ``(index, record)`` pair into
    a rotating JSONL shard sink as cells complete.
    """
    n_cells = _target_cells(quick, cells)
    per_batch = max(1, batch_size or (128 if quick else 1024))

    docs = [
        workflow_to_dict(random_dag(size=8, seed=seed + k))
        for k in range(N_DOCS)
    ]
    cluster = factory_spec(
        presets.hybrid_cluster, nodes=2, cores_per_node=2, gpus_per_node=1
    )

    makespan = StreamingSummary()
    energy = StreamingSummary()
    geomean = StreamingGeomean()
    successes = 0

    runner = get_runner()
    simulated_before = runner.simulated
    n_batches = (n_cells + per_batch - 1) // per_batch
    #: Sampled running mean per batch — bounded at ~64 points however
    #: large the campaign grows.
    sample_every = max(1, n_batches // 64)
    running: Dict[float, float] = {}

    sink = ShardWriter(shard_dir) if shard_dir else None
    t0 = time.perf_counter()
    try:
        for b in range(n_batches):
            start = b * per_batch
            count = min(per_batch, n_cells - start)
            doc = docs[b % N_DOCS]
            jobs = [
                make_job(
                    doc, cluster, scheduler="heft",
                    seed=seed + start + i, noise_cv=noise_cv,
                    label=f"x4:b{b}:{i}",
                )
                for i in range(count)
            ]
            for i, record in stream_sims(jobs):
                makespan.add(record.makespan)
                energy.add(record.energy_j)
                geomean.add(record.makespan)
                successes += int(record.success)
                if sink is not None:
                    sink.append(start + i, record.to_dict())
            if b % sample_every == 0:
                running[float(b)] = makespan.mean
    finally:
        if sink is not None:
            sink.close()
    wall = time.perf_counter() - t0

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return ExperimentResult(
        experiment="X4 streaming campaign scale",
        series={"running mean makespan (s)": running},
        notes={
            "cells": n_cells,
            "batches": n_batches,
            "simulated": runner.simulated - simulated_before,
            "cells_per_sec": n_cells / wall if wall > 0 else 0.0,
            "wall_s": wall,
            "peak_rss_mb": peak_rss_mb,
            "success_rate": successes / n_cells,
            "makespan": makespan.result().as_dict(),
            "makespan_geomean": geomean.result(),
            "energy_j_mean": energy.result().mean,
            "sharded": sink.written if sink is not None else 0,
        },
    )
