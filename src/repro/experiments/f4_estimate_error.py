"""F4 — Robustness to runtime-estimate error.

Sweeps a systematic per-task profiling error (lognormal CV from 0 to 2)
applied to the estimates the planner sees, while actual runtimes stay
truthful, and compares three execution modes of HDWS: static plan,
dynamic JIT, and adaptive (plan + frontier re-planning).

Expected shape: static degrades steadily with error; dynamic is flat but
starts from a worse baseline; adaptive tracks static at low error and
dynamic-or-better at high error — the crossover is the figure's point.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import (
    DEFAULT_CLUSTER_SPEC,
    ExperimentResult,
    make_job,
    run_sims,
)
from repro.workflows.generators import montage
from repro.workflows.serialize import workflow_to_dict

MODES = ("static", "dynamic", "adaptive")


def run(quick: bool = True, seed: int = 0, noise_cv: float = 0.2) -> ExperimentResult:
    """Run the F4 estimate-error sweep; one makespan series per mode."""
    import repro.core  # noqa: F401  (registry hook)

    errors = (0.0, 0.5, 1.5) if quick else (0.0, 0.25, 0.5, 1.0, 1.5, 2.0)
    reps = 2 if quick else 5
    doc = workflow_to_dict(montage(size=40 if quick else 100, seed=seed))

    cells = [
        (err, mode,
         make_job(doc, DEFAULT_CLUSTER_SPEC, scheduler="hdws", mode=mode,
                  seed=seed + rep, noise_cv=noise_cv, estimate_error_cv=err,
                  label=f"f4:err{err}:{mode}:rep{rep}"))
        for err in errors
        for mode in MODES
        for rep in range(reps)
    ]
    records = run_sims([job for _, _, job in cells])

    totals: Dict[str, Dict[float, float]] = {m: {} for m in MODES}
    for (err, mode, _job), record in zip(cells, records):
        totals[mode][err] = totals[mode].get(err, 0.0) + record.makespan
    series = {
        mode: {err: total / reps for err, total in vals.items()}
        for mode, vals in totals.items()
    }

    degradation = {
        m: series[m][errors[-1]] / series[m][errors[0]] for m in MODES
    }
    return ExperimentResult(
        experiment="F4 estimate-error robustness",
        series={f"makespan[{m}]": series[m] for m in MODES},
        notes={"degradation_last_vs_first": degradation},
    )
