"""Core contribution: the HDWS orchestrator.

This package implements the paper's primary contribution — an
orchestration layer that maps complex scientific discovery workflows onto
heterogeneous computing systems — plus the event-driven executor it (and
every baseline) runs on:

* :mod:`~repro.core.executor` — discrete-event workflow execution with
  data staging, caching, faults, retries and checkpointing.
* :mod:`~repro.core.policies` — execution policies (static plan,
  static-with-repair, dynamic just-in-time mapping).
* :mod:`~repro.core.hdws` — the HDWS scheduling algorithm (accelerator
  affinity + data locality + lookahead).
* :mod:`~repro.core.adaptive` — runtime adaptivity: straggler detection
  and frontier rescheduling.
* :mod:`~repro.core.orchestrator` — one-call experiment runner gluing
  scheduler, policy, executor and accounting together.
* :mod:`~repro.core.api` — the stable public entry points.
"""

from repro.core.executor import ExecutionResult, TaskRecord, WorkflowExecutor
from repro.core.policies import (
    DynamicMctPolicy,
    ExecutionPolicy,
    StaticPolicy,
)
from repro.core.hdws import HdwsScheduler
from repro.core.adaptive import AdaptivePolicy
from repro.core.orchestrator import Orchestrator, RunConfig, RunResult
from repro.core.ensemble import EnsembleMember, EnsembleResult, EnsembleRunner
from repro.core.api import run_workflow

__all__ = [
    "WorkflowExecutor",
    "ExecutionResult",
    "TaskRecord",
    "ExecutionPolicy",
    "StaticPolicy",
    "DynamicMctPolicy",
    "HdwsScheduler",
    "AdaptivePolicy",
    "Orchestrator",
    "RunConfig",
    "RunResult",
    "EnsembleMember",
    "EnsembleResult",
    "EnsembleRunner",
    "run_workflow",
]
