"""One-call experiment runner.

The :class:`Orchestrator` glues the layers together: it resolves a
scheduler, builds the estimation context (optionally with systematic
estimate error), chooses an execution policy for the requested mode,
executes the workflow on the (reset) cluster, and integrates energy.
Every benchmark and example drives runs through this class so that
"running Montage with HEFT on the hybrid cluster" is one reproducible
call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.core.adaptive import AdaptivePolicy
from repro.core.executor import ExecutionResult, WorkflowExecutor
from repro.core.policies import DynamicMctPolicy, ExecutionPolicy, StaticPolicy
from repro.energy.accounting import EnergyReport, account_energy
from repro.energy.governor import IdleGovernor
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform.cluster import Cluster
from repro.schedulers import REGISTRY
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.schedule import Schedule
from repro.workflows.graph import Workflow
from repro.workflows.validate import validate_workflow

#: Execution modes the orchestrator supports.
MODES = ("static", "dynamic", "adaptive")


def _env_precheck() -> bool:
    """Whether REPRO_PRECHECK asks for always-on static prechecking."""
    import os

    return os.environ.get("REPRO_PRECHECK", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


@dataclass
class RunConfig:
    """Everything that parameterizes one run.

    Attributes:
        scheduler: Registry name or a :class:`Scheduler` instance.  Ignored
            in ``dynamic`` mode (the JIT policy plans nothing ahead).
        mode: ``static`` (follow the plan), ``dynamic`` (JIT greedy), or
            ``adaptive`` (plan + drift-triggered frontier re-planning).
        seed: Master seed for all run randomness.
        noise_cv: Runtime-noise coefficient of variation (truth vs
            estimate).
        estimate_error_cv: Systematic per-task profiling error applied to
            the estimates schedulers see (experiment F4).
        fault_model: Failure statistics; default = no faults.
        recovery: Failure-handling policy.
        locality_aware: For dynamic mode, whether the JIT policy prices
            live staging costs.
        drift_threshold: For adaptive mode, re-plan trigger sensitivity.
        governor: Idle-power governor for energy accounting.
        validate: Validate the workflow before running.
        max_time: Simulation safety horizon (virtual seconds).
        sanitize: Attach the simulation sanitizer
            (:class:`repro.sanitizer.Sanitizer`) to the run.  ``None``
            defers to the ``REPRO_SANITIZE`` environment variable.
        precheck: Run the plan-time model checker
            (:func:`repro.staticcheck.check_run`) before simulating and
            audit the static plan (:func:`repro.staticcheck.audit_schedule`)
            before executing it; blocking findings raise
            :class:`~repro.staticcheck.StaticCheckError`.  ``None`` defers
            to the ``REPRO_PRECHECK`` environment variable.
        metrics: Attach a :class:`repro.observe.MetricsRegistry` to the
            run; the snapshot (including scheduler planning wall-time and
            events/sec in its ``profile`` section) lands in
            ``result.execution.metrics``.  ``None`` defers to the
            ``REPRO_METRICS`` environment variable.  Pure observation:
            never changes a simulated outcome.
    """

    scheduler: Union[str, Scheduler] = "hdws"
    mode: str = "static"
    seed: int = 0
    noise_cv: float = 0.0
    estimate_error_cv: float = 0.0
    fault_model: FaultModel = field(default_factory=FaultModel)
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    locality_aware: bool = True
    drift_threshold: float = 0.10
    governor: Optional[IdleGovernor] = None
    validate: bool = True
    max_time: Optional[float] = None
    sanitize: Optional[bool] = None
    precheck: Optional[bool] = None
    metrics: Optional[bool] = None
    #: Earliest permissible start per task (online arrivals); empty = all 0.
    release_times: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")

    def resolve_scheduler(self) -> Scheduler:
        """Instantiate the configured scheduler."""
        if isinstance(self.scheduler, Scheduler):
            return self.scheduler
        try:
            return REGISTRY[self.scheduler]()
        except KeyError:
            raise KeyError(
                f"unknown scheduler {self.scheduler!r}; "
                f"available: {sorted(REGISTRY)}"
            ) from None


@dataclass
class RunResult:
    """Outcome of one orchestrated run."""

    workflow: str
    cluster: str
    config: RunConfig
    plan: Optional[Schedule]
    execution: ExecutionResult
    energy: EnergyReport

    @property
    def makespan(self) -> float:
        """Achieved makespan (virtual seconds)."""
        return self.execution.makespan

    @property
    def success(self) -> bool:
        """Whether every task completed."""
        return self.execution.success

    @property
    def metrics(self) -> Optional[Dict[str, object]]:
        """Metrics snapshot of an instrumented run (None otherwise)."""
        return self.execution.metrics

    def summary(self) -> Dict[str, float]:
        """The headline numbers of this run as a flat dict."""
        return {
            "makespan": self.makespan,
            "energy_j": self.energy.total_joules,
            "edp": self.energy.edp,
            "network_mb": self.execution.network_mb,
            "staging_mb": self.execution.staging_mb,
            "retries": float(self.execution.retries),
            "task_faults": float(self.execution.task_faults),
            "device_faults": float(self.execution.device_faults),
            "success": 1.0 if self.success else 0.0,
        }


class Orchestrator:
    """Runs workflows on clusters under a :class:`RunConfig`."""

    def __init__(self, config: Optional[RunConfig] = None) -> None:
        self.config = config or RunConfig()

    def run(self, workflow: Workflow, cluster: Cluster) -> RunResult:
        """Execute one workflow on one cluster; returns the full result.

        The cluster is reset first, so one cluster instance can serve many
        sequential runs (its execution model's noise settings are adjusted
        in place for the run).
        """
        cfg = self.config
        if cfg.validate:
            validate_workflow(workflow)
        cluster.reset()
        cluster.execution_model.noise_cv = cfg.noise_cv

        precheck = cfg.precheck if cfg.precheck is not None else _env_precheck()
        if precheck:
            from repro.staticcheck import check_run

            check_run(
                workflow, cluster,
                fault_model=cfg.fault_model, recovery=cfg.recovery,
            ).raise_if_errors()

        # Build the registry here (not in the executor) so scheduler
        # planning wall-time profiles into the same snapshot.
        from repro.observe import clock, env_metrics

        want_metrics = (
            cfg.metrics if cfg.metrics is not None else env_metrics()
        )
        registry = None
        if want_metrics:
            from repro.observe import MetricsRegistry

            registry = MetricsRegistry()
        t_plan = clock()
        policy, plan = self._build_policy(workflow, cluster)
        if registry is not None:
            registry.profile("plan.wall_s", clock() - t_plan)
        if precheck and plan is not None:
            from repro.staticcheck import CheckReport, audit_schedule

            CheckReport(
                audit_schedule(plan, workflow, cluster)
            ).raise_if_errors()
        horizon = self._failure_horizon(plan, workflow, cluster)
        executor = WorkflowExecutor(
            workflow,
            cluster,
            policy,
            seed=cfg.seed,
            recovery=cfg.recovery,
            fault_model=cfg.fault_model,
            failure_horizon=horizon,
            release_times=cfg.release_times,
            sanitize=cfg.sanitize,
            metrics=registry if registry is not None else False,
        )
        t_run = clock()
        execution = executor.run(max_time=cfg.max_time)
        if registry is not None:
            wall = clock() - t_run
            registry.profile("run.wall_s", wall)
            registry.profile(
                "sim.events_per_sec",
                execution.events / wall if wall > 0 else 0.0,
            )
            # Re-snapshot so the profile entries recorded after the
            # executor's own snapshot are included.
            execution.metrics = registry.snapshot()
        energy = account_energy(
            cluster, execution.makespan, execution.trace, cfg.governor
        )
        return RunResult(
            workflow=workflow.name,
            cluster=cluster.name,
            config=cfg,
            plan=plan,
            execution=execution,
            energy=energy,
        )

    def _build_policy(self, workflow: Workflow, cluster: Cluster):
        cfg = self.config
        if cfg.mode == "dynamic":
            return (
                DynamicMctPolicy(
                    locality_aware=cfg.locality_aware,
                    estimate_error_cv=cfg.estimate_error_cv,
                    seed=cfg.seed,
                ),
                None,
            )
        scheduler = cfg.resolve_scheduler()
        if cfg.mode == "adaptive":
            return (
                AdaptivePolicy(
                    planner=scheduler,
                    drift_threshold=cfg.drift_threshold,
                    estimate_error_cv=cfg.estimate_error_cv,
                    seed=cfg.seed,
                ),
                None,
            )
        context = SchedulingContext(
            workflow,
            cluster,
            estimate_error_cv=cfg.estimate_error_cv,
            rng=np.random.default_rng(cfg.seed + 7919),
            release_times=cfg.release_times,
        )
        plan = scheduler.schedule(context)
        plan.validate_against(workflow)
        return StaticPolicy(plan), plan

    def _failure_horizon(
        self, plan: Optional[Schedule], workflow: Workflow, cluster: Cluster
    ) -> float:
        """Horizon over which permanent device failures are drawn."""
        if plan is not None and plan.makespan > 0:
            return plan.makespan * 20.0
        # No plan (dynamic/adaptive): a crude serial bound.
        serial = workflow.total_work() / max(cluster.reference_speed(), 1e-9)
        return max(serial * 20.0, 1.0)
