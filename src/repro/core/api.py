"""Stable public entry points.

Most users need exactly two calls::

    from repro import run_workflow
    from repro.workflows.generators import montage
    from repro.platform import presets

    result = run_workflow(montage(size=100), presets.hybrid_cluster())
    print(result.makespan, result.energy.total_joules)

and, for studies, :func:`compare_schedulers`, which runs a list of
schedulers on the same (workflow, cluster, seed) triple and returns their
results keyed by name.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.core.orchestrator import Orchestrator, RunConfig, RunResult
from repro.platform.cluster import Cluster
from repro.platform import presets
from repro.schedulers.base import Scheduler
from repro.workflows.graph import Workflow


def run_workflow(
    workflow: Workflow,
    cluster: Optional[Cluster] = None,
    scheduler: Union[str, Scheduler] = "hdws",
    mode: str = "static",
    seed: int = 0,
    **config_kwargs,
) -> RunResult:
    """Run one workflow on one cluster and return the full result.

    Args:
        workflow: The workflow to execute.
        cluster: Target platform; defaults to the single-node workstation
            preset (quickstart-friendly).
        scheduler: Scheduler registry name or instance.
        mode: ``static``, ``dynamic``, or ``adaptive``.
        seed: Master seed for all run randomness.
        **config_kwargs: Any further :class:`RunConfig` field.
    """
    cluster = cluster or presets.single_node_workstation()
    config = RunConfig(
        scheduler=scheduler, mode=mode, seed=seed, **config_kwargs
    )
    return Orchestrator(config).run(workflow, cluster)


def compare_schedulers(
    workflow: Workflow,
    cluster: Cluster,
    schedulers: Iterable[Union[str, Scheduler]],
    seed: int = 0,
    **config_kwargs,
) -> Dict[str, RunResult]:
    """Run several schedulers on identical inputs; results by name.

    The cluster is reset between runs, and every run uses the same seed,
    so runtime noise and fault sequences are identical across schedulers —
    differences in the results are pure policy.
    """
    out: Dict[str, RunResult] = {}
    for sched in schedulers:
        name = sched if isinstance(sched, str) else sched.name
        out[name] = run_workflow(
            workflow, cluster, scheduler=sched, seed=seed, **config_kwargs
        )
    return out
