"""Runtime adaptivity: monitor execution, re-plan the unstarted frontier.

:class:`AdaptivePolicy` starts from a static plan (HDWS by default) and
follows it like :class:`~repro.core.policies.StaticPolicy` — but it
watches actual completions.  When a task's real finish time drifts from
the plan by more than ``drift_threshold`` of the planned makespan (a
straggler, a fault retry, a mis-estimate), or when a device dies, every
task that has not started yet is re-planned from the current true state:
completed/running tasks are pinned at their actual placements and times,
device timelines are floored at *now*, and the frontier is re-scored with
the same heterogeneity-aware machinery the initial plan used.

This is the mechanism that makes HDWS degrade gracefully under estimate
error (F4): static plans inherit every profiling mistake, dynamic greedy
forgets the global structure, and frontier re-planning keeps both.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.hdws import HdwsScheduler
from repro.core.policies import Decision, ExecutionPolicy
from repro.platform.devices import Device
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.schedule import Schedule


class AdaptivePolicy(ExecutionPolicy):
    """Static plan + drift-triggered frontier rescheduling."""

    def __init__(
        self,
        planner: Optional[Scheduler] = None,
        drift_threshold: float = 0.10,
        max_replans: int = 50,
        estimate_error_cv: float = 0.0,
        seed: int = 0,
        allow_stealing: bool = True,
        steal_tolerance: float = 1.5,
    ) -> None:
        self.planner = planner or HdwsScheduler()
        self.drift_threshold = drift_threshold
        self.max_replans = max_replans
        self.estimate_error_cv = estimate_error_cv
        self.seed = seed
        self.allow_stealing = allow_stealing
        self.steal_tolerance = steal_tolerance
        self.replans = 0
        self.steals = 0
        self._context: Optional[SchedulingContext] = None
        self._plan: Optional[Schedule] = None
        self._queues: Dict[str, List[str]] = {}
        self._dvfs: Dict[str, str] = {}
        self._oct: Optional[Dict[str, Dict[str, float]]] = None
        self._ranks: Dict[str, float] = {}
        self._topo_index: Dict[str, int] = {}
        #: Class-pressure cache; invalidated on device failure (the only
        #: event that changes the alive set it is computed from).
        self._pressure: Optional[Dict] = None

    # ------------------------------------------------------------------ #
    # policy interface                                                   #
    # ------------------------------------------------------------------ #

    def prepare(self, executor) -> None:
        """Compute the initial full plan."""
        import numpy as np

        self._context = SchedulingContext(
            executor.workflow,
            executor.cluster,
            estimate_error_cv=self.estimate_error_cv,
            rng=np.random.default_rng(self.seed + 7919),
            release_times=executor.release_times,
        )
        self._plan = self.planner.schedule(self._context)
        self._dvfs = dict(self._plan.dvfs_choice)
        self._ranks = self._context.upward_ranks(use_best=True)
        self._topo_index = {
            n: i
            for i, n in enumerate(executor.workflow.topological_order())
        }
        self._rebuild_queues(self._plan)

    def select(self, executor) -> List[Decision]:
        """Dispatch plan-order queue heads, then steal for idle devices.

        Head dispatch follows the plan.  Work stealing then lets a free
        device take a ready task whose planned device is busy, provided the
        thief runs it within ``steal_tolerance`` of the planned device's
        estimate — bounded opportunism that removes the idle-wait penalty
        static plans pay under estimate error, without handing accelerator
        work to wildly unsuitable devices.
        """
        decisions: List[Decision] = []
        claimed_devices = set()
        claimed_tasks = set()
        for uid in sorted(self._queues):
            queue = self._queues[uid]
            if not queue:
                continue
            try:
                device = executor.cluster.device(uid)
            except KeyError:  # pragma: no cover - defensive
                continue
            if device.failed or uid in executor.busy_devices:
                continue
            head = queue[0]
            if head in executor.ready:
                decisions.append((head, device, self._dvfs.get(head)))
                claimed_devices.add(uid)
                claimed_tasks.add(head)
        if self.allow_stealing:
            decisions.extend(
                self._steal(executor, claimed_devices, claimed_tasks)
            )
        decisions.extend(self._rescue_orphans(executor, decisions))
        return decisions

    def _rescue_orphans(self, executor, decisions) -> List[Decision]:
        """Dispatch ready tasks that dropped out of every plan queue.

        A task can be queued nowhere: a re-plan treats RUNNING tasks as
        placed, so one whose clones all crash afterwards returns to READY
        with no queue holding it.  Head dispatch and stealing only serve
        queued tasks, so without this pass such a task would never run
        again and the simulation would stall with work still ready.
        """
        dispatched = {d[0] for d in decisions}
        used_devices = {d[1].uid for d in decisions}
        queued = {t for q in self._queues.values() for t in q}
        orphans = sorted(
            (t for t in executor.ready_tasks()
             if t not in dispatched and t not in queued),
            key=lambda t: (-self._ranks.get(t, 0.0), t),
        )
        if not orphans:
            return []
        rescued: List[Decision] = []
        idle = [
            d for d in executor.free_devices() if d.uid not in used_devices
        ]
        for task in orphans:
            best = None
            for device in idle:
                if not executor.eligible(task, device):
                    continue
                est = self._context.exec_time(task, device.uid)
                if best is None or est < best[0]:
                    best = (est, device)
            if best is not None:
                _est, device = best
                rescued.append((task, device, None))
                idle.remove(device)
        return rescued

    def _steal(self, executor, claimed_devices, claimed_tasks) -> List[Decision]:
        """Match idle devices with ready tasks stuck behind busy devices."""
        idle = [
            d for d in executor.free_devices()
            if d.uid not in claimed_devices
        ]
        if not idle:
            return []
        planned_on = {
            task: uid for uid, queue in self._queues.items() for task in queue
        }
        stealable = sorted(
            (t for t in executor.ready_tasks()
             if t not in claimed_tasks
             and planned_on.get(t) is not None
             and planned_on[t] not in claimed_devices
             and (planned_on[t] in executor.busy_devices
                  or executor.cluster.device(planned_on[t]).failed)),
            key=lambda t: (-self._ranks.get(t, 0.0), t),
        )
        decisions: List[Decision] = []
        ctx = self._context
        for task in stealable:
            if not idle:
                break
            planned_uid = planned_on[task]
            try:
                planned_est = ctx.exec_time(task, planned_uid)
            except Exception:  # planned device no longer priced (failed)
                planned_est = float("inf")
            best = None
            for device in idle:
                if not executor.eligible(task, device):
                    continue
                est = ctx.exec_time(task, device.uid)
                if est <= planned_est * self.steal_tolerance:
                    if best is None or est < best[0]:
                        best = (est, device)
            if best is not None:
                _est, device = best
                decisions.append((task, device, None))
                idle.remove(device)
                self.steals += 1
                # The stolen task stays in its planned queue: the executor
                # may still reject this decision (e.g. the device was taken
                # by a replica fan-out this round), and eager removal would
                # orphan the task from every queue.  ``on_task_done``
                # removes it from wherever it lives once it completes, and
                # while RUNNING it is not in ``ready`` so head dispatch
                # cannot double-issue it.
        return decisions

    def on_task_done(self, executor, task_name: str, device: Device) -> None:
        """Pop the queue; re-plan when reality drifted from the plan."""
        queue = self._queues.get(device.uid)
        if queue and queue[0] == task_name:
            queue.pop(0)
        else:
            for q in self._queues.values():
                if task_name in q:
                    q.remove(task_name)
                    break
        planned = self._plan.assignments.get(task_name)
        if planned is None or self.replans >= self.max_replans:
            return
        actual = executor.records[task_name].finish
        scale = max(self._plan.makespan, 1e-9)
        if abs(actual - planned.finish) > self.drift_threshold * scale:
            self._replan(executor)

    def on_device_failure(self, executor, device: Device) -> None:
        """A dead device always forces a re-plan."""
        self._queues.pop(device.uid, None)
        self._pressure = None  # alive set changed; recompute on next use
        if self.replans < self.max_replans:
            self._replan(executor)

    # ------------------------------------------------------------------ #
    # frontier re-planning                                               #
    # ------------------------------------------------------------------ #

    def _replan(self, executor) -> None:
        """Re-score every unstarted task from the current true state."""
        self.replans += 1
        now = executor.now
        wf = executor.workflow
        ctx = self._context

        seeded = Schedule()
        unstarted: List[str] = []
        for name, rec in executor.records.items():
            if rec.state == "done":
                # rec.start is the task's *first* execution start, which
                # after a retry may lie on a different device; seed the
                # winning clone's own interval on the recorded device.
                if rec.winner_duration is not None:
                    started = rec.finish - rec.winner_duration
                else:
                    started = rec.start
                seeded.add(name, rec.device, min(started, rec.finish), rec.finish)
            elif rec.state == "running":
                # Seed the *current* attempt's interval: rec.start keeps
                # the task's first execution start, which after a retry
                # belongs to an earlier attempt (possibly on another
                # device).  A clone still staging inputs has no execution
                # start yet; treat `now` as its start.
                clones = executor._clones.get(name, {})
                clone = clones.get(rec.device)
                if clone is None and clones:
                    clone = next(iter(clones.values()))
                if clone is not None and clone.exec_start is not None:
                    started = clone.exec_start
                else:
                    started = now
                expected = self._expected_finish(executor, rec, started)
                seeded.add(name, rec.device, min(started, expected), expected)
                seeded.dvfs_choice.update(
                    {name: self._dvfs[name]} if name in self._dvfs else {}
                )
            elif rec.state == "dead":
                continue  # exhausted its retry budget; not plannable
            else:
                unstarted.append(name)

        # The past is not placeable: fill every device's idle time before
        # `now` with blocker intervals so gap-insertion cannot use it.
        for device in executor.cluster.devices:
            tl = seeded.timeline(device.uid)
            cursor = 0.0
            for s, e, _t in tl.intervals:
                gap_end = min(s, now)
                if gap_end > cursor + 1e-12:
                    tl.add(cursor, gap_end, "<blocked>")
                cursor = max(cursor, e)
            if now > cursor + 1e-12:
                tl.add(cursor, now, "<blocked>")

        # Ranks and topological indices only depend on the (immutable)
        # context, so every re-plan reuses the ones computed in prepare()
        # instead of re-ranking the whole DAG from scratch; the class
        # pressure is likewise reused until a device failure changes the
        # alive set it is derived from.
        ranks = self._ranks
        topo_index = self._topo_index
        unstarted.sort(key=lambda n: (-ranks[n], topo_index[n]))

        hdws = self.planner if isinstance(self.planner, HdwsScheduler) else HdwsScheduler()
        if self._pressure is None:
            self._pressure = (
                hdws._class_pressure(ctx) if hdws.use_scarcity else {}
            )
        contended = self._pressure
        if self._oct is None and hdws.use_lookahead:
            self._oct = hdws.lookahead_table(ctx)
        replica_node: Dict[str, Optional[str]] = {}
        for name, rec in executor.records.items():
            if rec.state == "done" and rec.device is not None:
                node = executor.cluster.device(rec.device).node.name
                for fname in wf.tasks[name].outputs:
                    replica_node[fname] = node

        alive = {d.uid for d in executor.cluster.alive_devices()}
        for name in unstarted:
            # EFT placement needs every predecessor's finish; a pred that
            # is dead (or was itself unplaceable) has no assignment, so
            # this task cannot be planned either.
            if any(
                pred not in seeded.assignments
                for pred in wf.predecessors(name)
            ):
                continue
            candidates = [
                cand
                for cand in hdws._candidates(
                    ctx, seeded, name, contended, replica_node, self._oct
                )
                if cand[0].uid in alive
            ]
            if not candidates:  # no alive eligible device remains
                continue
            device, start, finish = hdws._pick(candidates)
            seeded.add(name, device.uid, start, finish)
            node = executor.cluster.device(device.uid).node.name
            for fname in wf.tasks[name].outputs:
                replica_node[fname] = node

        # Keep the original DVFS choices for unstarted tasks if the planner
        # recorded any (HDWS itself does not).
        new_plan = seeded
        self._plan = new_plan
        self._rebuild_queues(new_plan, skip_done_running=executor)

    def _expected_finish(self, executor, rec, started: float) -> float:
        """Best guess at a running task's finish for seeding the re-plan."""
        est = self._context.exec_time(rec.name, rec.device)
        expected = started + est
        if expected <= executor.now:
            # Already overdue: assume it needs as much again as planned.
            expected = executor.now + est * 0.5
        return expected

    def _rebuild_queues(self, plan: Schedule, skip_done_running=None) -> None:
        self._queues = {}
        for uid in plan.timelines:
            tasks = [t for t in plan.tasks_on(uid) if t != "<blocked>"]
            if skip_done_running is not None:
                tasks = [
                    t for t in tasks
                    if skip_done_running.records[t].state
                    not in ("done", "running", "dead")
                ]
            if tasks:
                self._queues[uid] = tasks
