"""HDWS — Heterogeneous Discovery Workflow Scheduler (the contribution).

HDWS extends insertion-based list scheduling with four mechanisms, each
independently switchable for the ablation study (T4):

1. **Affinity-aware ranking** (``use_affinity_rank``) — upward ranks use
   each task's *best* execution time over eligible devices instead of the
   mean.  On wide-heterogeneity platforms the mean wildly overweights
   tasks that happen to be ineligible on accelerators, distorting
   priorities; best-time ranks order tasks by what they will actually
   cost.

2. **Scarcity tie-break** (``use_scarcity``) — accelerators are a
   contended minority.  Among placements whose finish times are near-tied,
   HDWS prefers the one that keeps contended device classes free for
   high-benefit work: the scarcity key of a candidate is the class's
   demand pressure divided by this task's accelerator benefit (best-CPU
   time over this-device time).  Crucially this is a *windowed* tie-break,
   not a hard filter: a clearly-faster accelerator placement is always
   taken — an early design that hard-filtered low-benefit tasks off
   contended accelerators backfired whenever the CPUs were the true
   bottleneck.

3. **Data-locality tie-break** (``use_locality``) — among placements whose
   finish times are within a tolerance of the best, choose the one that
   pulls the fewest remote bytes (planned replica map: producer's node,
   shared storage, destination).  Finish-neutral by construction, it cuts
   network traffic substantially (F6).

4. **Lookahead** (``use_lookahead``) — candidate scores add the
   optimistic-cost-table entry for the placement (the PEFT OCT, computed
   with per-device-class profiles), so HDWS avoids finishes that strand
   the remaining path below the task.

Runtime adaptivity (the fifth mechanism of the full system) lives in
:class:`repro.core.adaptive.AdaptivePolicy`, which re-plans the unstarted
frontier with this same algorithm when execution diverges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.platform.devices import Device, DeviceClass
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.schedule import Schedule


class HdwsScheduler(Scheduler):
    """The paper's heterogeneity-aware workflow scheduler."""

    name = "hdws"

    def __init__(
        self,
        use_affinity_rank: bool = True,
        use_scarcity: bool = True,
        use_locality: bool = True,
        use_lookahead: bool = True,
        locality_tolerance: float = 0.05,
        scarcity_benefit_threshold: float = 2.0,
    ) -> None:
        self.use_affinity_rank = use_affinity_rank
        self.use_scarcity = use_scarcity
        self.use_locality = use_locality
        self.use_lookahead = use_lookahead
        self.locality_tolerance = locality_tolerance
        self.scarcity_benefit_threshold = scarcity_benefit_threshold

    # ------------------------------------------------------------------ #

    def schedule(self, context: SchedulingContext) -> Schedule:
        """Rank, then place with the scarcity/locality/lookahead scoring."""
        wf = context.workflow
        ranks = context.upward_ranks(use_best=self.use_affinity_rank)
        topo_index = {n: i for i, n in enumerate(wf.topological_order())}
        order = sorted(wf.tasks, key=lambda n: (-ranks[n], topo_index[n]))

        contended = self._class_pressure(context) if self.use_scarcity else {}
        oct_table = self.lookahead_table(context)
        # Planned replica map: file -> node expected to hold it.
        replica_node: Dict[str, Optional[str]] = {}

        schedule = Schedule()
        for name in order:
            candidates = self._candidates(
                context, schedule, name, contended, replica_node, oct_table
            )
            device, start, finish = self._pick(candidates)
            schedule.add(name, device.uid, start, finish)
            node = device.node.name
            for fname in wf.tasks[name].outputs:
                replica_node[fname] = node
        return schedule

    # ------------------------------------------------------------------ #
    # mechanism 2: scarcity tie-break                                    #
    # ------------------------------------------------------------------ #

    def _class_pressure(
        self, context: SchedulingContext
    ) -> Dict[DeviceClass, float]:
        """Demand pressure per *non-CPU* device class, relative to average.

        Demand of class c: total best-device execution time of tasks whose
        best device is of class c.  Capacity: per-device mean busy seconds
        implied by that demand.  The returned value is the class's
        per-device load divided by the cluster-average per-device load;
        values above 1 mean the class is contended.  CPU is never listed —
        the tie-break only steers work *off* scarce accelerators.
        """
        demand: Dict[DeviceClass, float] = {}
        for name in context.workflow.tasks:
            best = context.best_device(name)
            demand[best.device_class] = (
                demand.get(best.device_class, 0.0)
                + context.exec_time(name, best.uid)
            )
        counts: Dict[DeviceClass, int] = {}
        for d in context.cluster.alive_devices():
            counts[d.device_class] = counts.get(d.device_class, 0) + 1
        n_devices = sum(counts.values())
        total_demand = sum(demand.values())
        if total_demand <= 0 or n_devices == 0:
            return {}
        avg_load = total_demand / n_devices
        pressure: Dict[DeviceClass, float] = {}
        for cls, dem in demand.items():
            if cls == DeviceClass.CPU or counts.get(cls, 0) == 0:
                continue
            load = dem / counts[cls]
            if load > avg_load * 1.001:
                pressure[cls] = load / avg_load
        return pressure

    def _benefit(self, context: SchedulingContext, name: str, device: Device) -> float:
        """Accelerator benefit: best CPU time over this device's time."""
        cpu_times = [
            context.exec_time(name, d.uid)
            for d in context.eligible_devices(name)
            if d.device_class == DeviceClass.CPU
        ]
        if not cpu_times:
            return float("inf")  # CPU-ineligible: accelerator is mandatory
        return min(cpu_times) / max(context.exec_time(name, device.uid), 1e-12)

    # ------------------------------------------------------------------ #
    # candidate generation and scoring                                   #
    # ------------------------------------------------------------------ #

    #: Above this communication/computation ratio the OCT lookahead is
    #: suppressed: the table prices communication with a placement-agnostic
    #: average, which collapses when communication dominates (measured:
    #: +25% makespan on CCR-10 random DAGs when trusted there).
    lookahead_ccr_limit: float = 1.0

    def lookahead_table(
        self, context: SchedulingContext
    ) -> Optional[Dict[str, Dict[str, float]]]:
        """The OCT used as the lookahead term (None when disabled).

        Disabled both by the ablation flag and — automatically — on
        communication-dominated workflows where the OCT's mean-comm
        approximation misleads more than it informs.
        """
        if not self.use_lookahead:
            return None
        if self._comm_dominance(context) > self.lookahead_ccr_limit:
            return None
        from repro.schedulers.peft import optimistic_cost_table

        return optimistic_cost_table(context)

    def _comm_dominance(self, context: SchedulingContext) -> float:
        """Mean edge transfer time over mean best execution time."""
        wf = context.workflow
        if wf.n_edges == 0 or context.avg_bandwidth == float("inf"):
            return 0.0
        mean_comm = (
            context.avg_latency
            + wf.total_edge_data_mb() / wf.n_edges / context.avg_bandwidth
        )
        mean_exec = sum(
            context.best_exec(n) for n in wf.tasks
        ) / max(wf.n_tasks, 1)
        if mean_exec <= 0:
            return float("inf")
        return mean_comm / mean_exec

    def _candidates(
        self,
        context: SchedulingContext,
        schedule: Schedule,
        name: str,
        contended: set,
        replica_node: Dict[str, Optional[str]],
        oct_table: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> List[Tuple]:
        from repro.schedulers.base import eft_scan

        out: List[Tuple] = []
        oct_row = oct_table[name] if oct_table is not None else None
        devices, starts, finishes = eft_scan(context, schedule, name)
        for device, start, finish in zip(devices, starts, finishes):
            oct_term = oct_row[device.uid] if oct_row is not None else 0.0
            remote_mb = self._remote_bytes(
                context, name, device, replica_node
            )
            scarcity_key = self._scarcity_key(context, name, device, contended)
            out.append(
                (device, start, finish, finish + oct_term, remote_mb,
                 scarcity_key)
            )
        return out

    def _scarcity_key(
        self,
        context: SchedulingContext,
        name: str,
        device: Device,
        pressure: Dict[DeviceClass, float],
    ) -> float:
        """Tie-break key: higher = worse use of a contended accelerator.

        0 for CPUs, uncontended classes, and tasks whose benefit clears the
        threshold; otherwise the class pressure divided by the task's
        benefit — so near-tied placements go to the candidate that wastes
        the least scarce capacity.
        """
        cls = device.device_class
        if cls == DeviceClass.CPU or cls not in pressure:
            return 0.0
        benefit = self._benefit(context, name, device)
        if benefit >= self.scarcity_benefit_threshold:
            return 0.0
        return pressure[cls] / max(benefit, 1e-9)

    def _pick(self, candidates: List[Tuple]) -> Tuple[Device, float, float]:
        """Windowed selection: EFT, then lookahead, then scarcity/locality.

        The earliest finish defines a tolerance window; the lookahead score
        (finish + OCT) narrows it further; the scarcity key and the
        remote-byte count break the remaining near-ties.  Every mechanism
        therefore only refines near-ties — HDWS can never finish a task
        more than the tolerance later than plain EFT would, which keeps it
        robust on workloads where the extra signals mislead.
        """
        tol = 1.0 + self.locality_tolerance
        best_finish = min(c[2] for c in candidates)
        window = [c for c in candidates if c[2] <= best_finish * tol + 1e-12]
        if self.use_lookahead:
            best_score = min(c[3] for c in window)
            window = [c for c in window if c[3] <= best_score * tol + 1e-12]

        def key(c):
            scarcity = c[5] if self.use_scarcity else 0.0
            remote = c[4] if self.use_locality else 0.0
            return (scarcity, remote, c[3], c[2], c[0].uid)

        window.sort(key=key)
        device, start, finish = window[0][0], window[0][1], window[0][2]
        return device, start, finish

    def _eft(
        self, context: SchedulingContext, schedule: Schedule, name: str,
        device: Device,
    ) -> Tuple[float, float]:
        """Insertion EFT including initial staging (same as the baselines)."""
        from repro.schedulers.base import eft_placement

        return eft_placement(context, schedule, name, device)

    def _remote_bytes(
        self,
        context: SchedulingContext,
        name: str,
        device: Device,
        replica_node: Dict[str, Optional[str]],
    ) -> float:
        """MB this placement would pull from off-node sources."""
        wf = context.workflow
        node = device.node.name
        total = 0.0
        for fname in wf.tasks[name].inputs:
            f = wf.files[fname]
            holder = replica_node.get(fname)
            if f.initial:
                holder = f.location  # node of birth, or None = storage
            if holder != node:
                total += f.size_mb
        return total


# Make HDWS and its ablation variants reachable through the registry.
def _register() -> None:
    from repro import schedulers as _s

    _s.REGISTRY.setdefault("hdws", HdwsScheduler)


_register()
