"""Event-driven workflow executor.

Runs a workflow on a simulated heterogeneous cluster under a pluggable
:class:`~repro.core.policies.ExecutionPolicy`.  The executor owns the
*mechanism* — dependency tracking, input staging through the replica
catalog and node stores, noisy execution sampling, fault handling with
retries/checkpoints/replication, output registration/archiving — while the
policy owns the *decisions* (which ready task goes to which free device, in
what DVFS state).

Execution of one task attempt proceeds through *clones*: the policy's
chosen device always runs one, and under a replication policy
(``RecoveryPolicy.replicate_tasks > 1``) up to k-1 additional idle eligible
devices run hot copies.  Each clone independently:

1. **stages** — every input is located via the catalog; remote replicas
   reserve contention-aware transfers (so schedulers that ignored locality
   pay here), are stored and catalog-registered only when the transfer
   *arrives*, and concurrent clones join in-flight transfers instead of
   paying twice; inputs are pinned in the node store for the duration;
2. **executes** — the runtime is sampled from the execution model (the
   policy planned with *estimates*; the sample is the noisy truth), then
   stretched by checkpoint overhead and DVFS; the fault injector may crash
   it partway through;
3. **finishes or dies** — the first clone to finish wins: outputs are
   registered locally (and archived under the archiving policy), sibling
   clones are preempted (their burnt busy time still counts toward
   energy), and successors may become ready.

An attempt whose every clone crashed loses work per the recovery policy
and the task re-enters the ready set (possibly for different devices)
until its retry budget is exhausted — at which point the run is marked
failed (the task appears in ``ExecutionResult.dead_tasks``) but keeps
draining so partial metrics stay meaningful.

With ``sanitize=True`` (or ``REPRO_SANITIZE=1`` in the environment) a
:class:`repro.sanitizer.Sanitizer` audits the run live through trace
hooks and raises on any violated accounting invariant.  With
``metrics=True`` (or ``REPRO_METRICS=1``) a
:class:`repro.observe.MetricsRegistry` observes the run through the same
hooks; its snapshot lands in ``ExecutionResult.metrics``.  Both are pure
observers — they never change a simulated outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.data.cache import EvictionError, NodeStore
from repro.data.catalog import ReplicaCatalog
from repro.data.staging import choose_source
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform.cluster import Cluster
from repro.platform.devices import Device
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder
from repro.workflows.graph import Workflow

#: Task lifecycle states.
PENDING = "pending"
READY = "ready"
RUNNING = "running"
DONE = "done"
DEAD = "dead"  # retry budget exhausted


def _env_sanitize() -> bool:
    """Whether REPRO_SANITIZE asks for always-on invariant checking."""
    import os

    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


@dataclass
class TaskRecord:
    """Execution history of one task.

    ``start`` is the *earliest* execution start across every clone and
    attempt (retries and hot replicas never overwrite it), ``finish`` the
    winning clone's completion time, and ``winner_duration`` the winning
    clone's own execution time — so ``finish - start`` includes staging
    waits and retry churn while ``winner_duration`` is pure compute.
    """

    name: str
    _state: str = PENDING
    attempts: int = 0
    device: Optional[str] = None
    start: Optional[float] = None
    finish: Optional[float] = None
    #: Execution seconds of the clone that completed the task.
    winner_duration: Optional[float] = None
    #: Fraction of the task's work already secured by checkpoints.
    progress_fraction: float = 0.0
    faults: int = 0
    #: Clones launched across all attempts (== attempts without replication).
    clones_launched: int = 0

    # Audit hook (class attribute, not a dataclass field): the sanitizer
    # installs a per-instance callback to observe state transitions.
    _observer = None

    @property
    def state(self) -> str:
        """Lifecycle state; assignments notify the sanitizer's observer.

        A property rather than a ``__setattr__`` hook so that writes to
        every *other* field skip the interception cost — records are
        updated on each clone transition, which made the hook hot.
        """
        return self._state

    @state.setter
    def state(self, value: str) -> None:
        observer = self._observer
        if observer is not None:
            observer(self, self._state, value)
        self._state = value


@dataclass
class _Clone:
    """Book-keeping for one in-flight copy of a task."""

    device: Device
    node: str
    dvfs_name: Optional[str]
    pins: List[str] = field(default_factory=list)
    event: Optional[object] = None  # pending EventHandle
    exec_start: Optional[float] = None


@dataclass
class ExecutionResult:
    """Outcome of one executed run."""

    success: bool
    makespan: float
    records: Dict[str, TaskRecord]
    trace: TraceRecorder
    task_faults: int = 0
    device_faults: int = 0
    retries: int = 0
    regenerations: int = 0
    preemptions: int = 0
    network_mb: float = 0.0
    staging_mb: float = 0.0
    evictions: int = 0
    #: Tasks whose retry budget was exhausted (sorted); non-empty implies
    #: ``success`` is False.
    dead_tasks: List[str] = field(default_factory=list)
    #: Simulation events fired over the run (deterministic).
    events: int = 0
    #: Metrics snapshot (:meth:`repro.observe.MetricsRegistry.snapshot`)
    #: when the run was instrumented; None otherwise.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def completed_tasks(self) -> int:
        """Number of tasks that reached DONE."""
        return sum(1 for r in self.records.values() if r.state == DONE)

    def record(self, task: str) -> TaskRecord:
        """The record for a task name."""
        return self.records[task]


class WorkflowExecutor:
    """Discrete-event execution of one workflow on one cluster."""

    def __init__(
        self,
        workflow: Workflow,
        cluster: Cluster,
        policy: "object",
        seed: int = 0,
        recovery: Optional[RecoveryPolicy] = None,
        fault_model: Optional[FaultModel] = None,
        failure_horizon: Optional[float] = None,
        trace: Optional[TraceRecorder] = None,
        release_times: Optional[Dict[str, float]] = None,
        sanitize: Optional[bool] = None,
        metrics: Union[None, bool, "object"] = None,
    ) -> None:
        self.workflow = workflow
        self.cluster = cluster
        self.policy = policy
        self.release_times: Dict[str, float] = dict(release_times or {})
        self.recovery = recovery or RecoveryPolicy()
        self.fault_model = fault_model or FaultModel()
        self.failure_horizon = failure_horizon
        self.trace = trace if trace is not None else TraceRecorder()

        self.sim = Simulator()
        self.rng = RngStreams(seed)
        self.injector = FaultInjector(self.fault_model, self.rng)

        self.catalog = ReplicaCatalog()
        self.stores: Dict[str, NodeStore] = {
            n.name: NodeStore(n.name, n.spec.disk_capacity_gb * 1024.0)
            for n in cluster.nodes
        }

        self.records: Dict[str, TaskRecord] = {
            name: TaskRecord(name) for name in workflow.tasks
        }
        self.unfinished_preds: Dict[str, Set[str]] = {
            name: set(workflow.predecessors(name)) for name in workflow.tasks
        }
        self.ready: Set[str] = set()
        self.busy_devices: Set[str] = set()
        self._running_on: Dict[str, str] = {}  # device uid -> task
        self._clones: Dict[str, Dict[str, _Clone]] = {}  # task -> uid -> clone
        #: In-flight replica pulls: (node, file) -> arrival time.  Clones
        #: needing a file already on the wire join the pending transfer
        #: instead of paying for (and double-counting) a second one.
        self._inflight: Dict[Tuple[str, str], float] = {}
        self._run_failed = False
        self._retries = 0
        self._regenerations = 0
        self._task_faults = 0
        self._device_faults = 0
        self._preemptions = 0

        if sanitize is None:
            sanitize = _env_sanitize()
        self.sanitizer = None
        if sanitize:
            from repro.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(self)
            self.sanitizer.attach()

        # Metrics: None defers to REPRO_METRICS; True builds a fresh
        # registry; a MetricsRegistry instance is used as-is (the
        # orchestrator passes one so planning wall-time lands in the same
        # snapshot).  Disabled runs carry self.metrics = None, so the hot
        # path pays a single attribute test.
        if metrics is None:
            from repro.observe import env_metrics

            metrics = env_metrics()
        self.metrics = None
        self._collector = None
        if metrics is not False:
            from repro.observe import MetricsCollector, MetricsRegistry

            self.metrics = (
                MetricsRegistry() if metrics is True else metrics
            )
            self._collector = MetricsCollector(self.metrics)
            self._collector.attach(self)

    # ------------------------------------------------------------------ #
    # public API                                                         #
    # ------------------------------------------------------------------ #

    def run(self, max_time: Optional[float] = None) -> ExecutionResult:
        """Execute the workflow to completion (or failure/timeout)."""
        for f in self.workflow.initial_files():
            if f.location is not None:
                # Born on a node: resolve it (fail loudly on bad names) and
                # seed both the catalog and the node store.
                node = self.cluster.node(f.location).name
                self.catalog.register(f.name, node)
                self.stores[node].put(f.name, f.size_mb)
            else:
                self.catalog.register(f.name, ReplicaCatalog.STORAGE)
        for name, preds in self.unfinished_preds.items():
            if not preds:
                self._maybe_ready(name)

        if self.fault_model.device_mtbf is not None:
            horizon = self.failure_horizon or 1e7
            alive = [d.uid for d in self.cluster.alive_devices()]
            for fault in self.injector.plan_device_failures(
                alive, horizon, max_failures=max(0, len(alive) - 1)
            ):
                self.sim.schedule_at(
                    fault.time, self._on_device_failure, fault, priority=-1
                )

        if hasattr(self.policy, "prepare"):
            self.policy.prepare(self)
        self._dispatch()
        self.sim.run(until=max_time)

        done = [r for r in self.records.values() if r.state == DONE]
        makespan = max((r.finish for r in done), default=0.0)
        dead = sorted(
            name for name, r in self.records.items() if r.state == DEAD
        )
        success = not dead and len(done) == len(self.records)
        result = ExecutionResult(
            success=success,
            makespan=makespan,
            records=self.records,
            trace=self.trace,
            task_faults=self._task_faults,
            device_faults=self._device_faults,
            retries=self._retries,
            regenerations=self._regenerations,
            preemptions=self._preemptions,
            network_mb=self.cluster.interconnect.total_traffic_mb(),
            staging_mb=self.cluster.storage_bytes_served_mb,
            evictions=sum(s.evictions for s in self.stores.values()),
            dead_tasks=dead,
            events=self.sim.events_fired,
        )
        if self.sanitizer is not None:
            self.sanitizer.finalize(result)
        if self._collector is not None:
            self._collector.finalize(result)
            result.metrics = self.metrics.snapshot()
        return result

    # ------------------------------------------------------------------ #
    # state helpers the policies consult                                 #
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    def free_devices(self) -> List[Device]:
        """Alive devices with no task assigned right now."""
        return [
            d for d in self.cluster.alive_devices()
            if d.uid not in self.busy_devices
        ]

    def ready_tasks(self) -> List[str]:
        """Currently ready task names, sorted for determinism."""
        return sorted(self.ready)

    def eligible(self, task_name: str, device: Device) -> bool:
        """Whether the task may run on the device right now."""
        task = self.workflow.tasks[task_name]
        return (
            not device.failed
            and self.cluster.execution_model.eligible(task, device.spec)
            and device.spec.memory_gb >= task.memory_gb
        )

    # ------------------------------------------------------------------ #
    # dispatch                                                           #
    # ------------------------------------------------------------------ #

    def _mark_ready(self, name: str) -> None:
        rec = self.records[name]
        if rec.state in (RUNNING, DONE, DEAD):
            return
        if self._device_faults and self._stranded(name):
            self._mark_dead(name, cause="stranded")
            return
        rec.state = READY
        self.ready.add(name)

    def _stranded(self, name: str) -> bool:
        """Whether no alive device can ever run the task."""
        return not any(
            self.eligible(name, d) for d in self.cluster.alive_devices()
        )

    def _mark_dead(self, name: str, cause: str) -> None:
        """Surface a task that can never complete; the run has failed."""
        self.ready.discard(name)
        self.records[name].state = DEAD
        self._run_failed = True
        self.trace.record(self.now, "task.dead", task=name, cause=cause)

    def _maybe_ready(self, name: str) -> None:
        """Mark ready now, or at the task's release time (online arrivals)."""
        release = self.release_times.get(name, 0.0)
        if release > self.now:
            self.sim.schedule_at(release, self._on_release, name, priority=0)
        else:
            self._mark_ready(name)

    def _on_release(self, name: str) -> None:
        if not self.unfinished_preds[name] and self.records[name].state == PENDING:
            self._mark_ready(name)
            self._dispatch()

    def _dispatch(self) -> None:
        """Ask the policy for assignments until it has none to give.

        Re-selects after every productive round: beginning a task can make
        *new* work ready in the same instant (a missing input sends the
        task to PENDING and marks its regenerated producer READY), and
        that work must get a dispatch opportunity now — the event queue
        may hold nothing else to trigger one later.
        """
        while self.ready:
            decisions = self.policy.select(self)
            progress = False
            for decision in decisions:
                task_name, device = decision[0], decision[1]
                dvfs = decision[2] if len(decision) > 2 else None
                if task_name not in self.ready:
                    continue
                if device.uid in self.busy_devices or device.failed:
                    continue
                self._begin_task(task_name, device, dvfs)
                progress = True
            if not progress:
                return

    def _begin_task(self, name: str, device: Device, dvfs_name: Optional[str]) -> None:
        # Missing inputs (lost to a node failure) force regeneration of the
        # producers; the task returns to PENDING until they finish again.
        missing = [
            fname for fname in self.workflow.tasks[name].inputs
            if not self.catalog.exists(fname)
        ]
        if missing:
            self.ready.discard(name)
            self.records[name].state = PENDING
            for fname in missing:
                self._regenerate_producer(fname, waiting_consumer=name)
            return

        self.ready.discard(name)
        rec = self.records[name]
        rec.state = RUNNING
        rec.attempts += 1
        rec.device = device.uid
        # rec.start is deliberately NOT reset: it keeps the true first
        # execution start across retries and replication.

        devices = [device]
        for extra in self._replica_devices(name, exclude=device):
            devices.append(extra)
        self._clones[name] = {}
        for d in devices:
            self._launch_clone(name, d, dvfs_name)

    def _replica_devices(self, name: str, exclude: Device) -> List[Device]:
        """Extra idle devices for hot replication (may be empty)."""
        want = self.recovery.replicate_tasks - 1
        if want <= 0:
            return []
        idle = [
            d for d in self.free_devices()
            if d.uid != exclude.uid and self.eligible(name, d)
        ]
        task = self.workflow.tasks[name]
        model = self.cluster.execution_model
        idle.sort(key=lambda d: (model.estimate(task, d.spec), d.uid))
        return idle[:want]

    # ------------------------------------------------------------------ #
    # clone lifecycle                                                    #
    # ------------------------------------------------------------------ #

    def _launch_clone(self, name: str, device: Device, dvfs_name: Optional[str]) -> None:
        node = device.node.name
        self.busy_devices.add(device.uid)
        self._running_on[device.uid] = name
        clone = _Clone(device=device, node=node, dvfs_name=dvfs_name)
        self._clones[name][device.uid] = clone
        self.records[name].clones_launched += 1

        arrival = self.now
        task = self.workflow.tasks[name]
        files = self.workflow.files
        store = self.stores[node]
        for fname in task.inputs:
            f = files[fname]
            decision = choose_source(
                self.catalog, self.cluster, fname, f.size_mb, node
            )
            if decision.is_local:
                store.touch(fname)
                if store.has(fname):
                    store.pin(fname)
                    clone.pins.append(fname)
                continue
            # Remote replica: the file only becomes local when the transfer
            # *arrives* — registration and storage happen then, never at
            # reservation time (a sibling clone launched in between must
            # not see the file as already present).  A transfer already on
            # the wire for this (node, file) is joined, not duplicated.
            end = self._inflight.get((node, fname))
            if end is None:
                if decision.source == ReplicaCatalog.STORAGE:
                    _s, end = self.cluster.reserve_staging(
                        node, self.now, f.size_mb
                    )
                else:
                    _s, end = self.cluster.reserve_transfer(
                        decision.source, node, self.now, f.size_mb
                    )
                self._inflight[(node, fname)] = end
                self.trace.record(
                    self.now, "transfer.start", file=fname,
                    src=decision.source, dst=node, size_mb=f.size_mb,
                    arrives=end,
                )
            arrival = max(arrival, end)
            self.sim.schedule_at(
                end, self._on_transfer_arrival, name, device.uid, node,
                fname, f.size_mb, priority=0,
            )

        self.trace.record(
            self.now, "task.stage", task=name, device=device.uid,
            until=arrival,
        )
        clone.event = self.sim.schedule_at(
            arrival, self._start_clone, name, device.uid, priority=1
        )

    def _on_transfer_arrival(
        self, name: str, device_uid: str, node: str, fname: str, size_mb: float
    ) -> None:
        """A reserved transfer delivered its bytes to the node.

        The file lands regardless of whether the requesting clone is still
        alive — the transfer was already paid for.  The clone (if alive)
        pins its input now that it is resident.
        """
        self._inflight.pop((node, fname), None)
        self._store_file(node, fname, size_mb)
        clone = self._clones.get(name, {}).get(device_uid)
        if (
            clone is not None
            and fname not in clone.pins
            and self.stores[node].has(fname)
        ):
            self.stores[node].pin(fname)
            clone.pins.append(fname)

    def _store_file(self, node: str, fname: str, size_mb: float) -> None:
        """Insert a replica into a node store, maintaining the catalog."""
        try:
            evicted = self.stores[node].put(fname, size_mb)
        except EvictionError:
            # The store cannot hold the file even after eviction; fall back
            # to streaming without caching (no catalog registration).
            self.trace.record(self.now, "store.overflow", node=node, file=fname)
            return
        for victim in evicted:
            self.catalog.unregister(victim, node)
            self.trace.record(self.now, "store.evict", node=node, file=victim)
        self.catalog.register(fname, node)

    def _start_clone(self, name: str, device_uid: str) -> None:
        clone = self._clones.get(name, {}).get(device_uid)
        if clone is None:  # pragma: no cover - cancelled before start
            return
        device = clone.device
        rec = self.records[name]
        if device.failed:
            # The device died between staging and start.
            self._clone_failed(name, device_uid, progress=0.0, cause="device")
            return
        task = self.workflow.tasks[name]
        model = self.cluster.execution_model
        dvfs = (
            device.spec.power.state(clone.dvfs_name)
            if clone.dvfs_name else None
        )
        full = model.sample(task, device.spec, self.rng.stream("exec-noise"), dvfs)
        remaining = full * (1.0 - rec.progress_fraction)
        duration = self.recovery.effective_duration(remaining)

        clone.exec_start = self.now
        if rec.start is None or self.now < rec.start:
            rec.start = self.now
        self.trace.record(
            self.now, "task.start", task=name, device=device.uid,
            attempt=rec.attempts, duration=duration,
        )

        crash_at = self.injector.task_failure_at(duration)
        if crash_at is not None:
            clone.event = self.sim.schedule(
                crash_at, self._on_clone_crash, name, device_uid, duration,
                crash_at, priority=0,
            )
        else:
            clone.event = self.sim.schedule(
                duration, self._on_clone_finish, name, device_uid, duration,
                priority=2,
            )

    def _clone_energy(self, clone: _Clone, busy_seconds: float) -> float:
        """Joules this clone burnt while executing."""
        device = clone.device
        dvfs = (
            device.spec.power.state(clone.dvfs_name)
            if clone.dvfs_name else None
        )
        return device.spec.power.busy_power(dvfs) * busy_seconds

    def _on_clone_finish(self, name: str, device_uid: str, duration: float) -> None:
        clone = self._clones.get(name, {}).get(device_uid)
        if clone is None:  # pragma: no cover - stale event
            return
        rec = self.records[name]
        device = clone.device

        rec.state = DONE
        rec.finish = self.now
        rec.device = device_uid
        # Keep rec.start as the earliest exec start (set in _start_clone);
        # the winner's own execution time is recorded separately.
        rec.winner_duration = duration
        rec.progress_fraction = 1.0
        # Account the true busy interval from the clone's recorded start:
        # reconstructing it as now - duration reintroduces float error that
        # can overlap the previous task's interval on this device.
        busy_from = (
            clone.exec_start if clone.exec_start is not None
            else self.now - duration
        )
        device.occupy(device.earliest_slot()[0], busy_from, self.now)
        self.trace.record(
            self.now, "task.finish", task=name, device=device.uid,
            duration=duration, energy_j=self._clone_energy(clone, duration),
            category=self.workflow.tasks[name].category,
        )
        self._release_clone(name, device_uid)

        # Preempt every sibling clone: the work is done.
        for sibling_uid in list(self._clones.get(name, {})):
            self._preempt_clone(name, sibling_uid)
        self._clones.pop(name, None)

        node = device.node.name
        for fname in self.workflow.tasks[name].outputs:
            f = self.workflow.files[fname]
            self._store_file(node, fname, f.size_mb)
            if self.recovery.archive_outputs:
                self.catalog.register(fname, ReplicaCatalog.STORAGE)
                self.trace.record(
                    self.now, "archive", file=fname, size_mb=f.size_mb
                )

        for child in self.workflow.successors(name):
            waiting = self.unfinished_preds[child]
            waiting.discard(name)
            if not waiting and self.records[child].state == PENDING:
                self._maybe_ready(child)
        if hasattr(self.policy, "on_task_done"):
            self.policy.on_task_done(self, name, device)
        self._dispatch()

    def _on_clone_crash(
        self, name: str, device_uid: str, duration: float, crash_at: float
    ) -> None:
        clone = self._clones.get(name, {}).get(device_uid)
        if clone is None:  # pragma: no cover - stale event
            return
        self._task_faults += 1
        self.records[name].faults += 1
        self.trace.record(
            self.now, "fault.task", task=name, device=device_uid,
            at_offset=crash_at,
            energy_j=self._clone_energy(clone, crash_at),
        )
        # Secure checkpointed progress: of the crash offset, only the part
        # up to the last checkpoint boundary survives.
        rec = self.records[name]
        if self.recovery.checkpointing and duration > 0:
            kept_seconds = crash_at - self.recovery.lost_work(crash_at)
            gained = (kept_seconds / duration) * (1.0 - rec.progress_fraction)
            rec.progress_fraction = min(1.0, rec.progress_fraction + gained)
        busy_from = (
            clone.exec_start if clone.exec_start is not None
            else self.now - crash_at
        )
        clone.device.occupy(
            clone.device.earliest_slot()[0], busy_from, self.now
        )
        self._clone_failed(name, device_uid, progress=crash_at, cause="fault")

    def _clone_failed(
        self, name: str, device_uid: str, progress: float, cause: str
    ) -> None:
        """Remove a dead clone; exhaust the attempt when none remain."""
        self._release_clone(name, device_uid)
        remaining = self._clones.get(name, {})
        if remaining:
            return  # siblings are still racing; the attempt survives
        self._clones.pop(name, None)
        rec = self.records[name]
        if rec.attempts > self.recovery.max_retries:
            self._mark_dead(name, cause="retries")
        elif self._device_faults and self._stranded(name):
            # Retries remain, but no alive device can run the task.
            self._mark_dead(name, cause="stranded")
        else:
            self._retries += 1
            rec.state = READY
            rec.device = None
            self.ready.add(name)
        self._dispatch()

    def _preempt_clone(self, name: str, device_uid: str) -> None:
        """Stop a losing clone; its burnt time still costs energy."""
        clone = self._clones.get(name, {}).get(device_uid)
        if clone is None:
            return
        if clone.event is not None:
            clone.event.cancel()
        if clone.exec_start is not None and self.now > clone.exec_start:
            burnt = self.now - clone.exec_start
            clone.device.occupy(
                clone.device.earliest_slot()[0], clone.exec_start, self.now
            )
            self.trace.record(
                self.now, "task.preempt", task=name, device=device_uid,
                duration=burnt, energy_j=self._clone_energy(clone, burnt),
            )
        self._preemptions += 1
        self._release_clone(name, device_uid)

    def _release_clone(self, name: str, device_uid: str) -> None:
        """Unpin, free the device and drop the clone entry."""
        clone = self._clones.get(name, {}).pop(device_uid, None)
        if clone is None:
            return
        if clone.event is not None:
            clone.event.cancel()
        for fname in clone.pins:
            if self.stores[clone.node].has(fname):
                self.stores[clone.node].unpin(fname)
        self.busy_devices.discard(device_uid)
        if self._running_on.get(device_uid) == name:
            self._running_on.pop(device_uid, None)

    # ------------------------------------------------------------------ #
    # failures & regeneration                                            #
    # ------------------------------------------------------------------ #

    def _on_device_failure(self, fault) -> None:
        try:
            device = self.cluster.device(fault.device_uid)
        except KeyError:  # pragma: no cover - defensive
            return
        if device.failed:
            return
        alive = [d for d in self.cluster.alive_devices() if d.uid != device.uid]
        if not alive:
            return  # never kill the last device
        device.failed = True
        self._device_faults += 1
        self.trace.record(self.now, "fault.device", device=device.uid)

        running = self._running_on.get(device.uid)
        if running is not None:
            clone = self._clones.get(running, {}).get(device.uid)
            progress = 0.0
            if clone is not None and clone.exec_start is not None:
                progress = self.now - clone.exec_start
                if progress > 0:
                    device.occupy(
                        device.earliest_slot()[0], clone.exec_start, self.now
                    )
            self.records[running].faults += 1
            self._task_faults += 1
            self.trace.record(
                self.now, "fault.task", task=running, device=device.uid,
                at_offset=progress, cause="device",
                energy_j=(
                    self._clone_energy(clone, progress) if clone else 0.0
                ),
            )
            self._clone_failed(running, device.uid, progress, cause="device")

        if fault.loses_local_data:
            node = device.node.name
            others_alive = any(
                not d.failed for d in device.node.devices if d.uid != device.uid
            )
            if not others_alive:
                for fname in self.stores[node].files():
                    if self.stores[node].is_pinned(fname):
                        continue
                    self.stores[node].remove(fname)
                    self.catalog.unregister(fname, node)
                    self.trace.record(
                        self.now, "data.lost", node=node, file=fname
                    )
        # Ready tasks stranded by this failure (no alive eligible device
        # left) can never run; surface the dead run instead of leaving
        # them READY forever.
        for name in sorted(self.ready):
            if self._stranded(name):
                self._mark_dead(name, cause="stranded")

        if hasattr(self.policy, "on_device_failure"):
            self.policy.on_device_failure(self, device)
        self._dispatch()

    def _regenerate_producer(self, fname: str, waiting_consumer: str) -> None:
        """Re-run the producer of a lost file; re-arm the dependency."""
        producer = self.workflow.producer_of(fname)
        if producer is None:
            # An initial file can never be lost (storage is durable), so
            # this indicates a logic error upstream.
            raise LookupError(f"initial file {fname!r} reported missing")
        self.unfinished_preds[waiting_consumer].add(producer)
        prec = self.records[producer]
        if prec.state == DONE:
            self._regenerations += 1
            prec.state = PENDING
            prec.progress_fraction = 0.0
            prec.finish = None
            self.trace.record(self.sim.now, "task.regenerate", task=producer)
            # Rebuild the producer's own dependency view lazily: preds are
            # DONE unless their outputs are also gone, which _begin_task
            # will discover when the producer is dispatched.
            self.unfinished_preds[producer] = set()
            self._mark_ready(producer)
        # If the producer is PENDING/READY/RUNNING it will complete anyway.
