"""Execution policies: who decides what runs where at runtime.

The executor (mechanism) consults a policy (decision maker) whenever state
changes.  Three families:

* :class:`StaticPolicy` — follow a precomputed :class:`Schedule` in plan
  order, with optional *repair* when devices die (queued tasks of a dead
  device are redistributed).  Plan-order dispatch is deadlock-free even
  under runtime noise: per-device plan order is consistent with a global
  schedule, so any circular wait would contradict the plan's own
  start/finish ordering.
* :class:`DynamicMctPolicy` — ignore any plan; map ready tasks to free
  devices just-in-time by greedy minimum completion time (optionally
  locality-aware: the staging cost of inputs, looked up in the live
  replica catalog, joins the estimate).
* :class:`~repro.core.adaptive.AdaptivePolicy` — start from a plan, but
  monitor progress and reschedule the not-yet-started frontier when
  reality diverges (stragglers, faults).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.data.staging import choose_source
from repro.platform.devices import Device
from repro.schedulers.base import SchedulingContext
from repro.schedulers.schedule import Schedule

#: A dispatch decision: (task name, device, optional DVFS state name).
Decision = Tuple[str, Device, Optional[str]]


class ExecutionPolicy(abc.ABC):
    """Interface the executor consults for dispatch decisions."""

    def prepare(self, executor) -> None:
        """One-time hook before execution starts."""

    @abc.abstractmethod
    def select(self, executor) -> List[Decision]:
        """Dispatch decisions for the current (ready tasks, free devices)."""

    def on_task_done(self, executor, task_name: str, device: Device) -> None:
        """Hook fired after every task completion."""

    def on_device_failure(self, executor, device: Device) -> None:
        """Hook fired after a permanent device failure."""


class StaticPolicy(ExecutionPolicy):
    """Execute a precomputed schedule in plan order (with repair)."""

    def __init__(self, schedule: Schedule, repair: bool = True) -> None:
        self.schedule = schedule
        self.repair = repair
        self._queues: Dict[str, List[str]] = {}
        self._dvfs = dict(schedule.dvfs_choice)
        self._uids: List[str] = []
        self._queued: set = set()

    def prepare(self, executor) -> None:
        """Build per-device FIFO queues from the planned timelines."""
        self._queues = {
            uid: self.schedule.tasks_on(uid)
            for uid in self.schedule.timelines
        }
        # Select runs on every state change; the device order and the
        # queued-task membership are maintained incrementally instead of
        # being rebuilt per call.
        self._uids = sorted(self._queues)
        self._queued = {t for q in self._queues.values() for t in q}

    def select(self, executor) -> List[Decision]:
        """Dispatch every device whose queue head is ready."""
        self._requeue_orphans(executor)
        decisions: List[Decision] = []
        for uid in self._uids:
            queue = self._queues[uid]
            if not queue:
                continue
            try:
                device = executor.cluster.device(uid)
            except KeyError:  # pragma: no cover - defensive
                continue
            if device.failed or uid in executor.busy_devices:
                continue
            head = queue[0]
            if head in executor.ready:
                decisions.append((head, device, self._dvfs.get(head)))
        return decisions

    def _requeue_orphans(self, executor) -> None:
        """Put ready-but-unqueued tasks back into a plan queue.

        A regenerated producer (its output was lost to a node failure) was
        popped from its queue when it first completed; without requeueing
        it would never dispatch again and the run would stall.  It goes to
        the head of its planned device's queue — its planned start lies in
        the past and a consumer is already waiting on it.
        """
        if executor.ready <= self._queued:
            return
        for name in executor.ready_tasks():
            if name in self._queued:
                continue
            planned = self.schedule.assignments.get(name)
            uid = planned.device if planned is not None else None
            queue = None
            if uid is not None and uid in self._queues:
                try:
                    if not executor.cluster.device(uid).failed:
                        queue = self._queues[uid]
                except KeyError:  # pragma: no cover - defensive
                    queue = None
            if queue is None:
                candidates = [
                    d for d in executor.cluster.alive_devices()
                    if executor.eligible(name, d)
                ]
                if not candidates:
                    continue
                target = min(candidates, key=lambda d: d.uid)
                if target.uid not in self._queues:
                    self._queues[target.uid] = []
                    self._uids = sorted(self._queues)
                queue = self._queues[target.uid]
            queue.insert(0, name)
            self._queued.add(name)

    def on_task_done(self, executor, task_name: str, device: Device) -> None:
        """Pop the completed task from its queue."""
        self._queued.discard(task_name)
        queue = self._queues.get(device.uid)
        if queue and queue[0] == task_name:
            queue.pop(0)
        else:  # repaired tasks may complete on a different device
            for q in self._queues.values():
                if task_name in q:
                    q.remove(task_name)
                    break

    def on_device_failure(self, executor, device: Device) -> None:
        """Redistribute the dead device's remaining queue (if repairing)."""
        dead_queue = self._queues.pop(device.uid, [])
        self._uids = sorted(self._queues)
        self._queued.difference_update(dead_queue)
        if not dead_queue:
            return
        if not self.repair:
            # Tasks stay unqueued and will never dispatch; the run fails
            # visibly rather than silently rerouting.
            return
        load: Dict[str, float] = {
            uid: sum(
                self.schedule.assignments[t].duration
                for t in q if t in self.schedule.assignments
            )
            for uid, q in self._queues.items()
        }
        for task_name in dead_queue:
            candidates = [
                d for d in executor.cluster.alive_devices()
                if executor.eligible(task_name, d) and d.uid in self._queues
            ]
            if not candidates:
                candidates = [
                    d for d in executor.cluster.alive_devices()
                    if executor.eligible(task_name, d)
                ]
                for d in candidates:
                    self._queues.setdefault(d.uid, [])
                    load.setdefault(d.uid, 0.0)
            if not candidates:
                continue  # task is DEAD-ended; executor will report failure
            target = min(candidates, key=lambda d: (load.get(d.uid, 0.0), d.uid))
            self._queues.setdefault(target.uid, []).append(task_name)
            self._queued.add(task_name)
            planned = self.schedule.assignments.get(task_name)
            load[target.uid] = load.get(target.uid, 0.0) + (
                planned.duration if planned else 0.0
            )
        # Re-sort every queue by planned start time.  Appending to tails
        # can put a task behind its own descendant in one queue, and the
        # head-of-line dispatch would then deadlock; planned starts are a
        # valid topological order (plan: start(child) >= finish(parent)).
        def planned_start(task_name: str) -> float:
            a = self.schedule.assignments.get(task_name)
            return a.start if a is not None else float("inf")

        for uid in self._queues:
            self._queues[uid].sort(key=lambda t: (planned_start(t), t))
        self._uids = sorted(self._queues)


class DynamicMctPolicy(ExecutionPolicy):
    """Just-in-time greedy minimum-completion-time mapping.

    Ready tasks are considered in decreasing upward rank (so the critical
    path keeps priority); each is matched to the free eligible device
    minimizing estimated completion, optionally including live staging
    costs from the replica catalog.
    """

    def __init__(
        self,
        locality_aware: bool = False,
        ranked: bool = True,
        estimate_error_cv: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.locality_aware = locality_aware
        self.ranked = ranked
        self.estimate_error_cv = estimate_error_cv
        self.seed = seed
        self._context: Optional[SchedulingContext] = None
        self._ranks: Dict[str, float] = {}

    def prepare(self, executor) -> None:
        """Precompute estimates and task priorities."""
        import numpy as np

        self._context = SchedulingContext(
            executor.workflow,
            executor.cluster,
            estimate_error_cv=self.estimate_error_cv,
            rng=np.random.default_rng(self.seed + 7919),
            release_times=executor.release_times,
        )
        if self.ranked:
            self._ranks = self._context.upward_ranks()
        else:
            self._ranks = {n: 0.0 for n in executor.workflow.tasks}

    def select(self, executor) -> List[Decision]:
        """Greedy match of ready tasks to free devices."""
        free = {d.uid: d for d in executor.free_devices()}
        if not free:
            return []
        decisions: List[Decision] = []
        order = sorted(
            executor.ready_tasks(), key=lambda n: (-self._ranks[n], n)
        )
        for name in order:
            if not free:
                break
            best = None
            for uid, device in sorted(free.items()):
                if not executor.eligible(name, device):
                    continue
                cost = self._context.exec_time(name, uid)
                if self.locality_aware:
                    cost += self._staging_cost(executor, name, device)
                if best is None or cost < best[0] - 1e-15:
                    best = (cost, uid, device)
            if best is not None:
                _cost, uid, device = best
                decisions.append((name, device, None))
                del free[uid]
        return decisions

    def _staging_cost(self, executor, name: str, device: Device) -> float:
        """Estimated cost of pulling the task's inputs to the device."""
        node = device.node.name
        total = 0.0
        for fname in executor.workflow.tasks[name].inputs:
            f = executor.workflow.files[fname]
            try:
                total += choose_source(
                    executor.catalog, executor.cluster, fname, f.size_mb, node
                ).cost
            except LookupError:
                # Not produced yet/lost; regeneration is the executor's job.
                continue
        return total
