"""Ensemble execution: many workflows, one platform.

Three sharing disciplines, matching how production workflow managers run
campaign ensembles:

* ``sequential`` — members run one after another in submission order
  (dedicated platform per member; the latency baseline).
* ``priority`` — sequential, but ordered by descending member priority
  (urgent analyses first).
* ``shared`` — all members are merged into one namespaced super-DAG and
  space-share the platform under a single scheduler (the throughput
  discipline; see :mod:`repro.workflows.ensemble`).

The result records per-member finish times and slowdowns relative to a
solo run of that member on the empty platform, plus ensemble-level
makespan and energy — the numbers an operator trades off when choosing a
discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.orchestrator import Orchestrator, RunConfig
from repro.platform.cluster import Cluster
from repro.workflows.ensemble import member_tasks, merge_workflows
from repro.workflows.graph import Workflow

DISCIPLINES = ("sequential", "priority", "shared", "online")


@dataclass(frozen=True)
class EnsembleMember:
    """One workflow in an ensemble.

    ``arrival`` is the member's submission time (virtual seconds); only
    the ``online`` discipline honours it — the offline disciplines treat
    every member as present at time 0.
    """

    member_id: str
    workflow: Workflow
    priority: float = 0.0
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")


@dataclass
class EnsembleResult:
    """Outcome of one ensemble run."""

    discipline: str
    makespan: float
    energy_j: float
    member_finish: Dict[str, float] = field(default_factory=dict)
    member_solo: Dict[str, float] = field(default_factory=dict)
    success: bool = True

    @property
    def member_slowdown(self) -> Dict[str, float]:
        """Per-member finish time over its solo makespan (>= ~1)."""
        out = {}
        for mid, finish in self.member_finish.items():
            solo = self.member_solo.get(mid)
            if solo:
                out[mid] = finish / solo
        return out

    @property
    def mean_slowdown(self) -> float:
        """Average member slowdown (the fairness figure)."""
        slow = self.member_slowdown
        if not slow:
            return float("nan")
        return sum(slow.values()) / len(slow)

    def throughput(self) -> float:
        """Members completed per unit makespan."""
        if self.makespan <= 0:
            return float("inf")
        return len(self.member_finish) / self.makespan


class EnsembleRunner:
    """Runs member workflows on one cluster under a sharing discipline."""

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[RunConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or RunConfig()

    def run(
        self,
        members: List[EnsembleMember],
        discipline: str = "shared",
        compute_solo: bool = True,
    ) -> EnsembleResult:
        """Execute the ensemble under the given discipline."""
        if discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        if not members:
            raise ValueError("ensemble needs at least one member")
        ids = [m.member_id for m in members]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate member ids: {ids}")

        solo: Dict[str, float] = {}
        if compute_solo:
            for m in members:
                solo[m.member_id] = self._run_one(m.workflow).makespan

        if discipline == "shared":
            result = self._run_shared(members, solo)
        elif discipline == "online":
            result = self._run_shared(members, solo, honor_arrivals=True)
        else:
            ordered = list(members)
            if discipline == "priority":
                ordered.sort(key=lambda m: (-m.priority, m.member_id))
            result = self._run_sequential(ordered, discipline, solo)
        return result

    # ------------------------------------------------------------------ #

    def _run_one(self, workflow: Workflow):
        return Orchestrator(self.config).run(workflow, self.cluster)

    def _run_sequential(
        self, ordered: List[EnsembleMember], discipline: str,
        solo: Dict[str, float],
    ) -> EnsembleResult:
        clock = 0.0
        energy = 0.0
        finishes: Dict[str, float] = {}
        ok = True
        for m in ordered:
            run = self._run_one(m.workflow)
            ok = ok and run.success
            clock += run.makespan
            energy += run.energy.total_joules
            finishes[m.member_id] = clock
        return EnsembleResult(
            discipline=discipline,
            makespan=clock,
            energy_j=energy,
            member_finish=finishes,
            member_solo=solo,
            success=ok,
        )

    def _run_shared(
        self,
        members: List[EnsembleMember],
        solo: Dict[str, float],
        honor_arrivals: bool = False,
    ) -> EnsembleResult:
        merged = merge_workflows(
            {m.member_id: m.workflow for m in members},
            priorities={m.member_id: m.priority for m in members},
        )
        config = self.config
        if honor_arrivals:
            from dataclasses import replace as dc_replace

            releases = {
                t: m.arrival
                for m in members
                if m.arrival > 0
                for t in member_tasks(merged, m.member_id)
            }
            config = dc_replace(self.config, release_times=releases)
        run = Orchestrator(config).run(merged, self.cluster)
        finishes: Dict[str, float] = {}
        for m in members:
            times = [
                run.execution.records[t].finish
                for t in member_tasks(merged, m.member_id)
                if run.execution.records[t].finish is not None
            ]
            finishes[m.member_id] = max(times) if times else float("nan")
        return EnsembleResult(
            discipline="online" if honor_arrivals else "shared",
            makespan=run.makespan,
            energy_j=run.energy.total_joules,
            member_finish=finishes,
            member_solo=solo,
            success=run.success,
        )
