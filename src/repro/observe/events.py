"""A process-wide structured event log for control-plane decisions.

Spans and metrics describe *what the simulation did*; events describe
*what the harness decided* — a health-gate trip, a batch admission, a
quarantined cell.  Each event is a small JSON-native dict with a kind, a
monotone sequence number and arbitrary structured fields, appended to a
bounded in-process log that exporters snapshot into campaign artifacts.

Determinism contract: events carry **no wall-clock stamp** and no
ambient entropy — the sequence number is the only ordering — so a
deterministic campaign emits a byte-identical event stream.  Like the
rest of :mod:`repro.observe`, emission is pure observation: nothing in
the simulator or runner reads the log back to make a decision (the
health gate decides from its own history and merely *reports* here).

The log is bounded (:data:`MAX_EVENTS`, oldest dropped) so a
million-cell campaign cannot grow it without limit; the drop count is
reported in :func:`events_snapshot` so truncation is never silent.

Emission is thread-safe: the campaign service's HTTP handler threads
emit concurrently with the serving loop, so the seq/drop accounting and
the append run under one process-wide lock (uncontended in the common
single-threaded case).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List

#: Schema tag stamped into every snapshot.
EVENTS_SCHEMA = "repro.events/v1"

#: Bound on retained events; the oldest are dropped past this.
MAX_EVENTS = 4096

_log: Deque[Dict[str, object]] = deque(maxlen=MAX_EVENTS)
_seq = 0
_dropped = 0
#: Serializes seq/drop accounting against concurrent emitter threads.
_lock = threading.Lock()


def emit_event(kind: str, **fields: object) -> Dict[str, object]:
    """Append one structured event; returns the stored dict.

    ``fields`` must be JSON-native (the exporters serialize snapshots
    with ``json.dumps``); the event carries ``kind`` and a process-wide
    monotone ``seq`` so interleaved emitters stay ordered.
    """
    global _seq, _dropped
    with _lock:
        if len(_log) == _log.maxlen:
            _dropped += 1
        event: Dict[str, object] = {"kind": kind, "seq": _seq}
        event.update(fields)
        _seq += 1
        _log.append(event)
    return event


def recent_events(kind: str = "") -> List[Dict[str, object]]:
    """Retained events oldest-first, optionally filtered by kind."""
    if kind:
        return [e for e in _log if e["kind"] == kind]
    return list(_log)


def events_snapshot() -> Dict[str, object]:
    """JSON-native snapshot of the log (for campaign artifacts)."""
    return {
        "schema": EVENTS_SCHEMA,
        "emitted": _seq,
        "dropped": _dropped,
        "events": list(_log),
    }


def clear_events() -> None:
    """Reset the log (test isolation; campaign boundaries)."""
    global _seq, _dropped
    with _lock:
        _log.clear()
        _seq = 0
        _dropped = 0
