"""Cross-layer observability: metrics, spans, timeline export.

``repro.observe`` lets you *see inside* a run without perturbing it:

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms, threaded through the executor via
  :class:`~repro.observe.collect.MetricsCollector` (enable with
  ``WorkflowExecutor(metrics=True)``, ``RunConfig(metrics=True)``,
  ``repro-flow run --metrics-out`` or ``REPRO_METRICS=1``).
* :class:`SpanTracer` / :func:`spans_from_trace` — structured spans with
  parent/child nesting and exact virtual-time + wall-time stamps,
  layered on the :class:`~repro.sim.trace.TraceRecorder` hooks.
* :func:`chrome_trace` / :func:`device_gantt` — Chrome ``trace_event``
  JSON for chrome://tracing / Perfetto, and a per-device text Gantt.
* :func:`emit_event` / :func:`events_snapshot` — a bounded structured
  event log for control-plane decisions (health-gate trips, batch
  admissions), exported into campaign artifacts so a tripped gate is
  diagnosable from the trace.
* :func:`clock` — the one sanctioned wall-clock read (profiling only;
  the determinism lint bans the host clock everywhere else).

Observation is pure: an instrumented run produces bit-identical
simulation results (``scripts/check_determinism.sh`` passes with
``REPRO_METRICS=1``), and the disabled layer stays off the hot path
(bounded by ``benchmarks/test_observe_overhead.py``).
"""

from __future__ import annotations

import os

from repro.observe.clock import clock, elapsed
from repro.observe.collect import MetricsCollector
from repro.observe.events import (
    EVENTS_SCHEMA,
    clear_events,
    emit_event,
    events_snapshot,
    recent_events,
)
from repro.observe.export import chrome_trace, device_gantt, write_json
from repro.observe.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
)
from repro.observe.spans import Span, SpanTracer, TraceSpanBuilder, spans_from_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENTS_SCHEMA",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
    "Span",
    "SpanTracer",
    "TraceSpanBuilder",
    "chrome_trace",
    "clear_events",
    "clock",
    "device_gantt",
    "elapsed",
    "emit_event",
    "env_metrics",
    "events_snapshot",
    "recent_events",
    "spans_from_trace",
    "write_json",
]


def env_metrics() -> bool:
    """Whether ``REPRO_METRICS`` asks for always-on metrics collection."""
    return os.environ.get("REPRO_METRICS", "").strip().lower() in (
        "1", "true", "yes", "on",
    )
