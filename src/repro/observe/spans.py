"""Span-based structured tracing.

A :class:`Span` is a named interval with a *track* (the timeline lane it
renders on — a device uid, a network link, or a logical lane like
``run``), an optional parent (spans nest), exact virtual-time stamps,
and optional wall-clock stamps (profiling only, via the sanctioned
:func:`repro.observe.clock.clock` shim).

Two ways to get spans:

* :class:`SpanTracer` — explicit code-level spans with automatic
  parent/child nesting via a context-manager stack::

      tracer = SpanTracer(time_fn=lambda: executor.now)
      with tracer.span("plan", scheduler="heft"):
          ...
      spans = tracer.spans

* :class:`TraceSpanBuilder` / :func:`spans_from_trace` — derive spans
  from :class:`~repro.sim.trace.TraceRecorder` records, either post-hoc
  from a finished trace or live through the recorder's subscriber hook.
  Each task clone becomes a ``task`` parent span on its device track
  with nested ``stage_in`` and ``exec`` children; transfers become
  spans on per-link network tracks; point events (faults, evictions,
  archives) become zero-length spans.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.observe.clock import clock
from repro.sim.trace import TraceRecord, TraceRecorder


@dataclass
class Span:
    """One named interval on a timeline track."""

    sid: int
    name: str
    track: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock stamps (profiling only; None for trace-derived spans).
    wall_start: Optional[float] = None
    wall_end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Virtual seconds covered (0 while open or for point spans)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def open(self) -> bool:
        """Whether the span has not been closed yet."""
        return self.end is None


class SpanTracer:
    """Explicit spans with stack-based parent/child nesting.

    ``time_fn`` supplies the virtual-time stamps (pass
    ``lambda: executor.now`` inside a simulation, or
    :func:`~repro.observe.clock.clock` for host-level timelines).  Wall
    stamps are always taken from the sanctioned clock shim unless
    ``wall=False``.
    """

    def __init__(self, time_fn=None, wall: bool = True) -> None:
        self._time_fn = time_fn or (lambda: 0.0)
        self._wall = wall
        self._next_sid = 0
        self._stack: List[Span] = []
        self.spans: List[Span] = []

    def begin(self, name: str, track: str = "main", **attrs: Any) -> Span:
        """Open a span as a child of the innermost open span."""
        span = Span(
            sid=self._next_sid,
            name=name,
            track=track,
            start=self._time_fn(),
            parent=self._stack[-1].sid if self._stack else None,
            attrs=dict(attrs),
            wall_start=clock() if self._wall else None,
        )
        self._next_sid += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span] = None) -> Span:
        """Close the given span (default: the innermost open one)."""
        if not self._stack:
            raise RuntimeError("no open span to end")
        top = self._stack.pop()
        if span is not None and span.sid != top.sid:
            raise RuntimeError(
                f"span nesting violated: closing {span.name!r} but "
                f"{top.name!r} is innermost"
            )
        top.end = self._time_fn()
        if self._wall:
            top.wall_end = clock()
        return top

    @contextmanager
    def span(self, name: str, track: str = "main", **attrs: Any) -> Iterator[Span]:
        """Context manager opening/closing one properly nested span."""
        opened = self.begin(name, track=track, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)


class TraceSpanBuilder:
    """Incrementally converts trace records into spans.

    Feed records in emission order (post-hoc iteration and the live
    subscriber hook both preserve it).  The builder is a pure observer:
    it reads records and never touches simulation state.
    """

    #: Point-event kinds rendered as zero-length spans: kind -> track key.
    POINT_TRACKS = {
        "task.dead": "run",
        "task.regenerate": "run",
        "fault.device": None,  # device track from the record
        "store.evict": None,  # node track
        "store.overflow": None,
        "data.lost": None,
        "archive": "storage",
    }

    def __init__(self) -> None:
        self._next_sid = 0
        self.spans: List[Span] = []
        #: Open (parent, stage_in/exec child) per (task, device) clone.
        self._open: Dict[Tuple[str, str], Tuple[Span, Span]] = {}
        self._last_time = 0.0

    def attach(self, trace: TraceRecorder) -> None:
        """Subscribe to a recorder so spans build live as records emit."""
        trace.subscribe(self.feed)

    def _new(
        self,
        name: str,
        track: str,
        start: float,
        end: Optional[float] = None,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        span = Span(
            sid=self._next_sid, name=name, track=track, start=start,
            end=end, parent=parent, attrs=attrs,
        )
        self._next_sid += 1
        self.spans.append(span)
        return span

    def feed(self, rec: TraceRecord) -> None:
        """Consume one trace record."""
        self._last_time = max(self._last_time, rec.time)
        kind = rec.kind
        if kind == "task.stage":
            key = (rec.get("task"), rec.get("device"))
            if key in self._open:  # previous clone never closed (preempted
                self._close_clone(key, rec.time, outcome="abandoned")
            parent = self._new(
                f"task {key[0]}", key[1], rec.time, task=key[0]
            )
            child = self._new(
                "stage_in", key[1], rec.time,
                parent=parent.sid, until=rec.get("until"),
            )
            self._open[key] = (parent, child)
        elif kind == "task.start":
            key = (rec.get("task"), rec.get("device"))
            entry = self._open.get(key)
            if entry is None:
                return  # start without stage: foreign trace, skip
            parent, child = entry
            if child.name == "stage_in" and child.open:
                child.end = rec.time
            execspan = self._new(
                "exec", key[1], rec.time, parent=parent.sid,
                attempt=rec.get("attempt"), planned=rec.get("duration"),
            )
            self._open[key] = (parent, execspan)
        elif kind in ("task.finish", "fault.task", "task.preempt"):
            key = (rec.get("task"), rec.get("device"))
            if rec.get("device") is None or key not in self._open:
                return
            outcome = {
                "task.finish": "done",
                "fault.task": "fault",
                "task.preempt": "preempted",
            }[kind]
            self._close_clone(
                key, rec.time, outcome=outcome,
                energy_j=rec.get("energy_j"),
            )
        elif kind == "transfer.start":
            self._new(
                f"xfer {rec.get('file')}",
                f"net {rec.get('src')}->{rec.get('dst')}",
                rec.time,
                end=rec.get("arrives"),
                size_mb=rec.get("size_mb"),
            )
        elif kind in self.POINT_TRACKS:
            track = self.POINT_TRACKS[kind]
            if track is None:
                track = rec.get("device") or rec.get("node") or "run"
            self._new(kind, track, rec.time, end=rec.time, **rec.data)

    def _close_clone(self, key, time: float, **attrs: Any) -> None:
        parent, child = self._open.pop(key)
        if child.open:
            child.end = time
            child.attrs.update(attrs)
        parent.end = time
        parent.attrs.update(attrs)

    def finish(self, at: Optional[float] = None) -> List[Span]:
        """Close any dangling clone spans and return all spans.

        Clones cancelled mid-staging (a sibling finished first) never get
        a closing record; they are closed at ``at`` (default: the latest
        record time seen) and flagged ``unclosed``.
        """
        cutoff = self._last_time if at is None else at
        for key in sorted(self._open):
            self._close_clone(key, cutoff, outcome="unclosed")
        return self.spans


def spans_from_trace(
    trace: TraceRecorder, at: Optional[float] = None
) -> List[Span]:
    """Convert a finished trace into spans (see :class:`TraceSpanBuilder`)."""
    builder = TraceSpanBuilder()
    for rec in trace:
        builder.feed(rec)
    return builder.finish(at=at)
