"""Exporters: Chrome trace-event JSON, per-device text Gantt, snapshots.

Three output formats, all derived from :class:`~repro.observe.spans.Span`
lists or :class:`~repro.observe.metrics.MetricsRegistry` snapshots:

* :func:`chrome_trace` — the Chrome ``trace_event`` JSON object format.
  Load the file at ``chrome://tracing`` or https://ui.perfetto.dev to
  scrub a run's timeline: one named thread per track (device, network
  link, logical lane), complete events with microsecond virtual-time
  stamps, span attributes in ``args``.
* :func:`device_gantt` — a fixed-width text timeline (one row per
  track) for terminals and test logs; like
  :func:`repro.analysis.gantt.ascii_gantt` but span-based, so it also
  shows staging and transfer lanes.
* :func:`write_json` — tiny helper the CLI uses for ``--metrics-out`` /
  ``--trace-out``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.observe.spans import Span

#: Virtual seconds -> trace-event microseconds.
_US = 1_000_000.0


def chrome_trace(
    spans: Sequence[Span],
    process_name: str = "repro-flow",
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Render spans as a Chrome ``trace_event`` JSON object.

    Tracks map to thread ids (named via metadata events); every span
    becomes a complete (``"ph": "X"``) event whose ``ts``/``dur`` are the
    span's *virtual* times in microseconds.  Events are sorted by
    ``(tid, ts, -dur)`` so each thread's timeline is monotone and parents
    precede their children at equal stamps.
    """
    tracks = sorted({s.track for s in spans})
    tids = {track: i + 1 for i, track in enumerate(tracks)}

    events: List[Dict[str, Any]] = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        args = {k: v for k, v in span.attrs.items() if v is not None}
        if span.parent is not None:
            args["parent"] = span.parent
        events.append({
            "name": span.name,
            "cat": span.name.split(" ")[0],
            "ph": "X",
            "ts": span.start * _US,
            "dur": (end - span.start) * _US,
            "pid": 1,
            "tid": tids[span.track],
            "args": args,
        })
    events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))

    meta_events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    for track in tracks:
        meta_events.append({
            "name": "thread_name", "ph": "M", "pid": 1,
            "tid": tids[track], "args": {"name": track},
        })

    doc: Dict[str, Any] = {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["metadata"] = dict(metadata)
    return doc


def device_gantt(
    spans: Sequence[Span],
    width: int = 72,
    names: bool = True,
) -> str:
    """Render spans as a fixed-width text timeline, one row per track.

    Only top-level spans (no parent) paint their lane — children would
    just overdraw the same interval.  Point spans render as ``!``.
    """
    top = [s for s in spans if s.parent is None]
    if not top:
        return "(no spans)"
    horizon = max(
        (s.end if s.end is not None else s.start) for s in top
    )
    if horizon <= 0:
        return "(zero-length timeline)"

    tracks: Dict[str, List[Span]] = {}
    for span in top:
        tracks.setdefault(span.track, []).append(span)
    label_width = max(len(t) for t in tracks)

    lines = [f"{'track'.ljust(label_width)} |time -> {horizon:.3f}s"]
    for track in sorted(tracks):
        row = [" "] * width
        for span in sorted(tracks[track], key=lambda s: (s.start, s.sid)):
            end = span.end if span.end is not None else span.start
            a = int(span.start / horizon * (width - 1))
            if end <= span.start:
                row[min(a, width - 1)] = "!"
                continue
            b = min(width, max(a + 1, int(end / horizon * (width - 1)) + 1))
            span_width = b - a
            label = ""
            if names:
                label = span.name.replace("task ", "")[: max(0, span_width - 2)]
            fill = ("=" + label + "=" * span_width)[:span_width]
            for i, ch in enumerate(fill):
                row[a + i] = ch
        lines.append(f"{track.ljust(label_width)} |{''.join(row)}|")
    return "\n".join(lines)


def write_json(path: str, payload: Dict[str, Any]) -> None:
    """Write a JSON document with stable key order and a trailing newline."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
