"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a run-scoped namespace of named
instruments.  Everything here is *pure observation*: instruments are
updated from values the simulation already computed, never consulted by
it, so an instrumented run and a bare run produce bit-identical
simulation results (the determinism gate proves this with
``REPRO_METRICS=1``).

Two sections with different determinism contracts:

* ``counters`` / ``gauges`` / ``histograms`` — derived from virtual-time
  simulation state only.  Deterministic: same seed, same snapshot.
* ``profile`` — wall-clock measurements (scheduler planning time, run
  wall seconds, events/sec) read through the sanctioned
  :func:`repro.observe.clock.clock` shim.  Machine-dependent by nature;
  deterministic consumers must ignore this section.

Snapshots are plain JSON-native dicts with sorted keys, so two snapshots
of the same run compare with ``==``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Schema tag stamped into every snapshot.
SNAPSHOT_SCHEMA = "repro.metrics/v1"

#: Default histogram bucket upper bounds (seconds / MB / counts all fit
#: this decade ladder; the final +inf bucket is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0,
)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum of the observed values."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars.

    ``buckets`` are upper bounds in ascending order; an implicit final
    bucket catches everything above the last bound.  Fixed buckets keep
    snapshots mergeable and JSON-small regardless of sample volume.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "min", "max")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} buckets must be unique ascending bounds"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0 for an empty histogram)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-native snapshot of this histogram."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Run-scoped namespace of counters, gauges and histograms.

    Instruments are created on first use, so call sites never need
    registration boilerplate::

        metrics.inc("tasks.completed")
        metrics.observe("task.duration_s", 12.5)
        metrics.set_gauge("devices.alive", 9)

    ``profile(name, seconds)`` records wall-clock measurements into the
    separate machine-dependent section (see the module docstring).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._profile: Dict[str, float] = {}

    # ----------------------------------------------------------------- #
    # instrument accessors (create on first use)                        #
    # ----------------------------------------------------------------- #

    def counter(self, name: str) -> Counter:
        """The counter of that name (created at zero on first use)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge of that name (created at zero on first use)."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram of that name (bucket bounds fixed on first use)."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    # ----------------------------------------------------------------- #
    # one-line update helpers                                           #
    # ----------------------------------------------------------------- #

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record a histogram sample."""
        self.histogram(name, buckets).observe(value)

    def profile(self, name: str, seconds: float) -> None:
        """Record a wall-clock measurement (machine-dependent section)."""
        self._profile[name] = float(seconds)

    # ----------------------------------------------------------------- #
    # reads                                                             #
    # ----------------------------------------------------------------- #

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (0.0 when absent)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0.0

    def names(self) -> List[str]:
        """Sorted names of every instrument (profile entries excluded)."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> Dict[str, Any]:
        """Flat JSON-native snapshot with sorted keys.

        The ``counters``/``gauges``/``histograms`` sections are
        deterministic for a given seeded run; ``profile`` is wall-clock
        and must be ignored by deterministic consumers.
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {
                k: self._gauges[k].value for k in sorted(self._gauges)
            },
            "histograms": {
                k: self._histograms[k].as_dict()
                for k in sorted(self._histograms)
            },
            "profile": {k: self._profile[k] for k in sorted(self._profile)},
        }
