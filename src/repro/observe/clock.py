"""The one sanctioned wall-clock source for observability code.

Simulation code must never read the host clock (the determinism lint
bans it: virtual time comes from the simulator).  Profiling is the one
legitimate exception — "how long did planning take on this machine" is a
property of the host, not of the simulated world — so the observability
layer funnels every wall-clock read through this single shim:

* :func:`clock` returns wall-clock seconds for *profiling only*.  Its
  values must never influence a simulation decision, a cache key, or any
  number the determinism gate compares; they live in the ``profile``
  section of a metrics snapshot and in span wall-stamps, both of which
  deterministic consumers ignore.

This module is the only file in ``repro.observe`` allowlisted for the
``wall-clock`` lint check (see ``staticcheck/lint_allowlist.txt``); a
direct ``time.time()`` anywhere else in the package fails the lint.
"""

from __future__ import annotations

import time


def clock() -> float:
    """Wall-clock seconds since the epoch, for profiling only.

    Uses ``time.time()`` rather than ``perf_counter`` so span wall-stamps
    from different processes share one timebase (a campaign timeline can
    interleave worker spans); durations derived from two ``clock()``
    reads are still accurate to well under a millisecond, which is ample
    for profiling scheduler calls and whole runs.
    """
    return time.time()


def elapsed(since: float) -> float:
    """Seconds elapsed since a previous :func:`clock` reading (>= 0)."""
    return max(0.0, clock() - since)
