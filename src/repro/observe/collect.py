"""Wires a :class:`MetricsRegistry` into a live executor run.

The collector is a *pure observer*: it subscribes to the executor's
:class:`~repro.sim.trace.TraceRecorder` (the same hook the sanitizer
uses), maps each record kind onto counter/histogram updates, and at
:meth:`finalize` reads the executor's already-computed aggregates
(device busy time, store evictions, interconnect traffic, injector
counts, simulator events) into gauges.  It never mutates simulation
state, so an instrumented run is bit-identical to a bare one.

Metric name catalog (see docs/architecture.md §9 for semantics):

==========================  =========  ====================================
name                        kind       moved by
==========================  =========  ====================================
tasks.dispatched            counter    each clone launch (``task.stage``)
tasks.completed             counter    ``task.finish``
tasks.dead                  counter    ``task.dead``
tasks.retried               counter    finalize (executor retry count)
tasks.regenerated           counter    ``task.regenerate``
tasks.preempted             counter    ``task.preempt``
faults.task                 counter    ``fault.task``
faults.device               counter    ``fault.device``
transfers.count             counter    ``transfer.start``
transfers.mb                counter    ``transfer.start`` size
staging.mb                  counter    finalize (storage bytes served)
store.evictions             counter    ``store.evict``
store.overflows             counter    ``store.overflow``
store.evicted_mb            counter    finalize (store accounting)
data.lost                   counter    ``data.lost``
files.archived              counter    ``archive``
energy.joules               counter    energy carried on finish/fault/preempt
sim.events                  counter    finalize (events fired)
devices.alive               gauge      finalize
devices.failed              gauge      finalize
run.makespan                gauge      finalize
sim.final_time              gauge      finalize
task.duration_s             histogram  ``task.finish`` duration
transfer.size_mb            histogram  ``transfer.start`` size
transfer.queue_depth        histogram  in-flight transfers at each start
device.busy_s               histogram  finalize, one sample per device
device.utilization          histogram  finalize, one sample per device
==========================  =========  ====================================
"""

from __future__ import annotations

from typing import Optional

from repro.observe.metrics import MetricsRegistry
from repro.sim.trace import TraceRecord

#: Bucket ladder for utilization-like [0, 1] histograms.
UTIL_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Bucket ladder for small integer depths (queue depth, attempts).
DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class MetricsCollector:
    """Streams one executor run's trace records into a registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._executor = None

    # ----------------------------------------------------------------- #
    # lifecycle                                                         #
    # ----------------------------------------------------------------- #

    def attach(self, executor) -> None:
        """Subscribe to the executor's trace recorder."""
        self._executor = executor
        executor.trace.subscribe(self.on_record)

    def detach(self) -> None:
        """Unsubscribe (idempotent)."""
        if self._executor is not None:
            self._executor.trace.unsubscribe(self.on_record)

    # ----------------------------------------------------------------- #
    # live record mapping                                               #
    # ----------------------------------------------------------------- #

    def on_record(self, rec: TraceRecord) -> None:
        """Map one trace record onto metric updates (read-only)."""
        m = self.registry
        kind = rec.kind
        if kind == "task.stage":
            m.inc("tasks.dispatched")
        elif kind == "task.finish":
            m.inc("tasks.completed")
            duration = rec.get("duration")
            if duration is not None:
                m.observe("task.duration_s", duration)
            self._energy(rec)
        elif kind == "task.dead":
            m.inc("tasks.dead")
        elif kind == "task.regenerate":
            m.inc("tasks.regenerated")
        elif kind == "task.preempt":
            m.inc("tasks.preempted")
            self._energy(rec)
        elif kind == "fault.task":
            m.inc("faults.task")
            self._energy(rec)
        elif kind == "fault.device":
            m.inc("faults.device")
        elif kind == "transfer.start":
            m.inc("transfers.count")
            size = rec.get("size_mb")
            if size is not None:
                m.inc("transfers.mb", size)
                m.observe("transfer.size_mb", size)
            if self._executor is not None:
                m.observe(
                    "transfer.queue_depth",
                    float(len(self._executor._inflight)),
                    buckets=DEPTH_BUCKETS,
                )
        elif kind == "store.evict":
            m.inc("store.evictions")
        elif kind == "store.overflow":
            m.inc("store.overflows")
        elif kind == "data.lost":
            m.inc("data.lost")
        elif kind == "archive":
            m.inc("files.archived")

    def _energy(self, rec: TraceRecord) -> None:
        joules = rec.get("energy_j")
        if joules:
            self.registry.inc("energy.joules", joules)

    # ----------------------------------------------------------------- #
    # end-of-run aggregates                                             #
    # ----------------------------------------------------------------- #

    def finalize(self, result: Optional[object] = None) -> None:
        """Fold the executor's end-of-run aggregates into the registry."""
        executor = self._executor
        if executor is None:
            return
        m = self.registry
        m.counter("tasks.retried").value = float(executor._retries)
        m.counter("staging.mb").value = float(
            executor.cluster.storage_bytes_served_mb
        )
        m.counter("store.evicted_mb").value = float(
            sum(s.bytes_evicted_mb for s in executor.stores.values())
        )
        m.counter("sim.events").value = float(executor.sim.events_fired)
        m.set_gauge("sim.final_time", executor.sim.now)

        makespan = getattr(result, "makespan", executor.sim.now)
        m.set_gauge("run.makespan", makespan)
        alive = failed = 0
        for device in executor.cluster.devices:
            if device.failed:
                failed += 1
            else:
                alive += 1
            m.observe("device.busy_s", device.busy_time())
            m.observe(
                "device.utilization",
                device.utilization(makespan),
                buckets=UTIL_BUCKETS,
            )
        m.set_gauge("devices.alive", float(alive))
        m.set_gauge("devices.failed", float(failed))
        self.detach()
