"""Bounded per-node file stores with LRU eviction.

Each compute node's local store has finite capacity; when a staging brings
in a file that does not fit, least-recently-used *unpinned* files are
evicted (pinned files are inputs/outputs of currently-running tasks and
must not vanish mid-execution).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List


class EvictionError(RuntimeError):
    """Raised when a file cannot fit even after evicting all candidates."""


class NodeStore:
    """LRU-managed local store of one node.

    Pins are *reference counted*: several concurrently running clones may
    pin the same input, and the file only becomes evictable again once
    every one of them has unpinned it.
    """

    def __init__(self, node: str, capacity_mb: float) -> None:
        if capacity_mb <= 0:
            raise ValueError("store capacity must be positive")
        self.node = node
        self.capacity_mb = capacity_mb
        self._files: "OrderedDict[str, float]" = OrderedDict()  # name -> MB
        self._pins: Dict[str, int] = {}  # name -> refcount
        self.evictions = 0
        self.bytes_evicted_mb = 0.0

    @property
    def used_mb(self) -> float:
        """Bytes currently stored."""
        return sum(self._files.values())

    @property
    def free_mb(self) -> float:
        """Remaining capacity."""
        return self.capacity_mb - self.used_mb

    def has(self, file_name: str) -> bool:
        """Whether the file is resident."""
        return file_name in self._files

    def touch(self, file_name: str) -> None:
        """Mark a resident file as recently used."""
        if file_name in self._files:
            self._files.move_to_end(file_name)

    def pin(self, file_name: str) -> None:
        """Protect a resident file from eviction (refcounted)."""
        if file_name not in self._files:
            raise KeyError(f"cannot pin absent file {file_name!r} on {self.node}")
        self._pins[file_name] = self._pins.get(file_name, 0) + 1

    def unpin(self, file_name: str) -> None:
        """Drop one pin reference (no-op if not pinned)."""
        count = self._pins.get(file_name, 0)
        if count <= 1:
            self._pins.pop(file_name, None)
        else:
            self._pins[file_name] = count - 1

    def is_pinned(self, file_name: str) -> bool:
        """Whether at least one live pin protects the file."""
        return file_name in self._pins

    def pinned_files(self) -> List[str]:
        """Currently pinned files, sorted (for audits and diagnostics)."""
        return sorted(self._pins)

    def put(self, file_name: str, size_mb: float) -> List[str]:
        """Store a file, evicting LRU unpinned files as needed.

        Returns the names of evicted files (for catalog maintenance).
        Re-putting a resident file just refreshes recency.
        """
        if size_mb < 0:
            raise ValueError("file size must be non-negative")
        if file_name in self._files:
            self.touch(file_name)
            return []
        if size_mb > self.capacity_mb:
            raise EvictionError(
                f"file {file_name!r} ({size_mb} MB) exceeds store capacity "
                f"of {self.node} ({self.capacity_mb} MB)"
            )
        evicted: List[str] = []
        while self.used_mb + size_mb > self.capacity_mb:
            victim = self._lru_unpinned()
            if victim is None:
                raise EvictionError(
                    f"store on {self.node} cannot fit {file_name!r}: "
                    f"{self.used_mb:.0f}/{self.capacity_mb:.0f} MB pinned"
                )
            self.bytes_evicted_mb += self._files.pop(victim)
            self.evictions += 1
            evicted.append(victim)
        self._files[file_name] = size_mb
        return evicted

    def remove(self, file_name: str) -> None:
        """Drop a file (no-op if absent); pinned files cannot be dropped."""
        if self.is_pinned(file_name):
            raise ValueError(f"cannot remove pinned file {file_name!r}")
        self._files.pop(file_name, None)

    def files(self) -> List[str]:
        """Resident files, least recently used first."""
        return list(self._files)

    def _lru_unpinned(self):
        for name in self._files:
            if name not in self._pins:
                return name
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NodeStore {self.node} {self.used_mb:.0f}/{self.capacity_mb:.0f}MB "
            f"files={len(self._files)}>"
        )
