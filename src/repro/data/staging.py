"""Transfer source selection.

When a task placed on node X needs a file, the data manager must pick
where to pull it from: X's own store (free), a peer node holding a replica
(pays the interconnect), or the shared storage site (pays the storage
path).  :func:`choose_source` implements the cheapest-source policy using
the cluster's idle-network estimates; the executor then *reserves* the
chosen path, paying contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.data.catalog import ReplicaCatalog
from repro.platform.cluster import Cluster


@dataclass(frozen=True)
class StagingDecision:
    """Outcome of source selection for one (file, destination) pair.

    ``source`` is a node name, :data:`ReplicaCatalog.STORAGE`, or the
    destination itself (when the file is already local, ``cost == 0``).
    """

    file_name: str
    source: str
    destination: str
    size_mb: float
    cost: float

    @property
    def is_local(self) -> bool:
        """True when no movement is needed."""
        return self.source == self.destination


def choose_source(
    catalog: ReplicaCatalog,
    cluster: Cluster,
    file_name: str,
    size_mb: float,
    destination: str,
) -> StagingDecision:
    """Pick the cheapest replica to satisfy ``file_name`` at ``destination``.

    Raises LookupError when no replica exists anywhere (a workflow-logic
    bug: a consumer ran before its producer registered the output).
    """
    locations = catalog.locations(file_name)
    if not locations:
        raise LookupError(f"no replica of {file_name!r} exists")

    if destination in locations:
        return StagingDecision(file_name, destination, destination, size_mb, 0.0)

    best: Optional[StagingDecision] = None
    for loc in locations:
        if loc == ReplicaCatalog.STORAGE:
            cost = cluster.staging_estimate(destination, size_mb)
        else:
            cost = cluster.transfer_estimate(loc, destination, size_mb)
        cand = StagingDecision(file_name, loc, destination, size_mb, cost)
        if best is None or cand.cost < best.cost:
            best = cand
    return best
