"""Data management substrate.

Discovery workflows are as much about moving bytes as about computing:
this package provides the replica catalog (which nodes hold which file),
per-node stores with LRU eviction, and the source-selection policy used
when a task on node X needs a file that lives elsewhere.

* :class:`~repro.data.catalog.ReplicaCatalog` — file → locations map.
* :class:`~repro.data.cache.NodeStore` — bounded per-node store.
* :mod:`~repro.data.staging` — transfer source selection.
"""

from repro.data.catalog import ReplicaCatalog
from repro.data.cache import EvictionError, NodeStore
from repro.data.staging import StagingDecision, choose_source

__all__ = [
    "ReplicaCatalog",
    "NodeStore",
    "EvictionError",
    "StagingDecision",
    "choose_source",
]
