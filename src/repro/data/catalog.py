"""Replica catalog: which nodes currently hold which logical files.

The shared storage site is represented by the reserved location name
``ReplicaCatalog.STORAGE`` — initial workflow inputs are registered there
at run start, and any file may be archived back to it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set


class ReplicaCatalog:
    """Mutable mapping of logical file name → set of holding locations."""

    #: Reserved location name for the shared storage site.
    STORAGE = "<storage>"

    def __init__(self) -> None:
        self._locations: Dict[str, Set[str]] = {}
        #: Optional audit hook called as ``observer(op, file_name, location)``
        #: with ``op`` in {"register", "unregister"} *before* the mutation.
        #: Used by the sanitizer to timestamp catalog changes.
        self.observer: Optional[Callable[[str, str, str], None]] = None

    def register(self, file_name: str, location: str) -> None:
        """Record that ``location`` now holds a replica of ``file_name``."""
        if self.observer is not None:
            self.observer("register", file_name, location)
        self._locations.setdefault(file_name, set()).add(location)

    def unregister(self, file_name: str, location: str) -> None:
        """Remove a replica record (no-op if absent)."""
        if self.observer is not None:
            self.observer("unregister", file_name, location)
        locs = self._locations.get(file_name)
        if locs is not None:
            locs.discard(location)
            if not locs:
                del self._locations[file_name]

    def locations(self, file_name: str) -> List[str]:
        """All locations holding the file, sorted (STORAGE sorts first)."""
        locs = self._locations.get(file_name, set())
        return sorted(locs, key=lambda l: (l != self.STORAGE, l))

    def has(self, file_name: str, location: str) -> bool:
        """Whether ``location`` holds a replica."""
        return location in self._locations.get(file_name, set())

    def exists(self, file_name: str) -> bool:
        """Whether any replica of the file exists."""
        return bool(self._locations.get(file_name))

    def files_at(self, location: str) -> List[str]:
        """All files with a replica at ``location``, sorted."""
        return sorted(
            f for f, locs in self._locations.items() if location in locs
        )

    def replica_count(self, file_name: str) -> int:
        """Number of replicas of the file."""
        return len(self._locations.get(file_name, set()))

    def clear(self) -> None:
        """Drop every record."""
        self._locations.clear()

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, file_name: str) -> bool:
        return self.exists(file_name)
