"""Device classes, specifications and runtime device instances.

A *device* is one schedulable processing element: a CPU socket, a discrete
GPU, an FPGA card, etc.  Devices execute one task at a time per *slot* (a
CPU spec may expose several slots to model independent cores handed to the
batch system; accelerators typically expose one).

The split between :class:`DeviceSpec` (immutable description, shareable
across platform instances) and :class:`Device` (stateful instance inside one
cluster) mirrors how real resource managers separate the hardware catalogue
from live resource state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.platform.power import PowerModel


class DeviceClass(enum.Enum):
    """Coarse processing-architecture classes.

    The class drives the execution-time model: tasks carry a per-class
    affinity (speedup or eligibility), so a GEMM-heavy stage may run 20x
    faster on ``GPU`` while an irregular traversal is CPU-only.
    """

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    TPU = "tpu"
    DSP = "dsp"
    MANYCORE = "manycore"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DeviceSpec:
    """Immutable description of a device model.

    Attributes:
        name: Catalogue name, e.g. ``"xeon-8280"`` or ``"a100"``.
        device_class: Processing-architecture class.
        speed: Sustained throughput in Gop/s for a perfectly-suited task
            with affinity 1.0.  Relative speeds between devices are what
            matters for scheduling, not absolute calibration.
        slots: Number of independent execution slots (concurrent tasks).
        memory_gb: Device-local memory capacity.
        power: Idle/busy power model (watts) with optional DVFS states.
    """

    name: str
    device_class: DeviceClass
    speed: float
    slots: int = 1
    memory_gb: float = 16.0
    power: PowerModel = field(default_factory=PowerModel)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"device speed must be positive, got {self.speed}")
        if self.slots < 1:
            raise ValueError(f"device must have >=1 slot, got {self.slots}")
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive, got {self.memory_gb}")

    def scaled(self, factor: float, name: Optional[str] = None) -> "DeviceSpec":
        """A copy of this spec with speed multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(self, speed=self.speed * factor, name=name or self.name)


class Device:
    """A live device inside a cluster.

    Tracks busy intervals (for utilization/energy accounting) and the
    earliest time each slot becomes free (for both the simulator and the
    static schedulers' availability estimates).
    """

    def __init__(self, spec: DeviceSpec, node: "object", index: int) -> None:
        self.spec = spec
        self.node = node  # repro.platform.nodes.Node; untyped to avoid cycle
        self.index = index
        self.slot_free_at: List[float] = [0.0] * spec.slots
        self.busy_intervals: List[Tuple[float, float]] = []
        self.tasks_run: int = 0
        self.failed: bool = False
        # Globally unique id, ``<node>:<spec-name>#<index>``.  A plain
        # attribute, not a property: it is the hottest lookup in the EFT
        # inner loops, and node/spec/index never change after construction.
        node_name = getattr(node, "name", "?")
        self.uid: str = f"{node_name}:{spec.name}#{index}"

    @property
    def device_class(self) -> DeviceClass:
        """Shortcut for ``spec.device_class``."""
        return self.spec.device_class

    @property
    def speed(self) -> float:
        """Shortcut for ``spec.speed`` (Gop/s)."""
        return self.spec.speed

    def earliest_slot(self, after: float = 0.0) -> Tuple[int, float]:
        """(slot index, time) of the earliest availability not before ``after``."""
        best_slot = 0
        best_time = max(self.slot_free_at[0], after)
        for i, t in enumerate(self.slot_free_at):
            cand = max(t, after)
            if cand < best_time:
                best_slot, best_time = i, cand
        return best_slot, best_time

    def occupy(self, slot: int, start: float, end: float) -> None:
        """Mark ``slot`` busy over [start, end] and account the interval."""
        if end < start:
            raise ValueError(f"occupy interval reversed: [{start}, {end}]")
        if slot < 0 or slot >= len(self.slot_free_at):
            raise IndexError(f"device {self.uid} has no slot {slot}")
        self.slot_free_at[slot] = end
        self.busy_intervals.append((start, end))
        self.tasks_run += 1

    def busy_time(self, until: Optional[float] = None) -> float:
        """Total busy seconds (clipped at ``until`` if given)."""
        total = 0.0
        for start, end in self.busy_intervals:
            if until is not None:
                end = min(end, until)
            if end > start:
                total += end - start
        return total

    def max_concurrent_intervals(self) -> int:
        """Peak number of simultaneously open busy intervals.

        A correctly accounted device never has more overlapping busy
        intervals than it has slots; the sanitizer audits exactly that.
        Zero-length intervals are ignored, and an interval ending at the
        instant another begins does not count as overlap.  The sweep is
        shared with the static schedule auditor (one implementation, two
        audit layers).
        """
        from repro.sim.intervals import max_overlap

        return max_overlap(self.busy_intervals)

    def utilization(self, makespan: float) -> float:
        """Fraction of [0, makespan] this device spent busy."""
        if makespan <= 0:
            return 0.0
        return min(1.0, self.busy_time(until=makespan) / makespan)

    def reset(self) -> None:
        """Clear all runtime state (schedule bookkeeping, intervals, faults)."""
        self.slot_free_at = [0.0] * self.spec.slots
        self.busy_intervals.clear()
        self.tasks_run = 0
        self.failed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Device {self.uid} {self.device_class} {self.speed:g}Gop/s>"


def catalogue() -> Dict[str, DeviceSpec]:
    """A small catalogue of calibrated device specs used by the presets.

    Speeds are chosen so the *ratios* between device classes are realistic
    (a data-parallel task sees ~1-2 orders of magnitude from accelerators);
    power figures follow typical published TDP/idle numbers.
    """
    return {
        "cpu-std": DeviceSpec(
            "cpu-std", DeviceClass.CPU, speed=50.0, slots=1, memory_gb=64,
            power=PowerModel(idle_watts=40.0, busy_watts=150.0),
        ),
        "cpu-fast": DeviceSpec(
            "cpu-fast", DeviceClass.CPU, speed=80.0, slots=1, memory_gb=128,
            power=PowerModel(idle_watts=55.0, busy_watts=205.0),
        ),
        "gpu-std": DeviceSpec(
            "gpu-std", DeviceClass.GPU, speed=700.0, slots=1, memory_gb=24,
            power=PowerModel(idle_watts=25.0, busy_watts=300.0),
        ),
        "gpu-hpc": DeviceSpec(
            "gpu-hpc", DeviceClass.GPU, speed=1400.0, slots=1, memory_gb=80,
            power=PowerModel(idle_watts=45.0, busy_watts=400.0),
        ),
        "fpga-std": DeviceSpec(
            "fpga-std", DeviceClass.FPGA, speed=250.0, slots=1, memory_gb=16,
            power=PowerModel(idle_watts=10.0, busy_watts=60.0),
        ),
        "tpu-std": DeviceSpec(
            "tpu-std", DeviceClass.TPU, speed=1800.0, slots=1, memory_gb=32,
            power=PowerModel(idle_watts=30.0, busy_watts=250.0),
        ),
        "dsp-std": DeviceSpec(
            "dsp-std", DeviceClass.DSP, speed=90.0, slots=1, memory_gb=4,
            power=PowerModel(idle_watts=2.0, busy_watts=12.0),
        ),
        "manycore-std": DeviceSpec(
            "manycore-std", DeviceClass.MANYCORE, speed=220.0, slots=1,
            memory_gb=16,
            power=PowerModel(idle_watts=20.0, busy_watts=215.0),
        ),
    }
