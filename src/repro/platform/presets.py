"""Ready-made platform configurations.

The presets pin down the platforms used throughout the examples, tests and
the benchmark harness, so that "the mixed CPU+GPU cluster from T1" means the
same thing everywhere.  All constructors take a ``seed``-free, purely
deterministic description; heterogeneity in *speeds* (for the classical
related/unrelated machine distinction) comes from explicit spec scaling, not
randomness.
"""

from __future__ import annotations

from typing import List, Optional

from repro.platform.cluster import Cluster
from repro.platform.devices import DeviceSpec, catalogue
from repro.platform.interconnect import Interconnect
from repro.platform.nodes import NodeSpec
from repro.platform.perfmodel import ExecutionModel


def _catalogue(dvfs: bool) -> dict:
    """The device catalogue, optionally with DVFS ladders on every spec."""
    cat = catalogue()
    if not dvfs:
        return cat
    from dataclasses import replace

    return {
        name: replace(spec, power=spec.power.with_dvfs())
        for name, spec in cat.items()
    }


def cpu_cluster(
    nodes: int = 4,
    cores_per_node: int = 4,
    execution_model: Optional[ExecutionModel] = None,
    dvfs: bool = False,
) -> Cluster:
    """Homogeneous CPU cluster (the T2 baseline platform).

    Each node carries ``cores_per_node`` single-slot CPU devices, matching
    how a batch system hands out cores.
    """
    cat = _catalogue(dvfs)
    specs = [
        NodeSpec.of(f"n{i}", [cat["cpu-std"]] * cores_per_node)
        for i in range(nodes)
    ]
    return Cluster(
        f"cpu-{nodes}x{cores_per_node}",
        specs,
        execution_model=execution_model,
    )


def hybrid_cluster(
    nodes: int = 4,
    cores_per_node: int = 4,
    gpus_per_node: int = 1,
    execution_model: Optional[ExecutionModel] = None,
    dvfs: bool = False,
) -> Cluster:
    """CPU+GPU cluster — the workhorse platform of the evaluation (T1)."""
    cat = _catalogue(dvfs)
    per_node: List[DeviceSpec] = [cat["cpu-std"]] * cores_per_node
    per_node += [cat["gpu-std"]] * gpus_per_node
    specs = [NodeSpec.of(f"n{i}", per_node) for i in range(nodes)]
    return Cluster(
        f"hybrid-{nodes}x{cores_per_node}c{gpus_per_node}g",
        specs,
        execution_model=execution_model,
    )


def accelerator_rich_cluster(
    nodes: int = 4,
    cores_per_node: int = 4,
    gpus_per_node: int = 2,
    fpgas_per_node: int = 1,
    execution_model: Optional[ExecutionModel] = None,
) -> Cluster:
    """CPU+GPU+FPGA cluster (the widest heterogeneity point of T2)."""
    cat = catalogue()
    per_node: List[DeviceSpec] = [cat["cpu-std"]] * cores_per_node
    per_node += [cat["gpu-std"]] * gpus_per_node
    per_node += [cat["fpga-std"]] * fpgas_per_node
    specs = [NodeSpec.of(f"n{i}", per_node) for i in range(nodes)]
    return Cluster(
        f"accel-{nodes}x{cores_per_node}c{gpus_per_node}g{fpgas_per_node}f",
        specs,
        execution_model=execution_model,
    )


def gpu_count_cluster(
    gpus: int,
    nodes: int = 4,
    cores_per_node: int = 4,
    execution_model: Optional[ExecutionModel] = None,
) -> Cluster:
    """Fixed CPU capacity with exactly ``gpus`` GPUs spread round-robin.

    The F3 sweep varies ``gpus`` from 0 upward to chart accelerator
    marginal utility.
    """
    cat = catalogue()
    per_node_gpus = [0] * nodes
    for g in range(gpus):
        per_node_gpus[g % nodes] += 1
    specs = []
    for i in range(nodes):
        devs: List[DeviceSpec] = [cat["cpu-std"]] * cores_per_node
        devs += [cat["gpu-std"]] * per_node_gpus[i]
        specs.append(NodeSpec.of(f"n{i}", devs))
    return Cluster(
        f"gpusweep-{gpus}g",
        specs,
        execution_model=execution_model,
    )


def unrelated_cluster(
    nodes: int = 4,
    execution_model: Optional[ExecutionModel] = None,
) -> Cluster:
    """Deliberately lopsided platform for stress-testing schedulers.

    Mixes fast/slow CPUs, a shared HPC GPU, a TPU and a DSP, so that
    eligibility and affinity interact non-trivially with availability.
    """
    cat = catalogue()
    specs = []
    for i in range(nodes):
        if i == 0:
            devs = [cat["cpu-fast"], cat["cpu-fast"], cat["gpu-hpc"]]
        elif i == 1:
            devs = [cat["cpu-std"], cat["cpu-std"], cat["tpu-std"]]
        elif i == 2:
            devs = [cat["cpu-std"], cat["fpga-std"], cat["dsp-std"]]
        else:
            devs = [cat["cpu-std"].scaled(0.6, "cpu-slow"), cat["manycore-std"]]
        specs.append(NodeSpec.of(f"n{i}", devs))
    return Cluster("unrelated", specs, execution_model=execution_model)


def edge_cluster(
    devices: int = 8,
    execution_model: Optional[ExecutionModel] = None,
) -> Cluster:
    """IoT/edge platform: many weak nodes behind a slow network.

    Used by the discovery-at-the-edge example; note the 12.5 MB/s (100 Mb)
    links, which make data locality decisive.
    """
    cat = catalogue()
    weak_cpu = cat["cpu-std"].scaled(0.1, "cpu-edge")
    specs = [NodeSpec.of(f"edge{i}", [weak_cpu, cat["dsp-std"]],
                         disk_bandwidth=200.0, nic_bandwidth=12.5)
             for i in range(devices)]
    net = Interconnect.uniform([s.name for s in specs], bandwidth=12.5, latency=0.01)
    return Cluster("edge", specs, interconnect=net,
                   execution_model=execution_model)


def single_node_workstation(
    execution_model: Optional[ExecutionModel] = None,
) -> Cluster:
    """One node, 4 CPU cores + 1 GPU — the quickstart platform."""
    cat = catalogue()
    spec = NodeSpec.of("ws0", [cat["cpu-std"]] * 4 + [cat["gpu-std"]])
    return Cluster("workstation", [spec], execution_model=execution_model)


PRESETS = {
    "cpu": cpu_cluster,
    "hybrid": hybrid_cluster,
    "accel": accelerator_rich_cluster,
    "unrelated": unrelated_cluster,
    "edge": edge_cluster,
    "workstation": single_node_workstation,
}


def by_name(name: str, **kwargs) -> Cluster:
    """Instantiate a preset platform by short name (see ``PRESETS``)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
    return factory(**kwargs)
