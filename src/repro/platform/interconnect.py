"""Inter-node network model.

The interconnect answers two questions:

* *Estimate*: how long would moving N MB from node A to node B take on an
  otherwise idle network?  (Used by schedulers when ranking placements.)
* *Reserve*: given that links serialize concurrent transfers, when does a
  transfer submitted at time t actually start and finish?  (Used by the
  discrete-event executor, so that schedulers that ignore contention pay
  for it at runtime.)

Topologies are modelled as a set of directed :class:`Link` objects between
node names; both uniform full-mesh and switched (star) fabrics are provided.
Intra-node movement goes through the node's local disk and never touches the
network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class Link:
    """A directed network link between two nodes.

    ``busy_until`` tracks the serialization frontier for the contention
    model: a link carries one transfer at a time at full bandwidth (a
    store-and-forward approximation that keeps the simulation deterministic
    while still penalizing hotspots).
    """

    src: str
    dst: str
    bandwidth: float  # MB/s
    latency: float  # seconds
    busy_until: float = 0.0
    bytes_carried_mb: float = 0.0
    transfers: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("link latency must be non-negative")

    def nominal_time(self, size_mb: float) -> float:
        """Transfer time on an idle link."""
        return self.latency + size_mb / self.bandwidth

    def reserve(self, earliest: float, size_mb: float) -> Tuple[float, float]:
        """Serialize a transfer on this link; returns (start, end)."""
        start = max(earliest, self.busy_until)
        end = start + self.nominal_time(size_mb)
        self.busy_until = end
        self.bytes_carried_mb += size_mb
        self.transfers += 1
        return start, end

    def reset(self) -> None:
        """Clear contention and accounting state."""
        self.busy_until = 0.0
        self.bytes_carried_mb = 0.0
        self.transfers = 0


class Interconnect:
    """Directed-link network between named nodes.

    Build with one of the constructors (:meth:`uniform`, :meth:`switched`)
    or assemble links manually via :meth:`add_link`.
    """

    def __init__(self) -> None:
        self._links: Dict[Tuple[str, str], Link] = {}

    def add_link(self, link: Link) -> None:
        """Register a directed link (replacing any existing one)."""
        self._links[(link.src, link.dst)] = link

    def link(self, src: str, dst: str) -> Link:
        """The directed link src->dst; KeyError if absent."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst}") from None

    def has_link(self, src: str, dst: str) -> bool:
        """Whether a direct link src->dst exists."""
        return (src, dst) in self._links

    @property
    def links(self) -> List[Link]:
        """All links, in insertion order."""
        return list(self._links.values())

    def nominal_time(self, src: str, dst: str, size_mb: float) -> float:
        """Idle-network estimate of moving ``size_mb`` from src to dst.

        Same-node movement is free at this layer (the cluster adds disk
        costs); missing links raise KeyError so misconfigured topologies
        fail loudly rather than silently serializing through nothing.
        """
        if src == dst:
            return 0.0
        return self.link(src, dst).nominal_time(size_mb)

    def reserve(self, src: str, dst: str, earliest: float, size_mb: float) -> Tuple[float, float]:
        """Contention-aware reservation of a transfer; (start, end)."""
        if src == dst:
            return earliest, earliest
        return self.link(src, dst).reserve(earliest, size_mb)

    def total_traffic_mb(self) -> float:
        """Total bytes carried across all links since the last reset."""
        return sum(l.bytes_carried_mb for l in self._links.values())

    def reset(self) -> None:
        """Clear contention/accounting on every link."""
        for l in self._links.values():
            l.reset()

    # ---------------------------------------------------------------- #
    # constructors                                                     #
    # ---------------------------------------------------------------- #

    @classmethod
    def uniform(
        cls, node_names: Iterable[str], bandwidth: float = 1250.0, latency: float = 1e-4
    ) -> "Interconnect":
        """Full mesh with identical links between every ordered node pair.

        1250 MB/s ~ 10 GbE; latency default ~100 us.
        """
        net = cls()
        names = list(node_names)
        for a in names:
            for b in names:
                if a != b:
                    net.add_link(Link(a, b, bandwidth, latency))
        return net

    @classmethod
    def switched(
        cls,
        node_names: Iterable[str],
        edge_bandwidth: float = 1250.0,
        core_bandwidth: float = 5000.0,
        latency: float = 2e-4,
    ) -> "Interconnect":
        """Star fabric through a central switch.

        Each ordered pair gets a private edge-rate link, but a shared *core*
        link models the switch backplane: every transfer reserves both, so
        aggregate traffic beyond ``core_bandwidth`` queues.  Implemented by
        giving pair links the edge bandwidth and tracking the backplane as a
        single extra link named ``("<core>", "<core>")``.
        """
        net = cls()
        names = list(node_names)
        for a in names:
            for b in names:
                if a != b:
                    net.add_link(Link(a, b, edge_bandwidth, latency))
        net.add_link(Link("<core>", "<core>", core_bandwidth, 0.0))
        return net

    def core_link(self) -> Optional[Link]:
        """The shared backplane link for switched fabrics, if present."""
        return self._links.get(("<core>", "<core>"))

    def reserve_switched(
        self, src: str, dst: str, earliest: float, size_mb: float
    ) -> Tuple[float, float]:
        """Reservation that also queues on the core backplane when present."""
        if src == dst:
            return earliest, earliest
        start, end = self.reserve(src, dst, earliest, size_mb)
        core = self.core_link()
        if core is not None:
            cstart, cend = core.reserve(start, size_mb)
            if cend > end:
                end = cend
        return start, end
