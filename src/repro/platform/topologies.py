"""Structured interconnect topologies.

The default platforms use a uniform full mesh; real systems route through
structured fabrics where distance matters.  These constructors build an
:class:`~repro.platform.interconnect.Interconnect` whose per-pair link
latency grows with hop count (and, for tapered fat-trees, whose bandwidth
shrinks for core-crossing pairs), so data-locality effects extend beyond
"same node vs other node" to "how far is the other node".

All topologies keep the library's one-link-per-ordered-pair contention
model: each pair serializes its own transfers; the topology shapes the
pair's latency/bandwidth, not shared-path queueing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.platform.interconnect import Interconnect, Link


def _pairwise(
    names: Sequence[str],
    hop_fn,
    bandwidth_fn,
    per_hop_latency: float,
) -> Interconnect:
    net = Interconnect()
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            if a == b:
                continue
            hops = hop_fn(i, j)
            net.add_link(Link(
                a, b,
                bandwidth=bandwidth_fn(i, j, hops),
                latency=per_hop_latency * hops,
            ))
    return net


def fat_tree(
    node_names: Sequence[str],
    pod_size: int = 4,
    edge_bandwidth: float = 1250.0,
    oversubscription: float = 2.0,
    per_hop_latency: float = 5e-5,
) -> Interconnect:
    """A two-level tapered fat-tree.

    Nodes are grouped into pods of ``pod_size``; intra-pod pairs cross one
    edge switch (2 hops), inter-pod pairs climb to the core (4 hops) and
    see the tapered bandwidth ``edge_bandwidth / oversubscription``.
    """
    if pod_size < 1:
        raise ValueError("pod_size must be >= 1")
    if oversubscription < 1.0:
        raise ValueError("oversubscription must be >= 1")

    def pod(i: int) -> int:
        return i // pod_size

    def hops(i: int, j: int) -> int:
        return 2 if pod(i) == pod(j) else 4

    def bandwidth(i: int, j: int, _hops: int) -> float:
        if pod(i) == pod(j):
            return edge_bandwidth
        return edge_bandwidth / oversubscription

    return _pairwise(node_names, hops, bandwidth, per_hop_latency)


def torus_2d(
    node_names: Sequence[str],
    width: int = 0,
    link_bandwidth: float = 1250.0,
    per_hop_latency: float = 5e-5,
) -> Interconnect:
    """A 2-D wrap-around torus.

    Nodes are laid on a ``width x ceil(n/width)`` grid (default width:
    ~sqrt(n)); the hop count between two nodes is their wrap-around
    Manhattan distance, so neighbours talk fast and opposite corners pay.
    """
    n = len(node_names)
    if n == 0:
        raise ValueError("torus needs nodes")
    w = width or max(1, int(round(math.sqrt(n))))
    h = math.ceil(n / w)

    def coords(i: int) -> Tuple[int, int]:
        return i % w, i // w

    def hops(i: int, j: int) -> int:
        xi, yi = coords(i)
        xj, yj = coords(j)
        dx = min(abs(xi - xj), w - abs(xi - xj))
        dy = min(abs(yi - yj), h - abs(yi - yj))
        return max(1, dx + dy)

    return _pairwise(
        node_names, hops, lambda _i, _j, _h: link_bandwidth, per_hop_latency
    )


def dragonfly(
    node_names: Sequence[str],
    group_size: int = 4,
    local_bandwidth: float = 2500.0,
    global_bandwidth: float = 1250.0,
    per_hop_latency: float = 5e-5,
) -> Interconnect:
    """A dragonfly: all-to-all groups joined by global links.

    Intra-group pairs take 1 hop at the local rate; inter-group pairs take
    3 hops (local, global, local) at the global rate.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")

    def group(i: int) -> int:
        return i // group_size

    def hops(i: int, j: int) -> int:
        return 1 if group(i) == group(j) else 3

    def bandwidth(i: int, j: int, _hops: int) -> float:
        return local_bandwidth if group(i) == group(j) else global_bandwidth

    return _pairwise(node_names, hops, bandwidth, per_hop_latency)


TOPOLOGIES = {
    "uniform": lambda names, **kw: Interconnect.uniform(names, **kw),
    "switched": lambda names, **kw: Interconnect.switched(names, **kw),
    "fat-tree": fat_tree,
    "torus": torus_2d,
    "dragonfly": dragonfly,
}


def by_name(topology: str, node_names: Sequence[str], **kwargs) -> Interconnect:
    """Instantiate a topology by short name (see ``TOPOLOGIES``)."""
    try:
        factory = TOPOLOGIES[topology]
    except KeyError:
        raise KeyError(
            f"unknown topology {topology!r}; available: {sorted(TOPOLOGIES)}"
        ) from None
    return factory(node_names, **kwargs)
