"""Heterogeneous platform model.

Models the hardware substrate a discovery workflow runs on:

* :mod:`~repro.platform.devices` — device classes (CPU, GPU, FPGA, ...) and
  device specifications/instances.
* :mod:`~repro.platform.nodes` — compute nodes aggregating devices, local
  storage and a NIC.
* :mod:`~repro.platform.interconnect` — inter-node network topology with
  bandwidth/latency and a shared-link contention model.
* :mod:`~repro.platform.cluster` — the full platform: nodes + interconnect.
* :mod:`~repro.platform.perfmodel` — task execution-time model on a device.
* :mod:`~repro.platform.power` — per-device power/DVFS model.
* :mod:`~repro.platform.presets` — ready-made platform configurations used
  throughout the examples, tests and benchmarks.

Conventions: computational work is measured in Gop (abstract giga-operations),
device speed in Gop/s, data sizes in MB, bandwidth in MB/s, latency and time
in seconds, power in watts, energy in joules.
"""

from repro.platform.devices import Device, DeviceClass, DeviceSpec
from repro.platform.nodes import Node, NodeSpec
from repro.platform.interconnect import Interconnect, Link
from repro.platform.cluster import Cluster
from repro.platform.perfmodel import ExecutionModel
from repro.platform.power import DvfsState, PowerModel
from repro.platform import presets

__all__ = [
    "Device",
    "DeviceClass",
    "DeviceSpec",
    "Node",
    "NodeSpec",
    "Interconnect",
    "Link",
    "Cluster",
    "ExecutionModel",
    "DvfsState",
    "PowerModel",
    "presets",
]
