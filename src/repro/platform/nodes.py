"""Compute nodes: bundles of devices plus local storage and a NIC.

A node is the unit of data locality — files staged to a node's local store
are visible to every device on that node at disk bandwidth, while devices on
other nodes must pull them across the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.platform.devices import Device, DeviceClass, DeviceSpec


@dataclass(frozen=True)
class NodeSpec:
    """Immutable description of a node configuration.

    Attributes:
        name: Node name, unique within a cluster.
        device_specs: The devices installed on this node.
        disk_bandwidth: Local-store read/write bandwidth, MB/s.
        nic_bandwidth: Network interface bandwidth, MB/s (caps any single
            transfer in or out of the node regardless of link speeds).
        disk_capacity_gb: Local store size; staging fails beyond this.
    """

    name: str
    device_specs: tuple
    disk_bandwidth: float = 2000.0
    nic_bandwidth: float = 1250.0
    disk_capacity_gb: float = 4096.0

    def __post_init__(self) -> None:
        if not self.device_specs:
            raise ValueError(f"node {self.name!r} has no devices")
        if self.disk_bandwidth <= 0 or self.nic_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    @staticmethod
    def of(name: str, specs: Iterable[DeviceSpec], **kwargs) -> "NodeSpec":
        """Build a NodeSpec from any iterable of device specs."""
        return NodeSpec(name=name, device_specs=tuple(specs), **kwargs)


class Node:
    """A live node inside a cluster."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self.devices: List[Device] = []
        counters: dict = {}
        for dspec in spec.device_specs:
            idx = counters.get(dspec.name, 0)
            counters[dspec.name] = idx + 1
            self.devices.append(Device(dspec, node=self, index=idx))

    @property
    def name(self) -> str:
        """Node name (unique within its cluster)."""
        return self.spec.name

    @property
    def disk_bandwidth(self) -> float:
        """Local store bandwidth, MB/s."""
        return self.spec.disk_bandwidth

    @property
    def nic_bandwidth(self) -> float:
        """NIC bandwidth, MB/s."""
        return self.spec.nic_bandwidth

    def devices_of_class(self, device_class: DeviceClass) -> List[Device]:
        """All devices on this node of the given class."""
        return [d for d in self.devices if d.device_class == device_class]

    def device(self, uid: str) -> Device:
        """Look up a device on this node by uid."""
        for d in self.devices:
            if d.uid == uid:
                return d
        raise KeyError(f"node {self.name} has no device {uid!r}")

    def classes(self) -> List[DeviceClass]:
        """Distinct device classes present, in installation order."""
        seen: List[DeviceClass] = []
        for d in self.devices:
            if d.device_class not in seen:
                seen.append(d.device_class)
        return seen

    def reset(self) -> None:
        """Reset runtime state of every device."""
        for d in self.devices:
            d.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mix = ",".join(str(c) for c in self.classes())
        return f"<Node {self.name} [{mix}] x{len(self.devices)}>"
