"""The full heterogeneous platform: nodes + interconnect + models.

:class:`Cluster` is the object schedulers and the orchestrator are handed.
It owns:

* the set of :class:`~repro.platform.nodes.Node` instances,
* the :class:`~repro.platform.interconnect.Interconnect`,
* the :class:`~repro.platform.perfmodel.ExecutionModel`,

and provides the two views of data movement every scheduler/executor pair
needs — an idle-network *estimate* and a contention-aware *reservation*.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.platform.devices import Device, DeviceClass
from repro.platform.interconnect import Interconnect
from repro.platform.nodes import Node, NodeSpec
from repro.platform.perfmodel import ExecutionModel


class Cluster:
    """A named heterogeneous platform instance."""

    def __init__(
        self,
        name: str,
        node_specs: Iterable[NodeSpec],
        interconnect: Optional[Interconnect] = None,
        execution_model: Optional[ExecutionModel] = None,
        switched: bool = False,
        storage_bandwidth: float = 2000.0,
        storage_latency: float = 1e-3,
    ) -> None:
        self.name = name
        if storage_bandwidth <= 0:
            raise ValueError("storage_bandwidth must be positive")
        self.storage_bandwidth = storage_bandwidth
        self.storage_latency = storage_latency
        # Shared-storage egress frontier for the contention model: the
        # storage system serves one staging stream at a time at full rate.
        self._storage_busy_until = 0.0
        self.storage_bytes_served_mb = 0.0
        self.nodes: List[Node] = [Node(s) for s in node_specs]
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in cluster {name!r}: {names}")
        self.interconnect = interconnect or Interconnect.uniform(names)
        self.execution_model = execution_model or ExecutionModel()
        self.switched = switched
        self._node_by_name: Dict[str, Node] = {n.name: n for n in self.nodes}
        self._device_by_uid: Dict[str, Device] = {
            d.uid: d for n in self.nodes for d in n.devices
        }

    # ---------------------------------------------------------------- #
    # lookup                                                           #
    # ---------------------------------------------------------------- #

    @property
    def devices(self) -> List[Device]:
        """Every device in the cluster, node order then install order."""
        return [d for n in self.nodes for d in n.devices]

    def node(self, name: str) -> Node:
        """Node by name."""
        try:
            return self._node_by_name[name]
        except KeyError:
            raise KeyError(f"cluster {self.name!r} has no node {name!r}") from None

    def device(self, uid: str) -> Device:
        """Device by uid."""
        try:
            return self._device_by_uid[uid]
        except KeyError:
            raise KeyError(f"cluster {self.name!r} has no device {uid!r}") from None

    def devices_of_class(self, device_class: DeviceClass) -> List[Device]:
        """Every device of the given class."""
        return [d for d in self.devices if d.device_class == device_class]

    def device_classes(self) -> List[DeviceClass]:
        """Distinct device classes present, in discovery order."""
        seen: List[DeviceClass] = []
        for d in self.devices:
            if d.device_class not in seen:
                seen.append(d.device_class)
        return seen

    def alive_devices(self) -> List[Device]:
        """Devices that have not suffered a permanent fault."""
        return [d for d in self.devices if not d.failed]

    def eligible_devices(self, task) -> List[Device]:
        """Alive devices on which ``task`` may execute."""
        model = self.execution_model
        return [d for d in self.alive_devices() if model.eligible(task, d.spec)]

    # ---------------------------------------------------------------- #
    # data movement                                                    #
    # ---------------------------------------------------------------- #

    def transfer_estimate(self, src_node: str, dst_node: str, size_mb: float) -> float:
        """Idle-network time to move ``size_mb`` between nodes.

        Same-node movement costs a local-disk pass; cross-node movement pays
        the link plus is capped by both NICs, plus a disk write at the
        destination.
        """
        if size_mb < 0:
            raise ValueError("transfer size must be non-negative")
        if size_mb == 0:
            return 0.0
        dst = self.node(dst_node)
        if src_node == dst_node:
            return size_mb / dst.disk_bandwidth
        src = self.node(src_node)
        link = self.interconnect.link(src_node, dst_node)
        eff_bw = min(link.bandwidth, src.nic_bandwidth, dst.nic_bandwidth)
        return link.latency + size_mb / eff_bw + size_mb / dst.disk_bandwidth

    def reserve_transfer(
        self, src_node: str, dst_node: str, earliest: float, size_mb: float
    ) -> Tuple[float, float]:
        """Contention-aware transfer reservation; returns (start, end).

        Cross-node transfers serialize on their directed link (and on the
        switch backplane for switched fabrics); the NIC/disk portions are
        folded into the occupied duration.
        """
        if size_mb == 0:
            return earliest, earliest
        duration = self.transfer_estimate(src_node, dst_node, size_mb)
        if src_node == dst_node:
            return earliest, earliest + duration
        link = self.interconnect.link(src_node, dst_node)
        start = max(earliest, link.busy_until)
        end = start + duration
        link.busy_until = end
        link.bytes_carried_mb += size_mb
        link.transfers += 1
        if self.switched:
            core = self.interconnect.core_link()
            if core is not None:
                cstart = max(start, core.busy_until)
                cend = cstart + size_mb / core.bandwidth
                core.busy_until = cend
                core.bytes_carried_mb += size_mb
                core.transfers += 1
                if cend > end:
                    end = cend
        return start, end

    # ---------------------------------------------------------------- #
    # summaries / lifecycle                                            #
    # ---------------------------------------------------------------- #

    def staging_estimate(self, dst_node: str, size_mb: float) -> float:
        """Idle-system time to stage ``size_mb`` from shared storage.

        The stream is capped by the storage system, the destination NIC and
        the destination disk (written through to the local store so later
        local reads are free).
        """
        if size_mb < 0:
            raise ValueError("staging size must be non-negative")
        if size_mb == 0:
            return 0.0
        dst = self.node(dst_node)
        eff_bw = min(self.storage_bandwidth, dst.nic_bandwidth)
        return self.storage_latency + size_mb / eff_bw + size_mb / dst.disk_bandwidth

    def reserve_staging(
        self, dst_node: str, earliest: float, size_mb: float
    ) -> Tuple[float, float]:
        """Contention-aware staging reservation; returns (start, end).

        Concurrent stagings serialize on the shared storage egress, which is
        what makes data-locality policies matter even when the inter-node
        fabric is fast.
        """
        if size_mb == 0:
            return earliest, earliest
        duration = self.staging_estimate(dst_node, size_mb)
        start = max(earliest, self._storage_busy_until)
        end = start + duration
        self._storage_busy_until = end
        self.storage_bytes_served_mb += size_mb
        return start, end

    def total_speed(self) -> float:
        """Sum of device speeds (a crude capacity figure), Gop/s."""
        return sum(d.speed for d in self.devices)

    def reference_speed(self) -> float:
        """Speed of the fastest CPU device (speedup baseline); falls back to
        the slowest device if the cluster has no CPUs."""
        cpus = self.devices_of_class(DeviceClass.CPU)
        if cpus:
            return max(d.speed for d in cpus)
        return min(d.speed for d in self.devices)

    def describe(self) -> str:
        """Human-readable one-paragraph platform summary."""
        per_class: Dict[str, int] = {}
        for d in self.devices:
            key = str(d.device_class)
            per_class[key] = per_class.get(key, 0) + 1
        mix = ", ".join(f"{v}x {k}" for k, v in sorted(per_class.items()))
        return (
            f"cluster {self.name!r}: {len(self.nodes)} nodes, "
            f"{len(self.devices)} devices ({mix}), "
            f"{self.total_speed():.0f} Gop/s aggregate"
        )

    def reset(self) -> None:
        """Clear all runtime state (device schedules, link contention)."""
        for n in self.nodes:
            n.reset()
        self.interconnect.reset()
        self._storage_busy_until = 0.0
        self.storage_bytes_served_mb = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {self.name} nodes={len(self.nodes)} devices={len(self.devices)}>"
