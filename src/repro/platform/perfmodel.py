"""Task execution-time model on heterogeneous devices.

The model maps (task, device spec) to a runtime.  Three ingredients:

* **Work & affinity** — each task carries ``work`` in Gop and a per
  device-class *affinity* multiplier: effective speed on a device is
  ``spec.speed * affinity[class]``.  Affinity 0 (or absence, for
  non-CPU classes) marks the class ineligible.  This is how "a GEMM stage is
  20x on GPU, an I/O stage is not" enters the system.
* **Launch overhead** — accelerators pay a fixed per-task offload overhead
  (kernel launch, DMA setup, FPGA pipeline fill), so short tasks do not
  benefit from them.  The crossover this induces is load-bearing for the
  heterogeneity experiments (F3).
* **Noise** — actual runtimes are the estimate times a lognormal factor;
  schedulers see the deterministic estimate, the executor samples the noisy
  truth.  An additional *estimate error* factor models systematically wrong
  profiling (experiment F4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.platform.devices import DeviceClass, DeviceSpec
from repro.platform.power import DvfsState

#: Default per-class launch overhead in seconds.
DEFAULT_OVERHEADS: Dict[DeviceClass, float] = {
    DeviceClass.CPU: 0.0,
    DeviceClass.GPU: 0.05,
    DeviceClass.FPGA: 0.20,
    DeviceClass.TPU: 0.08,
    DeviceClass.DSP: 0.01,
    DeviceClass.MANYCORE: 0.005,
}


@dataclass
class ExecutionModel:
    """Computes task runtimes on device specs.

    Attributes:
        overheads: Per-device-class fixed launch overhead (seconds).
        noise_cv: Coefficient of variation of the lognormal runtime noise
            applied by :meth:`sample`; 0 disables noise.
        estimate_error_cv: Coefficient of variation of a *per-task*
            multiplicative error applied to estimates relative to truth;
            models bad profiling for the robustness experiments.
    """

    overheads: Dict[DeviceClass, float] = field(
        default_factory=lambda: dict(DEFAULT_OVERHEADS)
    )
    noise_cv: float = 0.0
    estimate_error_cv: float = 0.0

    def eligible(self, task, spec: DeviceSpec) -> bool:
        """Whether ``task`` may run on devices of ``spec``'s class."""
        return task.affinity_for(spec.device_class) > 0.0

    def effective_speed(
        self, task, spec: DeviceSpec, dvfs: Optional[DvfsState] = None
    ) -> float:
        """Gop/s the device delivers to this particular task."""
        affinity = task.affinity_for(spec.device_class)
        if affinity <= 0.0:
            return 0.0
        speed = spec.speed * affinity
        if dvfs is not None:
            speed *= dvfs.freq_scale
        return speed

    def estimate(
        self, task, spec: DeviceSpec, dvfs: Optional[DvfsState] = None
    ) -> float:
        """Deterministic runtime estimate used by schedulers.

        Raises ValueError for ineligible (task, device-class) pairs so that
        scheduler bugs surface instead of producing zero-cost placements.
        """
        speed = self.effective_speed(task, spec, dvfs)
        if speed <= 0.0:
            raise ValueError(
                f"task {task.name!r} is not eligible on class {spec.device_class}"
            )
        return self.overheads.get(spec.device_class, 0.0) + task.work / speed

    def sample(
        self,
        task,
        spec: DeviceSpec,
        rng: np.random.Generator,
        dvfs: Optional[DvfsState] = None,
    ) -> float:
        """Actual (noisy) runtime drawn for one execution."""
        base = self.estimate(task, spec, dvfs)
        if self.noise_cv <= 0.0:
            return base
        return base * float(_lognormal_factor(rng, self.noise_cv))

    def perturbed_estimate(
        self,
        task,
        spec: DeviceSpec,
        rng: np.random.Generator,
        dvfs: Optional[DvfsState] = None,
    ) -> float:
        """Estimate as a (mis)profiler would report it.

        Applies the ``estimate_error_cv`` multiplicative error; with zero
        error this equals :meth:`estimate`.
        """
        base = self.estimate(task, spec, dvfs)
        if self.estimate_error_cv <= 0.0:
            return base
        return base * float(_lognormal_factor(rng, self.estimate_error_cv))

    def best_estimate(self, task, specs) -> float:
        """Best (minimum) estimate over an iterable of eligible specs."""
        times = [self.estimate(task, s) for s in specs if self.eligible(task, s)]
        if not times:
            raise ValueError(f"task {task.name!r} is eligible on no given device")
        return min(times)

    def mean_estimate(self, task, specs) -> float:
        """Mean estimate over eligible specs (the classical HEFT w-bar)."""
        times = [self.estimate(task, s) for s in specs if self.eligible(task, s)]
        if not times:
            raise ValueError(f"task {task.name!r} is eligible on no given device")
        return float(np.mean(times))


def _lognormal_factor(rng: np.random.Generator, cv: float) -> float:
    """A unit-mean lognormal multiplier with coefficient of variation cv."""
    sigma2 = np.log(1.0 + cv * cv)
    mu = -0.5 * sigma2
    return float(rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))
