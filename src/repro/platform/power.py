"""Per-device power and DVFS model.

Each device carries a :class:`PowerModel` with an idle draw, a full-load
draw, and an optional ladder of :class:`DvfsState` operating points.  A DVFS
state scales device speed by ``freq_scale`` and busy power by
``power_scale`` — the classical cubic-ish relation between frequency and
dynamic power is captured by construction of the ladder in
:func:`default_dvfs_ladder`, not hard-coded into the model.

Energy is integrated by the accounting layer (:mod:`repro.energy`) from the
busy intervals a device records; this module only answers "what does this
device draw in state S while busy/idle".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class DvfsState:
    """One DVFS operating point.

    ``freq_scale`` multiplies device speed; ``power_scale`` multiplies the
    *dynamic* (busy - idle) portion of the power draw.
    """

    name: str
    freq_scale: float
    power_scale: float

    def __post_init__(self) -> None:
        if not (0.0 < self.freq_scale <= 1.5):
            raise ValueError(f"freq_scale out of range: {self.freq_scale}")
        if not (0.0 < self.power_scale <= 2.5):
            raise ValueError(f"power_scale out of range: {self.power_scale}")


def default_dvfs_ladder() -> List[DvfsState]:
    """A four-point ladder with near-cubic dynamic-power scaling.

    power_scale ~= freq_scale**3 rounded to friendly values, matching the
    classical P_dyn ∝ f V² with V roughly proportional to f.
    """
    return [
        DvfsState("p0", freq_scale=1.00, power_scale=1.000),
        DvfsState("p1", freq_scale=0.85, power_scale=0.614),
        DvfsState("p2", freq_scale=0.70, power_scale=0.343),
        DvfsState("p3", freq_scale=0.55, power_scale=0.166),
    ]


@dataclass(frozen=True)
class PowerModel:
    """Idle/busy power with an optional DVFS ladder.

    Attributes:
        idle_watts: Draw while powered on but not executing.
        busy_watts: Draw at full load in the highest DVFS state.
        dvfs_states: Available operating points; empty means fixed frequency.
        sleep_watts: Draw in deep sleep (dynamic resource sleep), used by
            energy governors that power-gate idle accelerators.
    """

    idle_watts: float = 10.0
    busy_watts: float = 100.0
    dvfs_states: List[DvfsState] = field(default_factory=list)
    sleep_watts: float = 0.5

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.busy_watts < 0 or self.sleep_watts < 0:
            raise ValueError("power draws must be non-negative")
        if self.busy_watts < self.idle_watts:
            raise ValueError(
                f"busy power ({self.busy_watts}W) below idle ({self.idle_watts}W)"
            )

    @property
    def dynamic_watts(self) -> float:
        """Busy-minus-idle draw, the part DVFS scales."""
        return self.busy_watts - self.idle_watts

    def state(self, name: str) -> DvfsState:
        """Look up a DVFS state by name."""
        for s in self.dvfs_states:
            if s.name == name:
                return s
        raise KeyError(f"no DVFS state named {name!r}")

    def busy_power(self, state: Optional[DvfsState] = None) -> float:
        """Power draw while executing, in the given (or highest) state."""
        if state is None:
            return self.busy_watts
        return self.idle_watts + self.dynamic_watts * state.power_scale

    def idle_power(self, asleep: bool = False) -> float:
        """Power draw while not executing."""
        return self.sleep_watts if asleep else self.idle_watts

    def energy(self, busy_seconds: float, idle_seconds: float,
               state: Optional[DvfsState] = None, asleep_when_idle: bool = False) -> float:
        """Joules consumed over the given busy/idle durations."""
        if busy_seconds < 0 or idle_seconds < 0:
            raise ValueError("durations must be non-negative")
        return (self.busy_power(state) * busy_seconds
                + self.idle_power(asleep_when_idle) * idle_seconds)

    def with_dvfs(self) -> "PowerModel":
        """A copy of this model equipped with the default DVFS ladder."""
        return PowerModel(
            idle_watts=self.idle_watts,
            busy_watts=self.busy_watts,
            dvfs_states=default_dvfs_ladder(),
            sleep_watts=self.sleep_watts,
        )
