"""Command-line interface: ``repro-flow``.

Subcommands:

* ``run`` — execute one workflow on a preset cluster and print the
  summary (optionally an ASCII Gantt chart).
* ``compare`` — run several schedulers on the same workflow and print a
  comparison table.
* ``exp`` — run one of the paper's experiments (t1..t5, f1..f7) and print
  its tables/series.
* ``campaign`` — run several experiments through one shared process pool
  and result cache, printing a timing/cache summary.
* ``serve`` — run the campaign service API over a job store: submit
  campaigns and query cell states over HTTP (see :mod:`repro.service`).
* ``worker`` — run a lease-based service worker against the same store,
  executing cells into the shared result cache.
* ``generate`` — emit a workflow as JSON for inspection or reuse.
* ``check`` — statically check a (workflow, cluster, scheduler) cell
  without simulating: model checker + schedule audit, nonzero exit on
  blocking findings.
* ``lint`` — determinism lint over simulator source trees.
* ``list`` — show available workflows, schedulers, presets, experiments.

``exp`` and ``campaign`` accept ``--jobs N`` (process-pool width),
``--cache-dir PATH`` (on-disk memoization of simulation cells; delete the
directory to invalidate) and ``--resume`` (continue a killed run from the
cache's shard index: only cells it never finished re-simulate).  Fault
tolerance rides the same flags: ``--max-retries N`` retries transient
worker failures in deterministic rounds, ``--on-unhealthy
{throttle,halt,ignore}`` sets the health gate's response to a degraded or
unstable campaign (``blocked`` always halts) and ``--retry-failed`` gives
quarantined cells from a previous run another attempt instead of
recalling their cached failure.  ``run``, ``exp`` and ``campaign`` accept
``--precheck`` to gate every cell on the static model checker first, and
``--metrics-out``/``--trace-out`` to export observability artifacts: a
metrics snapshot JSON and a Chrome ``trace_event`` timeline (per-run for
``run``, campaign-level for ``exp``/``campaign``); see
:mod:`repro.observe`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import repro.core  # noqa: F401  (registers hdws in the scheduler registry)
from repro import compare_schedulers, run_workflow
from repro.analysis.compare import ComparisonTable
from repro.analysis.gantt import ascii_gantt
from repro.experiments import REGISTRY as EXPERIMENTS
from repro.platform import presets
from repro.schedulers import REGISTRY as SCHEDULERS
from repro.workflows.generators import ALL_GENERATORS, by_name
from repro.workflows.serialize import workflow_to_json


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workflow", default="montage", choices=sorted(ALL_GENERATORS))
    parser.add_argument("--size", type=int, default=50, help="approximate task count")
    parser.add_argument("--cluster", default="hybrid", choices=sorted(presets.PRESETS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--noise", type=float, default=0.1, help="runtime noise CV")


def _make_inputs(args):
    wf = by_name(args.workflow, size=args.size, seed=args.seed)
    cluster = presets.by_name(args.cluster)
    return wf, cluster


def cmd_run(args) -> int:
    """Execute one workflow and print its summary."""
    wf, cluster = _make_inputs(args)
    result = run_workflow(
        wf, cluster, scheduler=args.scheduler, mode=args.mode,
        seed=args.seed, noise_cv=args.noise,
        sanitize=True if args.sanitize else None,
        precheck=True if args.precheck else None,
        metrics=True if (args.metrics or args.metrics_out) else None,
    )
    print(f"workflow : {wf.name} ({wf.n_tasks} tasks, {wf.n_edges} edges)")
    print(f"cluster  : {cluster.describe()}")
    print(f"scheduler: {args.scheduler} [{args.mode}]")
    for key, value in result.summary().items():
        print(f"{key:12s}: {value:.3f}")
    if args.gantt:
        print()
        print(ascii_gantt(result.execution.trace))
    if args.breakdown:
        from repro.analysis.breakdown import render_breakdown

        print()
        print(render_breakdown(cluster, result.execution.trace,
                               result.makespan))
    if args.metrics and result.metrics is not None:
        print()
        print(render_metrics(result.metrics))
    if args.metrics_out:
        from repro.observe import write_json

        write_json(args.metrics_out, result.metrics or {})
        print(f"metrics -> {args.metrics_out}")
    if args.trace_out:
        from repro.observe import chrome_trace, spans_from_trace, write_json

        spans = spans_from_trace(result.execution.trace)
        write_json(args.trace_out, chrome_trace(
            spans,
            metadata={
                "workflow": wf.name, "cluster": cluster.name,
                "scheduler": args.scheduler, "seed": args.seed,
            },
        ))
        print(f"trace   -> {args.trace_out} "
              f"(open at https://ui.perfetto.dev or chrome://tracing)")
    return 0 if result.success else 1


def render_metrics(snapshot) -> str:
    """Compact text rendering of a metrics snapshot (counters/gauges)."""
    lines = ["-- metrics --"]
    for section in ("counters", "gauges"):
        for name, value in snapshot.get(section, {}).items():
            lines.append(f"{name:24s}: {value:.3f}")
    for name, h in snapshot.get("histograms", {}).items():
        lines.append(
            f"{name:24s}: n={h['count']} mean={h['sum'] / h['count']:.3f}"
            if h["count"] else f"{name:24s}: n=0"
        )
    return "\n".join(lines)


def cmd_compare(args) -> int:
    """Compare schedulers on one workflow."""
    wf, cluster = _make_inputs(args)
    names = args.schedulers.split(",")
    for name in names:
        if name not in SCHEDULERS:
            print(f"unknown scheduler {name!r}; see `repro-flow list`", file=sys.stderr)
            return 2
    results = compare_schedulers(
        wf, cluster, names, seed=args.seed, noise_cv=args.noise
    )
    table = ComparisonTable("metric")
    for name, result in results.items():
        table.set("makespan (s)", name, result.makespan)
        table.set("energy (J)", name, result.energy.total_joules)
        table.set("data moved (MB)", name,
                  result.execution.network_mb + result.execution.staging_mb)
    print(f"{wf.name} on {cluster.describe()}")
    print(table.render())
    return 0


def validate_runner_args(args) -> Optional[str]:
    """Up-front validation of flag combinations; the problem, or None.

    Runs right after parsing, before any pool/store/cache is touched, so
    a bad combination fails in milliseconds with a clear message instead
    of surfacing after pool spawn.  Shared by ``exp``/``campaign`` and
    the service commands (``worker``/``serve``), which reuse the same
    cache flags; :func:`_campaign_runner` keeps the same check as a
    backstop for programmatic callers.
    """
    resume = getattr(args, "resume", False)
    cache_dir = getattr(args, "cache_dir", None)
    no_cache = getattr(args, "no_cache", False)
    if resume and (not cache_dir or no_cache):
        return (
            "--resume needs --cache-dir (and no --no-cache): the cache's "
            "shard index is the record of completed cells"
        )
    if no_cache and not cache_dir:
        return "--no-cache without --cache-dir has nothing to disable"
    if getattr(args, "command", None) == "worker" and not cache_dir:
        return (
            "worker needs --cache-dir: the shared result cache is where "
            "completed cells live (and what makes service records "
            "byte-identical to inline runs)"
        )
    return None


def _campaign_runner(args):
    """A CampaignRunner honouring --jobs / --cache-dir / --no-cache / --resume.

    ``--resume`` requires a cache directory: completed cells are keyed in
    the cache's shard index, so re-running with the same directory only
    simulates the cells a killed run never finished.  Stale temp files a
    crashed writer left behind are reclaimed on the way in.
    """
    from repro.runner import CampaignRunner, ResultCache

    cache = None
    if getattr(args, "cache_dir", None) and not getattr(args, "no_cache", False):
        cache = ResultCache(args.cache_dir)
        if getattr(args, "resume", False):
            cache.gc_tmp()
    elif getattr(args, "resume", False):
        raise SystemExit(
            "--resume needs --cache-dir (and no --no-cache): the cache's "
            "shard index is the record of completed cells"
        )
    return CampaignRunner(
        jobs=max(args.jobs, 1), cache=cache,
        max_retries=max(getattr(args, "max_retries", 0) or 0, 0),
        on_unhealthy=getattr(args, "on_unhealthy", "throttle"),
        retry_failed=getattr(args, "retry_failed", False),
    )


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation cells")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir and recompute everything")
    parser.add_argument("--resume", action="store_true",
                        help="continue a killed run: with --cache-dir, only "
                             "cells missing from the cache index re-simulate")
    parser.add_argument("--max-retries", type=int, default=0,
                        help="retry transient worker failures up to N times "
                             "per cell before quarantining")
    parser.add_argument("--on-unhealthy", default="throttle",
                        choices=("throttle", "halt", "ignore"),
                        help="health-gate response to a degraded/unstable "
                             "campaign (blocked always halts)")
    parser.add_argument("--retry-failed", action="store_true",
                        help="re-run cells whose failure is cached instead "
                             "of recalling the cached failure")
    parser.add_argument("--sanitize", action="store_true",
                        help="audit every run with the simulation sanitizer")
    parser.add_argument("--precheck", action="store_true",
                        help="statically check every cell before simulating")
    parser.add_argument("--metrics-out", default=None,
                        help="write campaign-level metrics JSON here")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome trace_event timeline here")


def _sanitize_overrides(args):
    """A context manager applying --sanitize/--precheck to every cell."""
    from repro.experiments.common import use_run_overrides

    overrides = {}
    if getattr(args, "sanitize", False):
        overrides["sanitize"] = True
    if getattr(args, "precheck", False):
        overrides["precheck"] = True
    return use_run_overrides(**overrides)  # no-op when empty


def _write_campaign_artifacts(
    args, seconds, simulated, cache_stats, runner=None
) -> None:
    """Honour --metrics-out/--trace-out for exp/campaign invocations.

    Experiment runs fan cells over worker processes, so there is no
    single simulation trace; the artifacts here are *campaign-level*: a
    metrics JSON (per-experiment wall seconds, cells simulated, cache
    economics, fault-tolerance accounting and the structured event log —
    every health-gate decision included) and a wall-clock timeline with
    one span per experiment.
    """
    if getattr(args, "metrics_out", None):
        from repro.observe import events_snapshot, write_json

        payload = {
            "schema": "repro.campaign-metrics/v1",
            "experiments": dict(seconds),
            "total_wall_s": sum(seconds.values()),
            "cells_simulated": simulated,
            "cache": cache_stats,
            "events": events_snapshot(),
        }
        if runner is not None:
            payload["faults"] = {
                "failed": runner.failed,
                "retried": runner.retried,
                "quarantined": runner.quarantine_report(),
                "health": runner.health.health()[0],
            }
        write_json(args.metrics_out, payload)
        print(f"metrics -> {args.metrics_out}")
    if getattr(args, "trace_out", None):
        from repro.observe import Span, chrome_trace, write_json

        spans, t = [], 0.0
        for i, (exp_id, secs) in enumerate(seconds.items()):
            spans.append(Span(
                sid=i, name=f"exp {exp_id}", track="campaign",
                start=t, end=t + secs,
            ))
            t += secs
        write_json(args.trace_out, chrome_trace(
            spans, process_name="repro-flow campaign",
        ))
        print(f"trace   -> {args.trace_out}")


def cmd_exp(args) -> int:
    """Run one paper experiment and print its rendering."""
    from repro.observe import clock
    from repro.runner import use_runner

    runner = EXPERIMENTS[args.id]
    campaign_runner = _campaign_runner(args)
    t0 = clock()
    # The runner is a context manager: leaving the block releases the
    # persistent worker pool and flushes the cache's shard index.
    with campaign_runner, use_runner(campaign_runner), _sanitize_overrides(args):
        result = runner(quick=not args.full, seed=args.seed)
    wall = clock() - t0
    print(result.render())
    _write_campaign_artifacts(
        args, {args.id: wall}, campaign_runner.simulated,
        campaign_runner.cache.stats.as_dict() if campaign_runner.cache else None,
        runner=campaign_runner,
    )
    return 0


def cmd_campaign(args) -> int:
    """Run several experiments through one shared pool + cache."""
    from repro.runner import run_campaign

    ids = args.ids.split(",") if args.ids else sorted(EXPERIMENTS)
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; see `repro-flow list`",
                  file=sys.stderr)
            return 2
    with _campaign_runner(args) as campaign_runner, _sanitize_overrides(args):
        report = run_campaign(
            ids, runner=campaign_runner,
            quick=not args.full, seed=args.seed,
        )
    for exp_id in ids:
        print(report.results[exp_id].render())
        print()
    print(report.render_summary())
    _write_campaign_artifacts(
        args, report.seconds, report.simulated, report.cache_stats,
        runner=campaign_runner,
    )
    return 0


def cmd_serve(args) -> int:
    """Run the campaign service JSON API over a job store."""
    from repro.service.api import serve
    from repro.service.store import JobStore

    store = JobStore(args.store)
    try:
        serve(store, host=args.host, port=args.port, emit=print)
    finally:
        store.close()
    return 0


def cmd_worker(args) -> int:
    """Run one lease-based worker against a job store + shared cache."""
    from repro.runner import CampaignRunner, ResultCache
    from repro.service.store import JobStore
    from repro.service.worker import ServiceWorker

    store = JobStore(args.store)
    runner = CampaignRunner(
        jobs=max(args.jobs, 1),
        cache=ResultCache(args.cache_dir),
        max_retries=max(args.max_retries or 0, 0),
        failure_mode="record",
        on_unhealthy=args.on_unhealthy,
        retry_failed=args.retry_failed,
    )
    worker = ServiceWorker(
        store, runner,
        worker_id=args.worker_id,
        batch=max(args.batch, 1),
        ttl=max(args.ttl, 1),
        stall_after=args.stall_after,
        stall_marker=args.stall_marker,
        emit=print,
    )
    try:
        with runner:
            stats = worker.run(
                keep_alive=args.keep_alive, max_polls=args.max_polls
            )
    finally:
        store.close()
    for key, value in stats.as_dict().items():
        print(f"{key:12s}: {value}")
    return 1 if stats.halted else 0


def cmd_generate(args) -> int:
    """Emit a workflow document as JSON."""
    wf = by_name(args.workflow, size=args.size, seed=args.seed)
    text = workflow_to_json(wf)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {wf.n_tasks}-task workflow to {args.output}")
    else:
        print(text)
    return 0


def cmd_check(args) -> int:
    """Statically check one cell; nonzero exit on blocking findings."""
    from repro.schedulers.base import SchedulingContext, SchedulingError
    from repro.staticcheck import audit_schedule, check_run, error

    if args.input:
        from repro.workflows.serialize import workflow_from_json

        with open(args.input, encoding="utf-8") as fh:
            wf = workflow_from_json(fh.read())
    else:
        wf = by_name(args.workflow, size=args.size, seed=args.seed)
    cluster = presets.by_name(args.cluster)
    report = check_run(wf, cluster)
    if report.ok and args.scheduler != "none":
        try:
            plan = SCHEDULERS[args.scheduler]().schedule(
                SchedulingContext(wf, cluster)
            )
        except SchedulingError as exc:
            report.extend([
                error(
                    "plan-failure", "plan", args.scheduler,
                    f"scheduler {args.scheduler!r} found no feasible "
                    f"plan: {exc}",
                ),
            ])
        else:
            report.extend(audit_schedule(plan, wf, cluster))
    print(report.render())
    return 0 if report.ok else 1


def cmd_lint(args) -> int:
    """Determinism lint over source trees; nonzero exit on findings."""
    from repro.staticcheck.lint import main as lint_main

    argv = list(args.paths)
    if args.allowlist:
        argv += ["--allowlist", args.allowlist]
    if args.deep:
        argv += ["--deep"]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.json_out:
        argv += ["--json", args.json_out]
    if args.sarif_out:
        argv += ["--sarif", args.sarif_out]
    if args.prune:
        argv += ["--prune"]
    return lint_main(argv)


def cmd_ensemble(args) -> int:
    """Run a small ensemble under every sharing discipline."""
    from repro.core.ensemble import DISCIPLINES, EnsembleMember, EnsembleRunner
    from repro.core.orchestrator import RunConfig

    members = []
    for i, spec in enumerate(args.members.split(",")):
        gen_name, _sep, size_text = spec.partition(":")
        if gen_name not in ALL_GENERATORS:
            print(f"unknown workflow {gen_name!r}; see `repro-flow list`",
                  file=sys.stderr)
            return 2
        size = int(size_text) if size_text else args.size
        members.append(EnsembleMember(
            f"{gen_name}{i}",
            by_name(gen_name, size=size, seed=args.seed + i),
            priority=float(len(args.members) - i),
        ))
    cluster = presets.by_name(args.cluster)
    runner = EnsembleRunner(
        cluster, RunConfig(seed=args.seed, noise_cv=args.noise)
    )
    table = ComparisonTable("discipline")
    for discipline in DISCIPLINES:
        res = runner.run(members, discipline=discipline)
        table.set(discipline, "makespan (s)", res.makespan)
        table.set(discipline, "mean slowdown", res.mean_slowdown)
        table.set(discipline, "throughput (wf/s)", res.throughput())
    print(f"{len(members)} members on {cluster.describe()}")
    print(table.render())
    return 0


def cmd_list(_args) -> int:
    """Show everything addressable by name."""
    print("workflows :", ", ".join(sorted(ALL_GENERATORS)))
    print("schedulers:", ", ".join(sorted(SCHEDULERS)))
    print("clusters  :", ", ".join(sorted(presets.PRESETS)))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description="Heterogeneous discovery-workflow orchestration testbed",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute one workflow")
    _add_common(p_run)
    p_run.add_argument("--scheduler", default="hdws", choices=sorted(SCHEDULERS))
    p_run.add_argument("--mode", default="static",
                       choices=("static", "dynamic", "adaptive"))
    p_run.add_argument("--gantt", action="store_true", help="print ASCII Gantt")
    p_run.add_argument("--breakdown", action="store_true",
                       help="print per-category/class profiling tables")
    p_run.add_argument("--sanitize", action="store_true",
                       help="audit the run with the simulation sanitizer")
    p_run.add_argument("--precheck", action="store_true",
                       help="statically check the cell before simulating")
    p_run.add_argument("--metrics", action="store_true",
                       help="collect run metrics and print a summary")
    p_run.add_argument("--metrics-out", default=None,
                       help="write the run's metrics snapshot JSON here")
    p_run.add_argument("--trace-out", default=None,
                       help="write a Chrome trace_event timeline here "
                            "(open in Perfetto / chrome://tracing)")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare schedulers")
    _add_common(p_cmp)
    p_cmp.add_argument("--schedulers", default="hdws,heft,minmin,mct")
    p_cmp.set_defaults(func=cmd_compare)

    p_exp = sub.add_parser("exp", help="run a paper experiment")
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--full", action="store_true",
                       help="full-size run (slower)")
    p_exp.add_argument("--seed", type=int, default=0)
    _add_runner_flags(p_exp)
    p_exp.set_defaults(func=cmd_exp)

    p_camp = sub.add_parser(
        "campaign", help="run several experiments via one pool + cache"
    )
    p_camp.add_argument(
        "ids", nargs="?", default=None,
        help="comma-separated experiment ids (default: all)",
    )
    p_camp.add_argument("--full", action="store_true",
                        help="full-size runs (slower)")
    p_camp.add_argument("--seed", type=int, default=0)
    _add_runner_flags(p_camp)
    p_camp.set_defaults(func=cmd_campaign)

    p_srv = sub.add_parser(
        "serve", help="run the campaign service JSON API"
    )
    p_srv.add_argument("--store", required=True,
                       help="path of the sqlite job-store file")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8765,
                       help="listen port (0 picks a free one)")
    p_srv.set_defaults(func=cmd_serve)

    p_wrk = sub.add_parser(
        "worker", help="run a lease-based campaign service worker"
    )
    p_wrk.add_argument("--store", required=True,
                       help="path of the sqlite job-store file")
    p_wrk.add_argument("--cache-dir", required=True,
                       help="shared on-disk result cache directory")
    p_wrk.add_argument("--jobs", type=int, default=1,
                       help="worker processes for simulation cells")
    p_wrk.add_argument("--max-retries", type=int, default=2,
                       help="retry transient cell failures up to N times "
                            "before quarantining")
    p_wrk.add_argument("--on-unhealthy", default="throttle",
                       choices=("throttle", "halt", "ignore"),
                       help="health-gate response to a degraded/unstable "
                            "campaign (blocked always halts)")
    p_wrk.add_argument("--retry-failed", action="store_true",
                       help="re-run cells whose failure is cached instead "
                            "of recalling the cached failure")
    p_wrk.add_argument("--worker-id", default=None,
                       help="stable worker identity (default: w<pid>)")
    p_wrk.add_argument("--batch", type=int, default=8,
                       help="cells leased per poll")
    p_wrk.add_argument("--ttl", type=int, default=12,
                       help="lease time-to-live in logical store ticks")
    p_wrk.add_argument("--keep-alive", action="store_true",
                       help="keep polling after the store drains "
                            "(daemon mode; default exits on drain)")
    p_wrk.add_argument("--max-polls", type=int, default=None,
                       help="hard bound on store polls (safety net)")
    p_wrk.add_argument("--stall-after", type=int, default=None,
                       help=argparse.SUPPRESS)  # crash-harness hook
    p_wrk.add_argument("--stall-marker", default=None,
                       help=argparse.SUPPRESS)  # crash-harness hook
    p_wrk.set_defaults(func=cmd_worker)

    p_gen = sub.add_parser("generate", help="emit a workflow as JSON")
    p_gen.add_argument("--workflow", default="montage",
                       choices=sorted(ALL_GENERATORS))
    p_gen.add_argument("--size", type=int, default=50)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--output", default=None)
    p_gen.set_defaults(func=cmd_generate)

    p_chk = sub.add_parser(
        "check", help="statically check a cell without simulating"
    )
    _add_common(p_chk)
    p_chk.add_argument(
        "--scheduler", default="hdws",
        choices=sorted(SCHEDULERS) + ["none"],
        help="scheduler whose static plan to audit ('none' skips the audit)",
    )
    p_chk.add_argument(
        "--input", default=None,
        help="check a workflow JSON file instead of generating one",
    )
    p_chk.set_defaults(func=cmd_check)

    p_lint = sub.add_parser(
        "lint", help="determinism lint over simulator source"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=[],
        help="files/directories to lint (default: the repro package)",
    )
    p_lint.add_argument("--allowlist", default=None,
                        help="override the packaged allowlist file")
    p_lint.add_argument(
        "--deep", action="store_true",
        help="add the whole-program passes: call-graph determinism "
             "taint, pickle-boundary safety, concurrency hazards",
    )
    p_lint.add_argument("--baseline", default=None,
                        help="override the deep-pass burn-down baseline")
    p_lint.add_argument("--json", dest="json_out", default=None,
                        help="write the findings report as JSON here")
    p_lint.add_argument("--sarif", dest="sarif_out", default=None,
                        help="write the findings report as SARIF here")
    p_lint.add_argument(
        "--prune", action="store_true",
        help="rewrite the allowlist without stale entries",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_ens = sub.add_parser("ensemble", help="run an ensemble of workflows")
    p_ens.add_argument(
        "--members", default="montage,blast,sipht",
        help="comma-separated generators, each optionally name:size",
    )
    p_ens.add_argument("--size", type=int, default=30)
    p_ens.add_argument("--cluster", default="hybrid",
                       choices=sorted(presets.PRESETS))
    p_ens.add_argument("--seed", type=int, default=0)
    p_ens.add_argument("--noise", type=float, default=0.1)
    p_ens.set_defaults(func=cmd_ensemble)

    p_list = sub.add_parser("list", help="list available names")
    p_list.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    problem = validate_runner_args(args)
    if problem:
        parser.error(problem)  # exits 2 with usage, before any pool spawn
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
