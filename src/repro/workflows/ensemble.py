"""Workflow merging for ensemble execution.

Discovery campaigns rarely run one workflow at a time: an *ensemble* of
related workflows (parameter sweeps, multiple analyses of one dataset)
shares the platform.  :func:`merge_workflows` builds a single super-DAG
from several member workflows by namespacing every task and file with its
member id — the merged workflow runs on the unmodified executor and
scheduler stack, which is exactly how space-shared ensemble scheduling
works in Pegasus-class systems.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Tuple

from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task

#: Separator between member id and original name.
SEP = "::"


def member_prefix(member_id: str, name: str) -> str:
    """Namespaced name of one member's task/file."""
    return f"{member_id}{SEP}{name}"


def split_member(name: str) -> Tuple[str, str]:
    """(member id, original name) of a namespaced name."""
    member, _sep, rest = name.partition(SEP)
    if not rest:
        raise ValueError(f"{name!r} carries no member namespace")
    return member, rest


def merge_workflows(
    members: Dict[str, Workflow],
    name: str = "ensemble",
    priorities: Dict[str, float] = None,
) -> Workflow:
    """Merge member workflows into one namespaced super-DAG.

    Args:
        members: member id -> workflow.  Ids must not contain ``::``.
        name: Name of the merged workflow.
        priorities: Optional member id -> priority; copied onto every
            member task's ``priority_hint`` so priority-aware policies can
            honour it.
    """
    if not members:
        raise ValueError("cannot merge an empty ensemble")
    priorities = priorities or {}
    merged = Workflow(name)
    for member_id, wf in members.items():
        if SEP in member_id:
            raise ValueError(f"member id {member_id!r} contains {SEP!r}")
        prio = priorities.get(member_id, 0.0)
        for f in wf.files.values():
            merged.add_file(replace(f, name=member_prefix(member_id, f.name)))
        for t in wf.tasks.values():
            merged.add_task(Task(
                name=member_prefix(member_id, t.name),
                work=t.work,
                affinity=dict(t.affinity),
                inputs=tuple(member_prefix(member_id, x) for x in t.inputs),
                outputs=tuple(member_prefix(member_id, x) for x in t.outputs),
                category=t.category,
                memory_gb=t.memory_gb,
                priority_hint=prio if prio else t.priority_hint,
            ))
        for src, dst in wf._control_edges:
            merged.add_control_edge(
                member_prefix(member_id, src), member_prefix(member_id, dst)
            )
    return merged


def member_tasks(merged: Workflow, member_id: str) -> List[str]:
    """All task names of one member inside a merged workflow."""
    prefix = member_id + SEP
    return [n for n in merged.tasks if n.startswith(prefix)]


def member_ids(merged: Workflow) -> List[str]:
    """Distinct member ids of a merged workflow, in first-seen order."""
    seen: List[str] = []
    for n in merged.tasks:
        member, _rest = split_member(n)
        if member not in seen:
            seen.append(member)
    return seen
