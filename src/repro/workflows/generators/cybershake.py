"""CyberShake — probabilistic seismic hazard analysis workflow.

Shape: huge initial strain-green-tensor (SGT) files feed a wide
``ExtractSGT`` stage (one per rupture variation), each extraction feeds one
``SeismogramSynthesis`` task (the dominant, FFT-heavy kernel — strongly
GPU/TPU friendly), whose seismograms feed small ``PeakValCalcOkaya`` tasks;
two zip stages aggregate the seismograms and the peak values.

CyberShake is the data-heaviest of the five suites — the SGT extractions
pull hundreds of MB each — which is why it anchors the data-locality and
fault-tolerance experiments (F6, F5).
"""

from __future__ import annotations

from typing import Optional

from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, accelerable_task, cpu_task


def cybershake(
    n_variations: Optional[int] = None,
    size: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
) -> Workflow:
    """Generate a CyberShake workflow.

    Args:
        n_variations: Number of rupture variations (stage width).
        size: Approximate total task count (tasks ~= 3v + 2).
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
    """
    if n_variations is None:
        target = 50 if size is None else size
        n_variations = max(1, round((target - 2) / 3))
    c = resolve_context(seed, ctx)
    wf = Workflow(f"cybershake-{n_variations}")

    sgt_x = wf.add_file(DataFile("sgt_x.bin", c.size_mb(1500.0, cv=0.1), initial=True))
    sgt_y = wf.add_file(DataFile("sgt_y.bin", c.size_mb(1500.0, cv=0.1), initial=True))
    rupture = wf.add_file(DataFile("ruptures.txt", 1.0, initial=True))

    seis_files = []
    peak_files = []
    for v in range(n_variations):
        sub_sgt = wf.add_file(DataFile(f"subsgt_{v}.bin", c.size_mb(180.0)))
        wf.add_task(cpu_task(
            f"ExtractSGT_{v}", c.work(40.0),
            inputs=(sgt_x.name, sgt_y.name, rupture.name),
            outputs=(sub_sgt.name,),
            category="ExtractSGT", memory_gb=4.0,
        ))

        seis = wf.add_file(DataFile(f"seismogram_{v}.grm", c.size_mb(20.0)))
        seis_files.append(seis)
        wf.add_task(accelerable_task(
            f"SeismogramSynthesis_{v}", c.work(900.0), gpu=25.0, tpu=30.0,
            manycore=4.0,
            inputs=(sub_sgt.name, rupture.name), outputs=(seis.name,),
            category="SeismogramSynthesis", memory_gb=6.0,
        ))

        peak = wf.add_file(DataFile(f"peak_{v}.bsa", c.size_mb(0.1)))
        peak_files.append(peak)
        wf.add_task(cpu_task(
            f"PeakValCalcOkaya_{v}", c.work(4.0),
            inputs=(seis.name,), outputs=(peak.name,),
            category="PeakValCalcOkaya", memory_gb=1.0,
        ))

    zip_seis = wf.add_file(DataFile("seismograms.zip", c.size_mb(15.0 * n_variations)))
    wf.add_task(cpu_task(
        "ZipSeis", c.work(2.0 * n_variations, cv=0.1),
        inputs=tuple(f.name for f in seis_files), outputs=(zip_seis.name,),
        category="ZipSeis", memory_gb=2.0,
    ))

    zip_psa = wf.add_file(DataFile("peaks.zip", c.size_mb(0.08 * n_variations)))
    wf.add_task(cpu_task(
        "ZipPSA", c.work(0.5 * n_variations, cv=0.1),
        inputs=tuple(f.name for f in peak_files), outputs=(zip_psa.name,),
        category="ZipPSA", memory_gb=1.0,
    ))

    return wf
