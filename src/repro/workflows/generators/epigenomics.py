"""Epigenomics — DNA methylation sequencing pipeline.

Shape: independent *lanes* of sequencer output, each split into chunks that
flow through a four-deep per-chunk pipeline
(``filterContams`` → ``sol2sanger`` → ``fastq2bfq`` → ``map``), merged per
lane (``mapMerge``), then globally indexed and piled up
(``maqIndex`` → ``pileup``).  The ``map`` stage (read alignment) dominates
runtime and is the accelerable kernel (GPU/FPGA aligners); the format
conversions are cheap CPU glue.

The deep per-chunk chains give Epigenomics the highest serial fraction of
the five suites, so schedulers that chase raw width (Min-Min) underperform
critical-path-aware ones here.
"""

from __future__ import annotations

from typing import Optional

from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, accelerable_task, cpu_task


def epigenomics(
    n_lanes: int = 2,
    chunks_per_lane: Optional[int] = None,
    size: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
) -> Workflow:
    """Generate an Epigenomics workflow.

    Args:
        n_lanes: Independent sequencer lanes.
        chunks_per_lane: Split width per lane.
        size: Approximate total task count
            (tasks ~= lanes * (4*chunks + 2) + 2).
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
    """
    if chunks_per_lane is None:
        target = 50 if size is None else size
        chunks_per_lane = max(1, round((target - 2 - 2 * n_lanes) / (4 * n_lanes)))
    if n_lanes < 1 or chunks_per_lane < 1:
        raise ValueError("epigenomics needs >=1 lane and >=1 chunk per lane")
    c = resolve_context(seed, ctx)
    wf = Workflow(f"epigenomics-{n_lanes}x{chunks_per_lane}")

    ref = wf.add_file(DataFile("reference.fa", c.size_mb(3000.0, cv=0.05), initial=True))

    merged_per_lane = []
    for lane in range(n_lanes):
        fastq = wf.add_file(DataFile(
            f"lane{lane}.fastq", c.size_mb(400.0), initial=True))
        chunk_files = []
        for k in range(chunks_per_lane):
            chunk_files.append(wf.add_file(DataFile(
                f"l{lane}_chunk{k}.fastq", c.size_mb(400.0 / chunks_per_lane))))
        wf.add_task(cpu_task(
            f"fastQSplit_l{lane}", c.work(20.0),
            inputs=(fastq.name,), outputs=tuple(f.name for f in chunk_files),
            category="fastQSplit", memory_gb=2.0,
        ))

        mapped = []
        for k in range(chunks_per_lane):
            filt = wf.add_file(DataFile(
                f"l{lane}_filt{k}.fastq", c.size_mb(350.0 / chunks_per_lane)))
            wf.add_task(cpu_task(
                f"filterContams_l{lane}_{k}", c.work(15.0),
                inputs=(chunk_files[k].name,), outputs=(filt.name,),
                category="filterContams",
            ))

            sanger = wf.add_file(DataFile(
                f"l{lane}_sanger{k}.fastq", c.size_mb(350.0 / chunks_per_lane)))
            wf.add_task(cpu_task(
                f"sol2sanger_l{lane}_{k}", c.work(8.0),
                inputs=(filt.name,), outputs=(sanger.name,),
                category="sol2sanger",
            ))

            bfq = wf.add_file(DataFile(
                f"l{lane}_bfq{k}.bfq", c.size_mb(150.0 / chunks_per_lane)))
            wf.add_task(cpu_task(
                f"fastq2bfq_l{lane}_{k}", c.work(6.0),
                inputs=(sanger.name,), outputs=(bfq.name,),
                category="fastq2bfq",
            ))

            mapped_f = wf.add_file(DataFile(
                f"l{lane}_map{k}.map", c.size_mb(120.0 / chunks_per_lane)))
            mapped.append(mapped_f)
            wf.add_task(accelerable_task(
                f"map_l{lane}_{k}", c.work(600.0), gpu=15.0, fpga=20.0,
                manycore=3.5,
                inputs=(bfq.name, ref.name), outputs=(mapped_f.name,),
                category="map", memory_gb=8.0,
            ))

        lane_map = wf.add_file(DataFile(f"l{lane}_merged.map", c.size_mb(120.0)))
        merged_per_lane.append(lane_map)
        wf.add_task(cpu_task(
            f"mapMerge_l{lane}", c.work(25.0),
            inputs=tuple(f.name for f in mapped), outputs=(lane_map.name,),
            category="mapMerge", memory_gb=4.0,
        ))

    index = wf.add_file(DataFile("maq.index", c.size_mb(200.0)))
    wf.add_task(cpu_task(
        "maqIndex", c.work(80.0),
        inputs=tuple(f.name for f in merged_per_lane), outputs=(index.name,),
        category="maqIndex", memory_gb=8.0,
    ))

    pile = wf.add_file(DataFile("pileup.txt", c.size_mb(80.0)))
    wf.add_task(cpu_task(
        "pileup", c.work(120.0),
        inputs=(index.name,), outputs=(pile.name,),
        category="pileup", memory_gb=8.0,
    ))

    return wf
