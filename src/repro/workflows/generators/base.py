"""Shared helpers for workflow generators.

Generators draw task work and file sizes from truncated distributions via a
:class:`GenContext`, which wraps a seeded generator and guarantees strictly
positive draws (a zero-size file or zero-work compute task would degenerate
the scheduling problem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.rng import RngStreams


@dataclass
class GenContext:
    """Seeded sampling context handed through a generator."""

    rng: np.random.Generator

    @classmethod
    def from_seed(cls, seed: int, stream: str = "workflow-gen") -> "GenContext":
        """Build a context from an integer seed."""
        return cls(RngStreams(seed).stream(stream))

    def work(self, mean: float, cv: float = 0.3, floor: float = 0.01) -> float:
        """Draw a task work figure (Gop), gamma-distributed around ``mean``."""
        return self._positive(mean, cv, floor)

    def size_mb(self, mean: float, cv: float = 0.5, floor: float = 0.001) -> float:
        """Draw a file size (MB), gamma-distributed around ``mean``."""
        return self._positive(mean, cv, floor)

    def _positive(self, mean: float, cv: float, floor: float) -> float:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if cv <= 0:
            return float(mean)
        shape = 1.0 / (cv * cv)
        scale = mean / shape
        return float(max(floor, self.rng.gamma(shape, scale)))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        if high < low:
            raise ValueError("empty integer range")
        return int(self.rng.integers(low, high + 1))


def resolve_context(seed: Optional[int], ctx: Optional[GenContext]) -> GenContext:
    """Resolve the (seed, ctx) generator arguments to a concrete context."""
    if ctx is not None:
        return ctx
    return GenContext.from_seed(0 if seed is None else seed)
