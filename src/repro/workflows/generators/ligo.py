"""LIGO Inspiral — gravitational-wave matched-filter analysis.

Shape: per-segment ``TmpltBank`` tasks feed heavy ``Inspiral`` matched
filtering (the dominant, GPU-friendly stage); group-level ``Thinca``
coincidence tests aggregate inspiral triggers; surviving triggers feed a
second ``TrigBank`` → ``Inspiral2`` → ``Thinca2`` round.

The two aggregate-then-fan-out waves make LIGO the classic stress test for
lookahead: a greedy scheduler happily saturates wave one on slow devices
and starves the synchronization points.
"""

from __future__ import annotations

from typing import Optional

from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, accelerable_task, cpu_task


def ligo_inspiral(
    n_segments: Optional[int] = None,
    group_size: int = 5,
    size: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
) -> Workflow:
    """Generate a LIGO Inspiral workflow.

    Args:
        n_segments: Number of detector-data segments (wave width).
        group_size: Segments per Thinca coincidence group.
        size: Approximate total task count (tasks ~= 4s + 2*ceil(s/g)).
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
    """
    if n_segments is None:
        target = 50 if size is None else size
        n_segments = max(group_size, round(target / (4 + 2.0 / group_size)))
    if n_segments < 1:
        raise ValueError("ligo needs at least one segment")
    c = resolve_context(seed, ctx)
    wf = Workflow(f"ligo-{n_segments}")

    groups = [list(range(g, min(g + group_size, n_segments)))
              for g in range(0, n_segments, group_size)]

    seg_files = []
    for s in range(n_segments):
        seg_files.append(wf.add_file(DataFile(
            f"segment_{s}.gwf", c.size_mb(250.0), initial=True)))

    trig1 = {}
    for s in range(n_segments):
        bank = wf.add_file(DataFile(f"tmpltbank_{s}.xml", c.size_mb(2.0)))
        wf.add_task(cpu_task(
            f"TmpltBank_{s}", c.work(60.0),
            inputs=(seg_files[s].name,), outputs=(bank.name,),
            category="TmpltBank", memory_gb=2.0,
        ))

        trig = wf.add_file(DataFile(f"insp1_{s}.xml", c.size_mb(1.0)))
        trig1[s] = trig
        wf.add_task(accelerable_task(
            f"Inspiral_{s}", c.work(800.0), gpu=22.0, fpga=10.0, manycore=4.0,
            inputs=(seg_files[s].name, bank.name), outputs=(trig.name,),
            category="Inspiral", memory_gb=6.0,
        ))

    coinc1 = []
    for gi, grp in enumerate(groups):
        out = wf.add_file(DataFile(f"thinca1_{gi}.xml", c.size_mb(0.5)))
        coinc1.append((gi, grp, out))
        wf.add_task(cpu_task(
            f"Thinca_{gi}", c.work(20.0),
            inputs=tuple(trig1[s].name for s in grp), outputs=(out.name,),
            category="Thinca", memory_gb=2.0,
        ))

    trig2 = {}
    for gi, grp, thinca_out in coinc1:
        for s in grp:
            tb = wf.add_file(DataFile(f"trigbank_{s}.xml", c.size_mb(0.5)))
            wf.add_task(cpu_task(
                f"TrigBank_{s}", c.work(10.0),
                inputs=(thinca_out.name,), outputs=(tb.name,),
                category="TrigBank",
            ))

            trig = wf.add_file(DataFile(f"insp2_{s}.xml", c.size_mb(1.0)))
            trig2[s] = trig
            wf.add_task(accelerable_task(
                f"Inspiral2_{s}", c.work(500.0), gpu=22.0, fpga=10.0,
                manycore=4.0,
                inputs=(seg_files[s].name, tb.name), outputs=(trig.name,),
                category="Inspiral2", memory_gb=6.0,
            ))

    for gi, grp in enumerate(groups):
        out = wf.add_file(DataFile(f"thinca2_{gi}.xml", c.size_mb(0.5)))
        wf.add_task(cpu_task(
            f"Thinca2_{gi}", c.work(20.0),
            inputs=tuple(trig2[s].name for s in grp), outputs=(out.name,),
            category="Thinca2", memory_gb=2.0,
        ))

    return wf
