"""Parametric random DAG generator.

Used by the sweeps that need DAG-shape control rather than domain
fidelity — most importantly the CCR sweep (F2), which requires workflows
whose communication-to-computation ratio is a direct input, and the
scheduler-overhead scaling study (T5).

Tasks are placed on random depth ranks and edges only point to deeper
ranks, guaranteeing acyclicity by construction; every non-entry task is
given at least one parent so the graph stays connected front-to-back.
"""

from __future__ import annotations

from typing import Optional

from repro.platform.devices import DeviceClass
from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task


def random_dag(
    n_tasks: Optional[int] = None,
    size: Optional[int] = None,
    ccr: float = 1.0,
    mean_work: float = 100.0,
    edge_density: float = 2.0,
    accelerable_fraction: float = 0.4,
    gpu_speedup: float = 15.0,
    max_depth: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
    reference_speed: float = 50.0,
    reference_bandwidth: float = 1250.0,
) -> Workflow:
    """Generate a random DAG with a target CCR.

    Args:
        n_tasks: Number of tasks.
        size: Alias for ``n_tasks`` (uniform generator interface).
        ccr: Target communication-to-computation ratio (see
            :meth:`Workflow.ccr` for the definition; the generated value is
            within sampling noise of this target).
        mean_work: Mean task work, Gop.
        edge_density: Mean number of parents per non-entry task.
        accelerable_fraction: Fraction of tasks with GPU affinity.
        gpu_speedup: GPU multiplier for accelerable tasks.
        max_depth: Maximum DAG depth; default ``~sqrt(n_tasks)``.
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
        reference_speed: Gop/s used to convert work to time for the CCR.
        reference_bandwidth: MB/s used to convert bytes to time for the CCR.
    """
    if n_tasks is None:
        n_tasks = 50 if size is None else size
    if n_tasks < 1:
        raise ValueError("need at least one task")
    if ccr < 0:
        raise ValueError("ccr must be non-negative")
    c = resolve_context(seed, ctx)
    depth = max_depth or max(2, int(round(n_tasks ** 0.5)))
    wf = Workflow(f"random-{n_tasks}-ccr{ccr:g}")

    # Mean bytes per edge implied by the CCR target.
    mean_comp_time = mean_work / reference_speed
    mean_edge_mb = ccr * mean_comp_time * reference_bandwidth

    ranks = sorted(int(c.rng.integers(0, depth)) for _ in range(n_tasks))
    names = [f"t{i:04d}" for i in range(n_tasks)]

    # Draw parents first so each task's input list is known at creation.
    parents = {i: [] for i in range(n_tasks)}
    for i in range(n_tasks):
        shallower = [j for j in range(n_tasks) if ranks[j] < ranks[i]]
        if not shallower:
            continue
        want = max(1, int(c.rng.poisson(edge_density)))
        chosen = c.rng.choice(
            len(shallower), size=min(want, len(shallower)), replace=False
        )
        parents[i] = sorted(shallower[k] for k in chosen)

    # One produced file per edge; entry tasks read one initial file each.
    for i in range(n_tasks):
        inputs = []
        if not parents[i]:
            f = wf.add_file(DataFile(
                f"in_{names[i]}", c.size_mb(max(mean_edge_mb, 0.001)),
                initial=True))
            inputs.append(f.name)
        else:
            for j in parents[i]:
                inputs.append(f"edge_{names[j]}_{names[i]}")
        outputs = []
        children = [k for k in range(n_tasks) if i in parents[k]]
        for k in children:
            f = wf.add_file(DataFile(
                f"edge_{names[i]}_{names[k]}",
                c.size_mb(max(mean_edge_mb, 0.001)) if ccr > 0 else 0.0))
            outputs.append(f.name)
        if not children:
            f = wf.add_file(DataFile(f"out_{names[i]}", 0.001))
            outputs.append(f.name)

        affinity = {}
        if c.rng.random() < accelerable_fraction:
            affinity[DeviceClass.GPU] = gpu_speedup
        wf.add_task(Task(
            name=names[i],
            work=c.work(mean_work),
            affinity=affinity,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            category="random",
        ))
    return wf
