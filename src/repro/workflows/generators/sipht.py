"""SIPHT — sRNA identification protocol (bioinformatics annotation).

Shape: a wide ``Patser`` scan stage concatenated by ``Patser_concate``; in
parallel, a set of heterogeneous single tasks (``Transterm``,
``Findterm``, ``RNAMotif``, ``Blast``) all feeding the central ``SRNA``
assembly; SRNA fans out to several annotation BLAST variants
(``BlastQRNA``, ``BlastCandidate``, ``BlastParalogues``, ``FFN_parse``)
that join in ``SRNAAnnotate``.

SIPHT is irregular — one heavy ``Findterm`` dominates its level — so it
punishes schedulers without critical-path awareness.  BLAST-family stages
get FPGA affinity (classic Smith-Waterman accelerators).
"""

from __future__ import annotations

from typing import Optional

from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, accelerable_task, cpu_task


def sipht(
    n_patser: Optional[int] = None,
    size: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
) -> Workflow:
    """Generate a SIPHT workflow.

    Args:
        n_patser: Width of the Patser scan stage.
        size: Approximate total task count (tasks ~= p + 10).
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
    """
    if n_patser is None:
        target = 40 if size is None else size
        n_patser = max(1, target - 10)
    c = resolve_context(seed, ctx)
    wf = Workflow(f"sipht-{n_patser}")

    genome = wf.add_file(DataFile("genome.fna", c.size_mb(12.0), initial=True))
    igr = wf.add_file(DataFile("intergenic.fa", c.size_mb(3.0), initial=True))
    matrices = wf.add_file(DataFile("tfbs_matrices.dat", 1.0, initial=True))

    patser_outs = []
    for p in range(n_patser):
        out = wf.add_file(DataFile(f"patser_{p}.out", c.size_mb(0.3)))
        patser_outs.append(out)
        wf.add_task(cpu_task(
            f"Patser_{p}", c.work(10.0),
            inputs=(igr.name, matrices.name), outputs=(out.name,),
            category="Patser",
        ))

    patser_concat = wf.add_file(DataFile("patser_all.out", c.size_mb(0.3 * n_patser)))
    wf.add_task(cpu_task(
        "Patser_concate", c.work(3.0),
        inputs=tuple(f.name for f in patser_outs), outputs=(patser_concat.name,),
        category="Patser_concate",
    ))

    transterm = wf.add_file(DataFile("transterm.out", c.size_mb(1.0)))
    wf.add_task(cpu_task(
        "Transterm", c.work(220.0),
        inputs=(genome.name,), outputs=(transterm.name,),
        category="Transterm", memory_gb=4.0,
    ))

    findterm = wf.add_file(DataFile("findterm.out", c.size_mb(2.0)))
    wf.add_task(accelerable_task(
        "Findterm", c.work(1200.0), gpu=5.0, fpga=22.0, manycore=3.0,
        inputs=(genome.name,), outputs=(findterm.name,),
        category="Findterm", memory_gb=8.0,
    ))

    rnamotif = wf.add_file(DataFile("rnamotif.out", c.size_mb(0.5)))
    wf.add_task(cpu_task(
        "RNAMotif", c.work(120.0),
        inputs=(genome.name,), outputs=(rnamotif.name,),
        category="RNAMotif", memory_gb=2.0,
    ))

    blast_out = wf.add_file(DataFile("blast.out", c.size_mb(2.0)))
    wf.add_task(accelerable_task(
        "Blast", c.work(300.0), fpga=22.0, gpu=4.0,
        inputs=(genome.name, igr.name), outputs=(blast_out.name,),
        category="Blast", memory_gb=4.0,
    ))

    srna = wf.add_file(DataFile("srna.out", c.size_mb(1.5)))
    wf.add_task(cpu_task(
        "SRNA", c.work(40.0),
        inputs=(patser_concat.name, transterm.name, findterm.name,
                rnamotif.name, blast_out.name),
        outputs=(srna.name,),
        category="SRNA", memory_gb=2.0,
    ))

    annotate_inputs = []
    for stage, work, fpga_mult in (
        ("FFN_parse", 25.0, 0.0),
        ("BlastQRNA", 180.0, 20.0),
        ("BlastCandidate", 90.0, 20.0),
        ("BlastParalogues", 90.0, 20.0),
    ):
        out = wf.add_file(DataFile(f"{stage.lower()}.out", c.size_mb(0.8)))
        annotate_inputs.append(out)
        if fpga_mult > 0:
            wf.add_task(accelerable_task(
                stage, c.work(work), fpga=fpga_mult, gpu=3.5,
                inputs=(srna.name, genome.name), outputs=(out.name,),
                category=stage, memory_gb=4.0,
            ))
        else:
            wf.add_task(cpu_task(
                stage, c.work(work),
                inputs=(srna.name,), outputs=(out.name,),
                category=stage,
            ))

    final = wf.add_file(DataFile("srna_annotated.out", c.size_mb(2.0)))
    wf.add_task(cpu_task(
        "SRNAAnnotate", c.work(20.0),
        inputs=tuple(f.name for f in annotate_inputs), outputs=(final.name,),
        category="SRNAAnnotate",
    ))

    return wf
