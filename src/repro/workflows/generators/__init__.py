"""Structure-faithful scientific workflow generators.

Each generator reproduces the published DAG *shape* of its suite — stage
cardinalities, fan-in/fan-out structure, relative task weights and data-size
distributions follow the workflow characterizations used by the Pegasus
community (Bharathi et al., "Characterization of Scientific Workflows") —
while the absolute work/size scales are parameters.  Accelerator affinities
encode which stages are data-parallel kernels (FFT synthesis, matched
filtering, read mapping, reprojection) versus irregular/IO-bound glue.

All generators are deterministic given a seed.
"""

from repro.workflows.generators.montage import montage
from repro.workflows.generators.cybershake import cybershake
from repro.workflows.generators.epigenomics import epigenomics
from repro.workflows.generators.ligo import ligo_inspiral
from repro.workflows.generators.sipht import sipht
from repro.workflows.generators.soykb import soykb
from repro.workflows.generators.blast import blast
from repro.workflows.generators.mlpipeline import ml_pipeline
from repro.workflows.generators.random_dag import random_dag
from repro.workflows.generators.layered import layered_dag

#: The five canonical suites of the evaluation, by name.
SCIENTIFIC_SUITES = {
    "montage": montage,
    "cybershake": cybershake,
    "epigenomics": epigenomics,
    "ligo": ligo_inspiral,
    "sipht": sipht,
}

#: All named generators, including synthetic ones.
ALL_GENERATORS = {
    **SCIENTIFIC_SUITES,
    "soykb": soykb,
    "blast": blast,
    "mlpipeline": ml_pipeline,
    "random": random_dag,
    "layered": layered_dag,
}


def by_name(name: str, **kwargs):
    """Instantiate a generator by short name (see ``ALL_GENERATORS``)."""
    try:
        gen = ALL_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown workflow generator {name!r}; available: {sorted(ALL_GENERATORS)}"
        ) from None
    return gen(**kwargs)


__all__ = [
    "montage",
    "cybershake",
    "epigenomics",
    "ligo_inspiral",
    "sipht",
    "soykb",
    "blast",
    "ml_pipeline",
    "random_dag",
    "layered_dag",
    "SCIENTIFIC_SUITES",
    "ALL_GENERATORS",
    "by_name",
]
