"""ML discovery pipeline — the intro-motivating "AI for science" workload.

Shape: ingest → parallel shard preprocessing → GPU feature extraction →
k-fold parallel training (GPU/TPU-dominant) → per-fold validation → model
selection → final full-data training → evaluation/report.  Training tasks
carry the strongest accelerator affinity in the library (matrix-multiply
bound), making this the workload where CPU-only platforms lose by the
largest factor (T2).
"""

from __future__ import annotations

from typing import Optional

from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, accelerable_task, cpu_task


def ml_pipeline(
    n_shards: int = 8,
    n_folds: int = 5,
    size: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
) -> Workflow:
    """Generate an ML training pipeline workflow.

    Args:
        n_shards: Parallel preprocessing width.
        n_folds: Cross-validation folds (training width).
        size: Approximate total task count
            (tasks ~= 2*shards + 2*folds + 4; shards are derived from it).
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
    """
    if size is not None:
        n_shards = max(1, round((size - 4 - 2 * n_folds) / 2))
    if n_shards < 1 or n_folds < 1:
        raise ValueError("ml_pipeline needs >=1 shard and >=1 fold")
    c = resolve_context(seed, ctx)
    wf = Workflow(f"mlpipeline-{n_shards}s{n_folds}f")

    raw = wf.add_file(DataFile("dataset.raw", c.size_mb(2000.0, cv=0.1), initial=True))

    shard_files = [
        wf.add_file(DataFile(f"shard_{s}.parquet", c.size_mb(2000.0 / n_shards)))
        for s in range(n_shards)
    ]
    wf.add_task(cpu_task(
        "ingest", c.work(50.0),
        inputs=(raw.name,), outputs=tuple(f.name for f in shard_files),
        category="ingest", memory_gb=8.0,
    ))

    feature_files = []
    for s in range(n_shards):
        clean = wf.add_file(DataFile(f"clean_{s}.parquet", c.size_mb(1500.0 / n_shards)))
        wf.add_task(cpu_task(
            f"preprocess_{s}", c.work(80.0),
            inputs=(shard_files[s].name,), outputs=(clean.name,),
            category="preprocess", memory_gb=4.0,
        ))

        feats = wf.add_file(DataFile(f"features_{s}.npy", c.size_mb(500.0 / n_shards)))
        feature_files.append(feats)
        wf.add_task(accelerable_task(
            f"featurize_{s}", c.work(300.0), gpu=18.0, tpu=15.0, manycore=3.0,
            inputs=(clean.name,), outputs=(feats.name,),
            category="featurize", memory_gb=6.0,
        ))

    model_files = []
    metric_files = []
    for f in range(n_folds):
        model = wf.add_file(DataFile(f"model_fold{f}.pt", c.size_mb(120.0)))
        model_files.append(model)
        wf.add_task(accelerable_task(
            f"train_fold{f}", c.work(2500.0), gpu=30.0, tpu=40.0, manycore=4.0,
            inputs=tuple(x.name for x in feature_files), outputs=(model.name,),
            category="train", memory_gb=16.0,
        ))

        metrics = wf.add_file(DataFile(f"metrics_fold{f}.json", 0.01))
        metric_files.append(metrics)
        wf.add_task(accelerable_task(
            f"validate_fold{f}", c.work(150.0), gpu=20.0, tpu=25.0,
            inputs=(model.name,) + tuple(x.name for x in feature_files),
            outputs=(metrics.name,),
            category="validate", memory_gb=8.0,
        ))

    best = wf.add_file(DataFile("best_config.json", 0.01))
    wf.add_task(cpu_task(
        "select_model", c.work(5.0),
        inputs=tuple(m.name for m in metric_files), outputs=(best.name,),
        category="select",
    ))

    final_model = wf.add_file(DataFile("model_final.pt", c.size_mb(120.0)))
    wf.add_task(accelerable_task(
        "train_final", c.work(4000.0), gpu=30.0, tpu=40.0, manycore=4.0,
        inputs=(best.name,) + tuple(x.name for x in feature_files),
        outputs=(final_model.name,),
        category="train", memory_gb=16.0,
    ))

    report = wf.add_file(DataFile("report.html", 1.0))
    wf.add_task(cpu_task(
        "evaluate_report", c.work(30.0),
        inputs=(final_model.name,), outputs=(report.name,),
        category="report", memory_gb=4.0,
    ))

    return wf
