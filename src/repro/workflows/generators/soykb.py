"""SoyKB — resequencing/variant-calling genomics workflow.

The sixth Pegasus-community suite: per-sample read alignment and variant
calling followed by cohort-wide joint genotyping.  Shape: per sample, an
``alignment`` (heavy, GPU/FPGA-accelerable) feeds ``sortSam`` →
``dedup`` → ``realign`` → ``haplotypeCaller`` (heavy); all per-sample
GVCFs join in ``combineGVCF`` → ``genotypeGVCF`` → ``filterVariants``.

Included as an out-of-evaluation extra workload: its per-sample chains
are deeper than CyberShake's and its join is wider than Epigenomics',
filling a gap in the suite's shape coverage.
"""

from __future__ import annotations

from typing import Optional

from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, accelerable_task, cpu_task


def soykb(
    n_samples: Optional[int] = None,
    size: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
) -> Workflow:
    """Generate a SoyKB workflow.

    Args:
        n_samples: Number of resequenced samples (chain count).
        size: Approximate total task count (tasks ~= 5*samples + 3).
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
    """
    if n_samples is None:
        target = 40 if size is None else size
        n_samples = max(1, round((target - 3) / 5))
    c = resolve_context(seed, ctx)
    wf = Workflow(f"soykb-{n_samples}")

    ref = wf.add_file(DataFile("reference.fa", c.size_mb(1000.0, cv=0.05),
                               initial=True))

    gvcfs = []
    for s in range(n_samples):
        reads = wf.add_file(DataFile(f"sample{s}.fastq", c.size_mb(600.0),
                                     initial=True))

        bam = wf.add_file(DataFile(f"s{s}_aligned.bam", c.size_mb(300.0)))
        wf.add_task(accelerable_task(
            f"alignment_{s}", c.work(700.0), gpu=14.0, fpga=18.0,
            manycore=3.0,
            inputs=(reads.name, ref.name), outputs=(bam.name,),
            category="alignment", memory_gb=12.0,
        ))

        sorted_bam = wf.add_file(DataFile(f"s{s}_sorted.bam", c.size_mb(300.0)))
        wf.add_task(cpu_task(
            f"sortSam_{s}", c.work(60.0),
            inputs=(bam.name,), outputs=(sorted_bam.name,),
            category="sortSam", memory_gb=8.0,
        ))

        dedup_bam = wf.add_file(DataFile(f"s{s}_dedup.bam", c.size_mb(250.0)))
        wf.add_task(cpu_task(
            f"dedup_{s}", c.work(45.0),
            inputs=(sorted_bam.name,), outputs=(dedup_bam.name,),
            category="dedup", memory_gb=8.0,
        ))

        realigned = wf.add_file(DataFile(f"s{s}_realigned.bam",
                                         c.size_mb(250.0)))
        wf.add_task(cpu_task(
            f"realign_{s}", c.work(150.0),
            inputs=(dedup_bam.name, ref.name), outputs=(realigned.name,),
            category="realign", memory_gb=8.0,
        ))

        gvcf = wf.add_file(DataFile(f"s{s}.g.vcf", c.size_mb(40.0)))
        gvcfs.append(gvcf)
        wf.add_task(accelerable_task(
            f"haplotypeCaller_{s}", c.work(500.0), gpu=10.0, manycore=3.0,
            inputs=(realigned.name, ref.name), outputs=(gvcf.name,),
            category="haplotypeCaller", memory_gb=12.0,
        ))

    combined = wf.add_file(DataFile("cohort.g.vcf",
                                    c.size_mb(30.0 * n_samples)))
    wf.add_task(cpu_task(
        "combineGVCF", c.work(20.0 * n_samples, cv=0.1),
        inputs=tuple(g.name for g in gvcfs), outputs=(combined.name,),
        category="combineGVCF", memory_gb=16.0,
    ))

    genotyped = wf.add_file(DataFile("cohort.vcf", c.size_mb(20.0 * n_samples)))
    wf.add_task(cpu_task(
        "genotypeGVCF", c.work(30.0 * n_samples, cv=0.1),
        inputs=(combined.name, ref.name), outputs=(genotyped.name,),
        category="genotypeGVCF", memory_gb=16.0,
    ))

    filtered = wf.add_file(DataFile("cohort.filtered.vcf",
                                    c.size_mb(15.0 * n_samples)))
    wf.add_task(cpu_task(
        "filterVariants", c.work(10.0 * n_samples, cv=0.1),
        inputs=(genotyped.name,), outputs=(filtered.name,),
        category="filterVariants", memory_gb=8.0,
    ))

    return wf
