"""Montage — astronomical image mosaicking workflow.

Shape (per the published characterization): a wide data-parallel
reprojection stage (``mProject``, one task per input image), a pairwise
background-difference stage (``mDiffFit`` over overlapping image pairs), a
global fit (``mConcatFit`` → ``mBgModel``), a second data-parallel
correction stage (``mBackground``), and a sequential tail
(``mImgtbl`` → ``mAdd`` → ``mShrink`` → ``mJPEG``).

Reprojection and background correction are pixel-parallel kernels, so they
carry GPU affinity; the tail is I/O-bound glue and stays CPU-only, which
caps achievable accelerator speedup (Amdahl behaviour the F3 sweep charts).
"""

from __future__ import annotations

from typing import Optional

from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task, accelerable_task, cpu_task


def montage(
    n_images: Optional[int] = None,
    size: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
    overlap_degree: int = 2,
) -> Workflow:
    """Generate a Montage workflow.

    Args:
        n_images: Number of input sky images (drives all stage widths).
        size: Alternatively, an approximate total task count; the generator
            derives ``n_images`` from it (tasks ~= 3n + overlaps + 6).
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
        overlap_degree: How many forward neighbours each image overlaps
            (controls the mDiffFit width).
    """
    if n_images is None:
        target = 50 if size is None else size
        n_images = max(2, round((target - 6) / (2 + overlap_degree + 1)))
    if n_images < 2:
        raise ValueError("montage needs at least 2 input images")
    c = resolve_context(seed, ctx)
    wf = Workflow(f"montage-{n_images}")

    raw = []
    for i in range(n_images):
        f = wf.add_file(DataFile(f"raw_{i}.fits", c.size_mb(4.0), initial=True))
        raw.append(f)
    hdr = wf.add_file(DataFile("region.hdr", 0.01, initial=True))

    projected = []
    for i in range(n_images):
        out = wf.add_file(DataFile(f"proj_{i}.fits", c.size_mb(8.0)))
        projected.append(out)
        wf.add_task(accelerable_task(
            f"mProject_{i}", c.work(120.0), gpu=12.0, manycore=3.0,
            inputs=(raw[i].name, hdr.name), outputs=(out.name,),
            category="mProject", memory_gb=2.0,
        ))

    # Overlapping pairs: each image with its next `overlap_degree` neighbours.
    diffs = []
    for i in range(n_images):
        for d in range(1, overlap_degree + 1):
            j = i + d
            if j >= n_images:
                continue
            out = wf.add_file(DataFile(f"diff_{i}_{j}.fits", c.size_mb(1.0)))
            diffs.append(out)
            wf.add_task(cpu_task(
                f"mDiffFit_{i}_{j}", c.work(12.0),
                inputs=(projected[i].name, projected[j].name),
                outputs=(out.name,),
                category="mDiffFit", memory_gb=1.0,
            ))

    fits_tbl = wf.add_file(DataFile("fits.tbl", c.size_mb(0.5)))
    wf.add_task(cpu_task(
        "mConcatFit", c.work(8.0),
        inputs=tuple(d.name for d in diffs), outputs=(fits_tbl.name,),
        category="mConcatFit",
    ))

    corrections = wf.add_file(DataFile("corrections.tbl", c.size_mb(0.2)))
    wf.add_task(cpu_task(
        "mBgModel", c.work(30.0),
        inputs=(fits_tbl.name,), outputs=(corrections.name,),
        category="mBgModel",
    ))

    corrected = []
    for i in range(n_images):
        out = wf.add_file(DataFile(f"corr_{i}.fits", c.size_mb(8.0)))
        corrected.append(out)
        wf.add_task(accelerable_task(
            f"mBackground_{i}", c.work(25.0), gpu=8.0, manycore=2.5,
            inputs=(projected[i].name, corrections.name),
            outputs=(out.name,),
            category="mBackground", memory_gb=2.0,
        ))

    img_tbl = wf.add_file(DataFile("images.tbl", c.size_mb(0.3)))
    wf.add_task(cpu_task(
        "mImgtbl", c.work(5.0),
        inputs=tuple(f.name for f in corrected), outputs=(img_tbl.name,),
        category="mImgtbl",
    ))

    mosaic = wf.add_file(DataFile("mosaic.fits", c.size_mb(3.0 * n_images)))
    wf.add_task(accelerable_task(
        "mAdd", c.work(20.0 * n_images, cv=0.1), gpu=6.0,
        inputs=tuple(f.name for f in corrected) + (img_tbl.name,),
        outputs=(mosaic.name,),
        category="mAdd", memory_gb=8.0,
    ))

    shrunk = wf.add_file(DataFile("mosaic_small.fits", c.size_mb(0.5 * n_images)))
    wf.add_task(cpu_task(
        "mShrink", c.work(15.0),
        inputs=(mosaic.name,), outputs=(shrunk.name,),
        category="mShrink", memory_gb=4.0,
    ))

    jpeg = wf.add_file(DataFile("mosaic.jpg", c.size_mb(2.0)))
    wf.add_task(cpu_task(
        "mJPEG", c.work(6.0),
        inputs=(shrunk.name,), outputs=(jpeg.name,),
        category="mJPEG",
    ))

    return wf
