"""BLAST-like sequence-search workflow (scatter/compute/gather).

The simplest discovery pattern: split a query set into chunks, run an
embarrassingly parallel alignment stage against a shared database, merge
results.  Included as a sixth workload because its bag-of-tasks shape is
the best case for greedy schedulers — a useful control next to the
structured suites.
"""

from __future__ import annotations

from typing import Optional

from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, accelerable_task, cpu_task


def blast(
    n_chunks: Optional[int] = None,
    size: Optional[int] = None,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
) -> Workflow:
    """Generate a BLAST scatter/gather workflow.

    Args:
        n_chunks: Width of the alignment stage.
        size: Approximate total task count (tasks = chunks + 2).
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
    """
    if n_chunks is None:
        target = 34 if size is None else size
        n_chunks = max(1, target - 2)
    c = resolve_context(seed, ctx)
    wf = Workflow(f"blast-{n_chunks}")

    queries = wf.add_file(DataFile("queries.fa", c.size_mb(50.0), initial=True))
    database = wf.add_file(DataFile("nr.db", c.size_mb(5000.0, cv=0.05), initial=True))

    chunk_files = [
        wf.add_file(DataFile(f"chunk_{k}.fa", c.size_mb(50.0 / n_chunks)))
        for k in range(n_chunks)
    ]
    wf.add_task(cpu_task(
        "splitQuery", c.work(5.0),
        inputs=(queries.name,), outputs=tuple(f.name for f in chunk_files),
        category="splitQuery",
    ))

    result_files = []
    for k in range(n_chunks):
        out = wf.add_file(DataFile(f"hits_{k}.xml", c.size_mb(2.0)))
        result_files.append(out)
        wf.add_task(accelerable_task(
            f"blastall_{k}", c.work(400.0), fpga=22.0, gpu=4.0, manycore=3.0,
            inputs=(chunk_files[k].name, database.name), outputs=(out.name,),
            category="blastall", memory_gb=12.0,
        ))

    merged = wf.add_file(DataFile("hits_all.xml", c.size_mb(2.0 * n_chunks)))
    wf.add_task(cpu_task(
        "mergeResults", c.work(1.0 * n_chunks, cv=0.1),
        inputs=tuple(f.name for f in result_files), outputs=(merged.name,),
        category="mergeResults", memory_gb=4.0,
    ))

    return wf
