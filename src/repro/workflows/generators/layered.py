"""Layered (fork-join) DAG generator.

Produces a regular stack of layers with configurable width and inter-layer
connectivity — the structure used for controlled experiments where only
one variable (width, depth, fan-in) should change at a time.  A fully
connected pair of adjacent layers gives classic fork-join barriers; sparse
connectivity gives pipelined lanes.
"""

from __future__ import annotations

from typing import Optional

from repro.platform.devices import DeviceClass
from repro.workflows.generators.base import GenContext, resolve_context
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task


def layered_dag(
    layers: int = 5,
    width: Optional[int] = None,
    size: Optional[int] = None,
    fan_in: Optional[int] = None,
    mean_work: float = 100.0,
    mean_edge_mb: float = 10.0,
    accelerable_fraction: float = 0.4,
    gpu_speedup: float = 15.0,
    seed: int = 0,
    ctx: Optional[GenContext] = None,
) -> Workflow:
    """Generate a layered DAG.

    Args:
        layers: Number of layers (depth).
        width: Tasks per layer (default 8, or derived from ``size``).
        size: Approximate total task count (width = size / layers).
        fan_in: Parents per task drawn from the previous layer
            (None = fully connected adjacent layers).
        mean_work: Mean task work, Gop.
        mean_edge_mb: Mean bytes per edge, MB.
        accelerable_fraction: Fraction of tasks with GPU affinity.
        gpu_speedup: GPU multiplier for accelerable tasks.
        seed: Determinism seed (ignored when ``ctx`` is given).
        ctx: Optional shared sampling context.
    """
    if width is None:
        width = 8 if size is None else max(1, round(size / layers))
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be >= 1")
    c = resolve_context(seed, ctx)
    effective_fan_in = width if fan_in is None else min(fan_in, width)
    wf = Workflow(f"layered-{layers}x{width}")

    def task_name(layer: int, i: int) -> str:
        return f"l{layer}_t{i}"

    # Choose parents per task, then create files edge-by-edge as tasks are
    # added in layer order (producers always precede consumers).
    parents = {}
    for layer in range(1, layers):
        for i in range(width):
            if effective_fan_in >= width:
                parents[(layer, i)] = list(range(width))
            else:
                chosen = c.rng.choice(width, size=effective_fan_in, replace=False)
                parents[(layer, i)] = sorted(int(x) for x in chosen)

    children = {}
    for (layer, i), ps in parents.items():
        for p in ps:
            children.setdefault((layer - 1, p), []).append(i)

    for layer in range(layers):
        for i in range(width):
            inputs = []
            if layer == 0:
                f = wf.add_file(DataFile(
                    f"in_{i}", c.size_mb(mean_edge_mb), initial=True))
                inputs.append(f.name)
            else:
                for p in parents[(layer, i)]:
                    inputs.append(f"e_{task_name(layer - 1, p)}_{i}")
            outputs = []
            for child in children.get((layer, i), []):
                f = wf.add_file(DataFile(
                    f"e_{task_name(layer, i)}_{child}", c.size_mb(mean_edge_mb)))
                outputs.append(f.name)
            if not outputs:
                f = wf.add_file(DataFile(f"out_{task_name(layer, i)}", 0.001))
                outputs.append(f.name)

            affinity = {}
            if c.rng.random() < accelerable_fraction:
                affinity[DeviceClass.GPU] = gpu_speedup
            wf.add_task(Task(
                name=task_name(layer, i),
                work=c.work(mean_work),
                affinity=affinity,
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                category=f"layer{layer}",
            ))
    return wf
