"""JSON serialization of workflows — a DAX-like interchange format.

Pegasus-style systems exchange abstract workflows as DAX documents; we use
an equivalent JSON schema so workflows can be generated once, stored, and
replayed across experiments::

    {
      "name": "montage-57",
      "files": [{"name": "in_0.fits", "size_mb": 4.2, "initial": true}, ...],
      "tasks": [{"name": "mProject_0", "work": 120.0,
                 "affinity": {"gpu": 12.0},
                 "inputs": ["in_0.fits"], "outputs": ["proj_0.fits"],
                 "category": "mProject", "memory_gb": 2.0}, ...],
      "control_edges": [["a", "b"], ...]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.platform.devices import DeviceClass
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task


def workflow_to_dict(workflow: Workflow) -> Dict[str, Any]:
    """Convert a workflow to a JSON-serializable dict."""
    return {
        "name": workflow.name,
        "files": [
            {
                "name": f.name,
                "size_mb": f.size_mb,
                "initial": f.initial,
                **({"location": f.location} if f.location else {}),
            }
            for f in workflow.files.values()
        ],
        "tasks": [
            {
                "name": t.name,
                "work": t.work,
                "affinity": {str(cls): mult for cls, mult in t.affinity.items()},
                "inputs": list(t.inputs),
                "outputs": list(t.outputs),
                "category": t.category,
                "memory_gb": t.memory_gb,
                "priority_hint": t.priority_hint,
            }
            for t in workflow.tasks.values()
        ],
        "control_edges": sorted(list(e) for e in workflow._control_edges),
    }


def workflow_from_dict(payload: Dict[str, Any]) -> Workflow:
    """Rebuild a workflow from :func:`workflow_to_dict` output."""
    try:
        wf = Workflow(payload["name"])
        for fd in payload.get("files", []):
            wf.add_file(
                DataFile(
                    name=fd["name"],
                    size_mb=float(fd["size_mb"]),
                    initial=bool(fd.get("initial", False)),
                    location=fd.get("location"),
                )
            )
        for td in payload.get("tasks", []):
            affinity = {
                DeviceClass(cls): float(mult)
                for cls, mult in td.get("affinity", {}).items()
            }
            wf.add_task(
                Task(
                    name=td["name"],
                    work=float(td["work"]),
                    affinity=affinity,
                    inputs=tuple(td.get("inputs", ())),
                    outputs=tuple(td.get("outputs", ())),
                    category=td.get("category", "generic"),
                    memory_gb=float(td.get("memory_gb", 1.0)),
                    priority_hint=float(td.get("priority_hint", 0.0)),
                )
            )
        for src, dst in payload.get("control_edges", []):
            wf.add_control_edge(src, dst)
    except KeyError as exc:
        raise ValueError(f"workflow document missing field: {exc}") from exc
    return wf


def workflow_to_json(workflow: Workflow, indent: int = 2) -> str:
    """Serialize a workflow to a JSON string."""
    return json.dumps(workflow_to_dict(workflow), indent=indent, sort_keys=True)


def workflow_from_json(text: str) -> Workflow:
    """Parse a workflow from a JSON string."""
    return workflow_from_dict(json.loads(text))


def save_workflow(workflow: Workflow, path: str) -> None:
    """Write a workflow JSON document to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(workflow_to_json(workflow))


def load_workflow(path: str) -> Workflow:
    """Read a workflow JSON document from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return workflow_from_json(fh.read())
