"""Scientific discovery workflow models and generators.

A *workflow* is a DAG of tasks connected through the data files they produce
and consume — the representation Pegasus-style systems use for scientific
discovery campaigns.  This package provides:

* :mod:`~repro.workflows.task` — tasks, data files, device affinities.
* :mod:`~repro.workflows.graph` — the :class:`Workflow` DAG with structural
  queries (topological order, levels, critical path, CCR).
* :mod:`~repro.workflows.validate` — structural validation.
* :mod:`~repro.workflows.serialize` — JSON round-tripping (a DAX-like
  interchange format).
* :mod:`~repro.workflows.generators` — structure-faithful generators for the
  five canonical scientific suites (Montage, CyberShake, Epigenomics, LIGO
  Inspiral, SIPHT) plus BLAST-like search, an ML pipeline, and parametric
  random/layered DAGs.
"""

from repro.workflows.task import DataFile, Task
from repro.workflows.graph import Workflow
from repro.workflows.validate import ValidationError, validate_workflow
from repro.workflows.serialize import workflow_from_json, workflow_to_json

__all__ = [
    "DataFile",
    "Task",
    "Workflow",
    "ValidationError",
    "validate_workflow",
    "workflow_from_json",
    "workflow_to_json",
]
