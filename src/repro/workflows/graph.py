"""The workflow DAG container.

:class:`Workflow` owns tasks and files and derives the dependency structure
from file production/consumption (plus optional explicit control edges).
It provides the structural queries every scheduler needs — topological
order, levels, critical path, communication-to-computation ratio — computed
lazily and cached, with the cache invalidated on mutation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.workflows.task import DataFile, Task


class Workflow:
    """A named DAG of tasks connected by data files.

    Construction is incremental: :meth:`add_file`, :meth:`add_task`,
    :meth:`add_control_edge`.  Structure is derived — an edge u→v exists
    when v consumes a file u produces (carrying that file's bytes), or when
    an explicit control edge was added (carrying zero bytes).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.tasks: Dict[str, Task] = {}
        self.files: Dict[str, DataFile] = {}
        self._producer: Dict[str, str] = {}  # file -> task
        self._control_edges: Set[Tuple[str, str]] = set()
        self._graph_cache: Optional[nx.DiGraph] = None
        # Structural-query memos (schedulers call predecessors/successors
        # and the topological order in their inner loops; sorting every
        # call dominated rank computation before these caches).  The
        # cached lists are shared — callers must not mutate them.
        self._pred_cache: Dict[str, List[str]] = {}
        self._succ_cache: Dict[str, List[str]] = {}
        self._topo_cache: Optional[List[str]] = None
        # Set by validate_workflow after a clean pass; cleared on mutation
        # so repeated runs of the same workflow validate once.
        self._validated_ok = False

    def _invalidate(self) -> None:
        """Drop every derived-structure cache after a mutation."""
        self._graph_cache = None
        self._pred_cache = {}
        self._succ_cache = {}
        self._topo_cache = None
        self._validated_ok = False

    # ---------------------------------------------------------------- #
    # construction                                                     #
    # ---------------------------------------------------------------- #

    def add_file(self, file: DataFile) -> DataFile:
        """Register a data file; duplicate names must agree exactly."""
        existing = self.files.get(file.name)
        if existing is not None:
            if existing != file:
                raise ValueError(
                    f"file {file.name!r} already registered with different attributes"
                )
            return existing
        self.files[file.name] = file
        self._invalidate()
        return file

    def add_task(self, task: Task) -> Task:
        """Register a task; every referenced file must be added first."""
        if task.name in self.tasks:
            raise ValueError(f"duplicate task name {task.name!r}")
        for fname in task.inputs + task.outputs:
            if fname not in self.files:
                raise ValueError(
                    f"task {task.name!r} references unknown file {fname!r}"
                )
        for fname in task.outputs:
            if self.files[fname].initial:
                raise ValueError(
                    f"task {task.name!r} claims to produce initial file {fname!r}"
                )
            if fname in self._producer:
                raise ValueError(
                    f"file {fname!r} produced by both "
                    f"{self._producer[fname]!r} and {task.name!r}"
                )
        self.tasks[task.name] = task
        for fname in task.outputs:
            self._producer[fname] = task.name
        self._invalidate()
        return task

    def add_control_edge(self, src: str, dst: str) -> None:
        """Add a zero-byte precedence constraint between two tasks."""
        if src not in self.tasks or dst not in self.tasks:
            raise KeyError(f"control edge {src!r}->{dst!r} references unknown task")
        if src == dst:
            raise ValueError(f"self control edge on {src!r}")
        self._control_edges.add((src, dst))
        self._invalidate()

    # ---------------------------------------------------------------- #
    # derived structure                                                #
    # ---------------------------------------------------------------- #

    def producer_of(self, file_name: str) -> Optional[str]:
        """Name of the task producing ``file_name`` (None for initial files)."""
        return self._producer.get(file_name)

    def consumers_of(self, file_name: str) -> List[str]:
        """Names of tasks consuming ``file_name``, in insertion order."""
        return [t.name for t in self.tasks.values() if file_name in t.inputs]

    def graph(self) -> nx.DiGraph:
        """The derived dependency DiGraph (cached until mutation).

        Edge attribute ``data_mb`` is the total bytes v pulls from u's
        outputs (sum over shared files); control edges carry 0.
        """
        if self._graph_cache is not None:
            return self._graph_cache
        g = nx.DiGraph()
        g.add_nodes_from(self.tasks)
        for task in self.tasks.values():
            for fname in task.inputs:
                producer = self._producer.get(fname)
                if producer is None:
                    continue  # initial input, no edge
                size = self.files[fname].size_mb
                if g.has_edge(producer, task.name):
                    g[producer][task.name]["data_mb"] += size
                else:
                    g.add_edge(producer, task.name, data_mb=size)
        for src, dst in self._control_edges:
            if not g.has_edge(src, dst):
                g.add_edge(src, dst, data_mb=0.0)
        self._graph_cache = g
        return g

    def predecessors(self, task_name: str) -> List[str]:
        """Immediate upstream tasks, sorted for determinism (cached)."""
        cached = self._pred_cache.get(task_name)
        if cached is None:
            cached = sorted(self.graph().predecessors(task_name))
            self._pred_cache[task_name] = cached
        return cached

    def successors(self, task_name: str) -> List[str]:
        """Immediate downstream tasks, sorted for determinism (cached)."""
        cached = self._succ_cache.get(task_name)
        if cached is None:
            cached = sorted(self.graph().successors(task_name))
            self._succ_cache[task_name] = cached
        return cached

    def edge_data_mb(self, src: str, dst: str) -> float:
        """Bytes carried on edge src->dst (0 if no edge)."""
        g = self.graph()
        if not g.has_edge(src, dst):
            return 0.0
        return float(g[src][dst]["data_mb"])

    def entry_tasks(self) -> List[str]:
        """Tasks with no predecessors, sorted."""
        g = self.graph()
        return sorted(n for n in g.nodes if g.in_degree(n) == 0)

    def exit_tasks(self) -> List[str]:
        """Tasks with no successors, sorted."""
        g = self.graph()
        return sorted(n for n in g.nodes if g.out_degree(n) == 0)

    def topological_order(self) -> List[str]:
        """A deterministic topological ordering of task names (cached)."""
        if self._topo_cache is None:
            self._topo_cache = list(
                nx.lexicographical_topological_sort(self.graph())
            )
        return self._topo_cache

    def levels(self) -> List[List[str]]:
        """Tasks grouped by longest-path depth from the entries."""
        g = self.graph()
        depth: Dict[str, int] = {}
        for name in nx.topological_sort(g):
            preds = list(g.predecessors(name))
            depth[name] = 0 if not preds else 1 + max(depth[p] for p in preds)
        out: List[List[str]] = []
        for name, d in depth.items():
            while len(out) <= d:
                out.append([])
            out[d].append(name)
        return [sorted(level) for level in out]

    def is_acyclic(self) -> bool:
        """True when the derived graph is a DAG."""
        return nx.is_directed_acyclic_graph(self.graph())

    # ---------------------------------------------------------------- #
    # aggregate measures                                               #
    # ---------------------------------------------------------------- #

    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    @property
    def n_edges(self) -> int:
        """Number of derived dependency edges."""
        return self.graph().number_of_edges()

    def total_work(self) -> float:
        """Sum of task work, Gop."""
        return sum(t.work for t in self.tasks.values())

    def total_edge_data_mb(self) -> float:
        """Sum of bytes on all dependency edges."""
        g = self.graph()
        return float(sum(d["data_mb"] for _u, _v, d in g.edges(data=True)))

    def ccr(self, reference_speed: float = 50.0, reference_bandwidth: float = 1250.0) -> float:
        """Communication-to-computation ratio.

        Mean edge transfer time (at the reference bandwidth) over mean task
        execution time (at the reference speed).  The classical knob of the
        F2 sweep.
        """
        if not self.tasks or self.n_edges == 0:
            return 0.0
        mean_comm = self.total_edge_data_mb() / self.n_edges / reference_bandwidth
        mean_comp = self.total_work() / self.n_tasks / reference_speed
        if mean_comp == 0:
            return float("inf")
        return mean_comm / mean_comp

    def critical_path_work(self) -> float:
        """Largest total work along any path (ignoring communication), Gop."""
        g = self.graph()
        best: Dict[str, float] = {}
        for name in nx.topological_sort(g):
            preds = list(g.predecessors(name))
            incoming = max((best[p] for p in preds), default=0.0)
            best[name] = incoming + self.tasks[name].work
        return max(best.values(), default=0.0)

    def categories(self) -> Dict[str, int]:
        """Histogram of task categories."""
        out: Dict[str, int] = {}
        for t in self.tasks.values():
            out[t.category] = out.get(t.category, 0) + 1
        return out

    def initial_files(self) -> List[DataFile]:
        """Workflow input files (exist before execution)."""
        return [f for f in self.files.values() if f.initial]

    def scaled(self, work_factor: float = 1.0, name: Optional[str] = None) -> "Workflow":
        """A structurally identical copy with all task work scaled."""
        if work_factor <= 0:
            raise ValueError("work_factor must be positive")
        wf = Workflow(name or f"{self.name}-x{work_factor:g}")
        for f in self.files.values():
            wf.add_file(f)
        for t in self.tasks.values():
            wf.add_task(t.with_work(t.work * work_factor))
        for src, dst in self._control_edges:
            wf.add_control_edge(src, dst)
        return wf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workflow {self.name} tasks={self.n_tasks} edges={self.n_edges}>"
