"""Tasks and data files — the vertices and payloads of a workflow DAG.

A :class:`Task` describes one unit of computation: how much abstract work it
performs, which device classes can execute it (and how well), and which
named :class:`DataFile` objects it consumes and produces.  Data dependencies
between tasks are *derived* from file production/consumption by the
:class:`~repro.workflows.graph.Workflow` container; tasks themselves stay
ignorant of graph structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.platform.devices import DeviceClass


@dataclass(frozen=True)
class DataFile:
    """A logical data product.

    Attributes:
        name: Unique name within a workflow (``"proj_017.fits"``).
        size_mb: Size in MB; drives all transfer costs.
        initial: True for workflow inputs that exist before execution starts
            (staged at the cluster's storage site rather than produced by a
            task).
        location: For initial files only — the node where the file is
            *born* (a sensor capture on its edge node, a dataset already on
            a burst buffer).  None means the shared storage site.  The node
            name is resolved against the cluster at run time; unknown names
            fail loudly there.
    """

    name: str
    size_mb: float
    initial: bool = False
    location: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"file {self.name!r} has negative size")
        if self.location is not None and not self.initial:
            raise ValueError(
                f"file {self.name!r}: only initial files may carry a location"
            )


#: Affinity mapping type: device class -> speed multiplier (0 = ineligible).
AffinityMap = Mapping[DeviceClass, float]


@dataclass(frozen=True)
class Task:
    """One schedulable unit of a discovery workflow.

    Attributes:
        name: Unique name within a workflow.
        work: Computational size in Gop (giga-operations).
        affinity: Per-device-class speed multipliers.  A CPU entry defaults
            to 1.0 when absent; any other class defaults to 0.0 (ineligible).
            ``affinity={DeviceClass.GPU: 20}`` therefore reads "runs on CPU
            at par, 20x faster per Gop/s on GPU".
        inputs: Names of files consumed.
        outputs: Names of files produced (must be unique producers).
        category: Free-form stage label ("mProject", "seismogram", ...),
            used for per-stage reporting and fault models.
        memory_gb: Working-set size; devices with less memory are
            ineligible.
        priority_hint: Optional user hint (larger = more urgent) that some
            schedulers honour for tie-breaking.
    """

    name: str
    work: float
    affinity: Dict[DeviceClass, float] = field(default_factory=dict)
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    category: str = "generic"
    memory_gb: float = 1.0
    priority_hint: float = 0.0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"task {self.name!r} has negative work")
        if self.memory_gb < 0:
            raise ValueError(f"task {self.name!r} has negative memory need")
        for cls, mult in self.affinity.items():
            if mult < 0:
                raise ValueError(
                    f"task {self.name!r}: negative affinity for {cls}"
                )
        # Normalize sequences to tuples for hashability.
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))

    def affinity_for(self, device_class: DeviceClass) -> float:
        """Speed multiplier on the given class (0 = ineligible).

        CPUs default to 1.0 so every task is runnable somewhere unless a
        workflow explicitly opts a task out of CPUs with ``{CPU: 0}``.
        """
        if device_class in self.affinity:
            return self.affinity[device_class]
        return 1.0 if device_class == DeviceClass.CPU else 0.0

    def eligible_classes(self) -> List[DeviceClass]:
        """Device classes with a positive affinity."""
        return [c for c in DeviceClass if self.affinity_for(c) > 0.0]

    @property
    def accelerable(self) -> bool:
        """True when some non-CPU class offers a strictly better multiplier."""
        cpu = self.affinity_for(DeviceClass.CPU)
        return any(
            self.affinity_for(c) > cpu
            for c in DeviceClass
            if c != DeviceClass.CPU
        )

    def with_work(self, work: float) -> "Task":
        """A copy with different work (generators use this for scaling)."""
        return Task(
            name=self.name,
            work=work,
            affinity=dict(self.affinity),
            inputs=self.inputs,
            outputs=self.outputs,
            category=self.category,
            memory_gb=self.memory_gb,
            priority_hint=self.priority_hint,
        )


def cpu_task(name: str, work: float, **kwargs) -> Task:
    """A CPU-only task (the default affinity)."""
    return Task(name=name, work=work, **kwargs)


def gpu_task(name: str, work: float, gpu_speedup: float = 15.0, **kwargs) -> Task:
    """A task that runs on CPU at par and ``gpu_speedup``x faster on GPU."""
    affinity = kwargs.pop("affinity", {})
    affinity = {DeviceClass.GPU: gpu_speedup, **affinity}
    return Task(name=name, work=work, affinity=affinity, **kwargs)


def accelerable_task(
    name: str,
    work: float,
    gpu: float = 0.0,
    fpga: float = 0.0,
    tpu: float = 0.0,
    dsp: float = 0.0,
    manycore: float = 0.0,
    **kwargs,
) -> Task:
    """Convenience constructor with one keyword per accelerator class."""
    affinity: Dict[DeviceClass, float] = {}
    for cls, mult in (
        (DeviceClass.GPU, gpu),
        (DeviceClass.FPGA, fpga),
        (DeviceClass.TPU, tpu),
        (DeviceClass.DSP, dsp),
        (DeviceClass.MANYCORE, manycore),
    ):
        if mult > 0:
            affinity[cls] = mult
    return Task(name=name, work=work, affinity=affinity, **kwargs)
