"""Structural validation of workflows — shim over :mod:`repro.staticcheck`.

The submission-time checks that used to live here (acyclicity, orphan
files, consumed-but-never-produced files, eligibility sanity, no-op
tasks) are now the ``workflow`` layer of the static-analysis subsystem:
:func:`repro.staticcheck.check_workflow` returns them as typed findings
alongside the cross-layer model checks.  This module keeps the historical
entry points — :func:`find_problems` returning message strings and
:func:`validate_workflow` raising :class:`ValidationError` on any problem
— for the orchestrator and existing callers.
"""

from __future__ import annotations

from typing import List

from repro.staticcheck.workflow_checks import check_workflow
from repro.workflows.graph import Workflow


class ValidationError(ValueError):
    """Raised by :func:`validate_workflow` with all problems listed."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__(
            "workflow validation failed:\n  - " + "\n  - ".join(self.problems)
        )


def find_problems(workflow: Workflow) -> List[str]:
    """Return a list of human-readable problems (empty = valid)."""
    return [finding.message for finding in check_workflow(workflow)]


def validate_workflow(workflow: Workflow) -> None:
    """Raise :class:`ValidationError` if the workflow is malformed.

    A clean pass is remembered on the workflow (invalidated on mutation),
    so running the same instance many times validates it once.
    """
    if getattr(workflow, "_validated_ok", False):
        return
    problems = find_problems(workflow)
    if problems:
        raise ValidationError(problems)
    workflow._validated_ok = True
