"""Structural validation of workflows.

The :class:`Workflow` builder already rejects locally-invalid mutations
(duplicate names, unknown files, double producers).  This module performs
the *global* checks a workflow management system runs at submission time:
acyclicity, no orphan files, consumed-but-never-produced files, unreachable
tasks, and eligibility sanity (every task runnable on at least one device
class).
"""

from __future__ import annotations

from typing import List

from repro.workflows.graph import Workflow


class ValidationError(ValueError):
    """Raised by :func:`validate_workflow` with all problems listed."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__(
            "workflow validation failed:\n  - " + "\n  - ".join(self.problems)
        )


def find_problems(workflow: Workflow) -> List[str]:
    """Return a list of human-readable problems (empty = valid)."""
    problems: List[str] = []

    if workflow.n_tasks == 0:
        problems.append("workflow has no tasks")
        return problems

    if not workflow.is_acyclic():
        problems.append("dependency graph contains a cycle")

    produced = {f for t in workflow.tasks.values() for f in t.outputs}
    consumed = {f for t in workflow.tasks.values() for f in t.inputs}

    for fname, f in workflow.files.items():
        if f.initial:
            if fname in produced:
                problems.append(f"initial file {fname!r} is also produced")
        else:
            if fname not in produced:
                if fname in consumed:
                    problems.append(
                        f"file {fname!r} is consumed but never produced and not initial"
                    )
                else:
                    problems.append(f"file {fname!r} is registered but unused")

    for fname in produced:
        if fname not in consumed and workflow.files[fname].initial:
            # unreachable: builder rejects producing initial files
            problems.append(f"initial file {fname!r} produced")  # pragma: no cover

    for task in workflow.tasks.values():
        if not task.eligible_classes():
            problems.append(
                f"task {task.name!r} is eligible on no device class"
            )
        if task.work == 0 and not task.inputs and not task.outputs:
            problems.append(
                f"task {task.name!r} has zero work and no data role"
            )

    return problems


def validate_workflow(workflow: Workflow) -> None:
    """Raise :class:`ValidationError` if the workflow is malformed."""
    problems = find_problems(workflow)
    if problems:
        raise ValidationError(problems)
