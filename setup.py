"""Legacy setup shim: enables `pip install -e . --no-build-isolation` on
environments without the `wheel` package (offline build hosts)."""
from setuptools import setup

setup()
